"""The per-node half-duplex radio state machine.

States SLEEP / IDLE / RX / TX with the energy meter integrating dwell times.
The MAC above drives ``sleep() / wake() / transmit(frame)`` and receives
decoded frames through a callback; the medium drives RX/IDLE flips as
transmissions come and go (a listening radio draws RX power whenever
something audible is in the air — overhearing costs energy even for frames
addressed elsewhere, one of the paper's motivating wastes).
"""

from __future__ import annotations

from typing import Callable

from ..sim.kernel import Simulator
from ..sim.process import Signal
from .channel import RadioMedium
from .energy import EnergyMeter, EnergyParams, RadioState
from .packet import Frame

__all__ = ["Transceiver", "RadioError"]


class RadioError(RuntimeError):
    """Misuse of the radio (transmitting while asleep, nested tx, ...)."""


class Transceiver:
    """One node's radio, attached to a :class:`RadioMedium`."""

    def __init__(
        self,
        sim: Simulator,
        medium: RadioMedium,
        node: int,
        energy: EnergyParams | None = None,
        start_asleep: bool = False,
    ):
        self.sim = sim
        self.medium = medium
        self.node = node
        self.meter = EnergyMeter(
            params=energy or EnergyParams(),
            state=RadioState.SLEEP if start_asleep else RadioState.IDLE,
            last_change=sim.now,
        )
        self._listening = not start_asleep
        self._listen_since = sim.now if not start_asleep else None
        self._tx_until: float | None = None
        self.dead = False
        self._stunned = False
        self.tx_done = Signal(f"trx{node}.tx_done")
        self._rx_callback: Callable[[Frame, float], None] | None = None
        self._garble_callback: Callable[[Frame], None] | None = None
        # statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_garbled = 0
        medium.register(node, self)
        medium.add_activity_listener(self._refresh_rx_state)

    # -- MAC-facing API -----------------------------------------------------------

    def on_receive(self, fn: Callable[[Frame, float], None]) -> None:
        """Install the decoded-frame callback (frame, rx_power_w)."""
        self._rx_callback = fn

    def on_garbled(self, fn: Callable[[Frame], None]) -> None:
        """Install the collision-noise callback (optional; S-MAC stats)."""
        self._garble_callback = fn

    @property
    def state(self) -> RadioState:
        return self.meter.state

    @property
    def is_sleeping(self) -> bool:
        return self.meter.state is RadioState.SLEEP

    @property
    def is_transmitting(self) -> bool:
        return self._tx_until is not None and self._tx_until > self.sim.now

    def sleep(self) -> None:
        """Power down.  Any in-flight reception is lost; tx must be over."""
        if self.is_transmitting:
            raise RadioError(f"node {self.node} cannot sleep mid-transmission")
        self._listening = False
        self._listen_since = None
        self.meter.change_state(RadioState.SLEEP, self.sim.now)

    def fail(self) -> None:
        """Fail-stop: the radio goes dark permanently (node crash).

        If a transmission is in flight it finishes first — the crash takes
        effect at frame end, matching the usual fail-stop abstraction where a
        node never emits a *partial* frame.  After that, ``wake()`` is a
        no-op: the node is unreachable forever.
        """
        self.dead = True
        self._go_dark()

    def stun(self, duration: float) -> None:
        """Transient outage: dark for *duration* seconds, then listening again."""
        if self.dead or self._stunned or duration <= 0:
            return
        self._stunned = True
        self._go_dark()
        self.sim.schedule(duration, self._end_stun)

    def _end_stun(self) -> None:
        self._stunned = False
        if not self.dead and self.is_sleeping:
            self.wake()

    def _go_dark(self) -> None:
        self._listening = False
        self._listen_since = None
        if not self.is_transmitting and self.meter.state is not RadioState.SLEEP:
            self.meter.change_state(RadioState.SLEEP, self.sim.now)

    def wake(self) -> None:
        """Power up into listening (no-op for dead or stunned radios)."""
        if self.dead or self._stunned:
            return
        if not self.is_sleeping:
            return
        self._listening = True
        self._listen_since = self.sim.now
        self.meter.change_state(RadioState.IDLE, self.sim.now)
        self._refresh_rx_state()

    def transmit(self, frame: Frame) -> float:
        """Start sending; returns the airtime.  ``tx_done`` fires at the end."""
        if self.is_sleeping:
            raise RadioError(f"node {self.node} cannot transmit while asleep")
        if self.is_transmitting:
            raise RadioError(f"node {self.node} is already transmitting")
        duration = self.medium.airtime(frame)
        self._tx_until = self.sim.now + duration
        self._listening = False  # half-duplex: tx kills reception
        self._listen_since = None
        self.meter.change_state(RadioState.TX, self.sim.now)
        self.medium.begin_transmission(self.node, frame)
        self.frames_sent += 1
        self.sim.schedule(duration, self._tx_finished)
        return duration

    def carrier_busy(self) -> bool:
        """CSMA hook: does the medium sound busy from here?"""
        return self.medium.carrier_busy(self.node)

    # -- medium-facing API -----------------------------------------------------------

    def listened_through(self, start: float, end: float) -> bool:
        """Was this radio continuously listening over [start, end]?"""
        if not self._listening or self._listen_since is None:
            return False
        return self._listen_since <= start

    def deliver(self, frame: Frame, rx_power: float) -> None:
        self.frames_received += 1
        if self._rx_callback is not None:
            self._rx_callback(frame, rx_power)

    def deliver_garbled(self, frame: Frame) -> None:
        self.frames_garbled += 1
        if self._garble_callback is not None:
            self._garble_callback(frame)

    # -- internals ----------------------------------------------------------------

    def _tx_finished(self) -> None:
        self._tx_until = None
        if self.dead or self._stunned:
            # Crash/stun arrived mid-transmission: go dark now instead of
            # returning to listening.
            self.meter.change_state(RadioState.SLEEP, self.sim.now)
            self.tx_done.fire(self.node)
            return
        self._listening = True
        self._listen_since = self.sim.now
        self.meter.change_state(RadioState.IDLE, self.sim.now)
        self._refresh_rx_state()
        self.tx_done.fire(self.node)

    def _refresh_rx_state(self) -> None:
        """Listening radios draw RX power while anything audible is in the air."""
        if not self._listening:
            return
        busy = self.medium.in_air_power_at(self.node) >= self.medium.cs_threshold
        target = RadioState.RX if busy else RadioState.IDLE
        if self.meter.state is not target:
            self.meter.change_state(target, self.sim.now)

    def finalize(self) -> None:
        """Close energy books at simulation end."""
        self.meter.finalize(self.sim.now)
