"""Frame formats and sizes shared by the MAC layers.

The paper fixes the data packet at 80 bytes including header and payload
(Sec. VI).  Control frames are sized in the ballpark of S-MAC's (RTS/CTS ~
10 bytes) and of a realistic polling message; only *relative* sizes matter
for the reproduced shapes, and every size is overridable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["FrameType", "Frame", "FrameSizes", "DEFAULT_SIZES", "BROADCAST_ADDR"]

BROADCAST_ADDR: int = -999
"""Link-layer broadcast (all listeners in range receive)."""

_frame_ids = itertools.count()


class FrameType(Enum):
    DATA = "data"
    POLL = "poll"  # cluster head -> all: who transmits this slot
    WAKEUP = "wakeup"  # cluster head -> all: duty cycle begins (inquiry)
    SLEEP = "sleep"  # cluster head -> all: duty cycle ends; next wake time
    ACK_REPORT = "ack"  # sensor -> head: alive + packet count (piggybacked)
    SYNC = "sync"  # S-MAC schedule synchronization
    RTS = "rts"
    CTS = "cts"
    MACK = "mack"  # S-MAC link-level ACK
    AODV = "aodv"  # routing control (RREQ/RREP/RERR payloads)


@dataclass(frozen=True)
class FrameSizes:
    """Frame sizes in bytes; airtime = size * 8 / bitrate."""

    data: int = 80  # paper Sec. VI: fixed 80 bytes incl. header
    poll: int = 16
    wakeup: int = 12
    sleep: int = 12
    ack_report: int = 12
    sync: int = 9  # S-MAC paper's SYNC size
    rts: int = 10
    cts: int = 10
    mack: int = 10
    aodv: int = 24

    def of(self, ftype: FrameType) -> int:
        return {
            FrameType.DATA: self.data,
            FrameType.POLL: self.poll,
            FrameType.WAKEUP: self.wakeup,
            FrameType.SLEEP: self.sleep,
            FrameType.ACK_REPORT: self.ack_report,
            FrameType.SYNC: self.sync,
            FrameType.RTS: self.rts,
            FrameType.CTS: self.cts,
            FrameType.MACK: self.mack,
            FrameType.AODV: self.aodv,
        }[ftype]


DEFAULT_SIZES = FrameSizes()


@dataclass(frozen=True)
class Frame:
    """One over-the-air frame."""

    ftype: FrameType
    src: int
    dst: int  # link-layer destination (BROADCAST_ADDR for broadcasts)
    size_bytes: int
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST_ADDR
