"""Per-node energy accounting.

The paper's energy argument rests on the state power ratios of typical
sensor radios (its ref. [9], Raghunathan et al.): sleeping is orders of
magnitude cheaper than any active state, and idle listening costs nearly as
much as receiving — which is why minimizing *active time* (Fig. 7a) is the
right proxy for energy.  Defaults follow the widely used Stargate/WLAN-class
ratios idle : rx : tx = 1 : 1.05 : 1.4 with sleep at ~0.1% of idle.

An :class:`EnergyMeter` integrates power over state dwell times; the radio
state machine drives it on every state change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["RadioState", "EnergyParams", "EnergyMeter"]


class RadioState(Enum):
    SLEEP = "sleep"
    IDLE = "idle"  # listening, nothing decodable in the air
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class EnergyParams:
    """State power draws in watts."""

    sleep_w: float = 15e-6
    idle_w: float = 13.5e-3
    rx_w: float = 14.2e-3  # ~1.05x idle
    tx_w: float = 18.9e-3  # ~1.4x idle
    battery_j: float = 100.0

    def power(self, state: RadioState) -> float:
        # Branch chain instead of a throwaway dict: this sits on the meter's
        # per-state-change hot path (IDLE and RX dominate polling runs).
        if state is RadioState.IDLE:
            return self.idle_w
        if state is RadioState.RX:
            return self.rx_w
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.SLEEP:
            return self.sleep_w
        raise KeyError(state)

    def validate(self) -> None:
        if min(self.sleep_w, self.idle_w, self.rx_w, self.tx_w) <= 0:
            raise ValueError("all state powers must be positive")
        if self.sleep_w >= self.idle_w:
            raise ValueError("sleep power should be far below idle power")


@dataclass
class EnergyMeter:
    """Integrates one node's energy use across radio states."""

    params: EnergyParams
    state: RadioState = RadioState.IDLE
    last_change: float = 0.0
    consumed_j: float = 0.0
    dwell_s: dict[RadioState, float] = field(
        default_factory=lambda: {s: 0.0 for s in RadioState}
    )

    def change_state(self, new_state: RadioState, now: float) -> None:
        """Account the time spent in the old state, switch to the new one."""
        if now < self.last_change:
            raise ValueError(
                f"time ran backwards: {now} < {self.last_change}"
            )
        self._integrate(now)
        self.state = new_state

    def _integrate(self, now: float) -> None:
        dt = now - self.last_change
        if dt > 0:
            self.consumed_j += self.params.power(self.state) * dt
            self.dwell_s[self.state] += dt
            self.last_change = now
        else:
            self.last_change = now

    def finalize(self, now: float) -> None:
        """Close the books at simulation end."""
        self._integrate(now)

    @property
    def remaining_j(self) -> float:
        return max(0.0, self.params.battery_j - self.consumed_j)

    @property
    def depleted(self) -> bool:
        return self.consumed_j >= self.params.battery_j

    def active_time_s(self) -> float:
        """Total time not asleep (the Fig. 7a quantity)."""
        return (
            self.dwell_s[RadioState.IDLE]
            + self.dwell_s[RadioState.RX]
            + self.dwell_s[RadioState.TX]
        )

    def breakdown(self) -> dict[str, float]:
        """Energy per state in joules (reporting helper)."""
        return {
            s.value: self.params.power(s) * self.dwell_s[s] for s in RadioState
        }
