"""Radio propagation models (the ns-2 stand-ins used by Sec. VI).

The paper's evaluation uses the **two-ray ground** model.  We implement it
exactly as ns-2 does: Friis free-space up to the crossover distance
``d_c = 4*pi*ht*hr / lambda``, and the fourth-power ground-reflection law
beyond it.  Free-space and log-normal shadowing are provided for ablations
(shadowing demonstrates the "coverage is not a disc" point of Sec. III-B).

All models expose ``gain(d)`` (power gain, multiply by tx power to get rx
power) and vectorized ``gain_matrix(dist)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FreeSpace",
    "TwoRayGround",
    "LogNormalShadowing",
    "SPEED_OF_LIGHT",
    "range_for_threshold",
]

SPEED_OF_LIGHT: float = 299_792_458.0


@dataclass(frozen=True)
class FreeSpace:
    """Friis free-space: gain = (Gt*Gr*lambda^2) / ((4*pi*d)^2 * L)."""

    frequency_hz: float = 914e6  # the classic ns-2 WaveLAN default
    gt: float = 1.0
    gr: float = 1.0
    system_loss: float = 1.0

    @property
    def wavelength(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    def gain(self, d: float) -> float:
        if d <= 0:
            raise ValueError(f"distance must be positive, got {d}")
        lam = self.wavelength
        return (self.gt * self.gr * lam * lam) / (
            (4.0 * np.pi * d) ** 2 * self.system_loss
        )

    def gain_matrix(self, dist: np.ndarray) -> np.ndarray:
        dist = np.asarray(dist, dtype=np.float64)
        lam = self.wavelength
        with np.errstate(divide="ignore"):
            g = (self.gt * self.gr * lam * lam) / (
                (4.0 * np.pi * dist) ** 2 * self.system_loss
            )
        g[~np.isfinite(g)] = 0.0  # zero-distance entries (the diagonal)
        return g


@dataclass(frozen=True)
class TwoRayGround:
    """ns-2's TwoRayGround: Friis below the crossover, d^-4 law above.

    gain(d) = Gt*Gr*ht^2*hr^2 / (d^4 * L) for d > d_c, Friis otherwise,
    with d_c = 4*pi*ht*hr/lambda.
    """

    frequency_hz: float = 914e6
    ht: float = 1.5  # antenna heights (ns-2 defaults), meters
    hr: float = 1.5
    gt: float = 1.0
    gr: float = 1.0
    system_loss: float = 1.0

    @property
    def wavelength(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    @property
    def crossover_distance(self) -> float:
        return 4.0 * np.pi * self.ht * self.hr / self.wavelength

    def _friis(self) -> FreeSpace:
        return FreeSpace(
            frequency_hz=self.frequency_hz,
            gt=self.gt,
            gr=self.gr,
            system_loss=self.system_loss,
        )

    def gain(self, d: float) -> float:
        if d <= 0:
            raise ValueError(f"distance must be positive, got {d}")
        if d <= self.crossover_distance:
            return self._friis().gain(d)
        return (self.gt * self.gr * self.ht**2 * self.hr**2) / (
            d**4 * self.system_loss
        )

    def gain_matrix(self, dist: np.ndarray) -> np.ndarray:
        dist = np.asarray(dist, dtype=np.float64)
        friis = self._friis().gain_matrix(dist)
        with np.errstate(divide="ignore"):
            ground = (self.gt * self.gr * self.ht**2 * self.hr**2) / (
                dist**4 * self.system_loss
            )
        ground[~np.isfinite(ground)] = 0.0
        return np.where(dist <= self.crossover_distance, friis, ground)


@dataclass(frozen=True)
class LogNormalShadowing:
    """Log-distance path loss with per-link log-normal shadowing.

    Deterministic per (seed, link): the fade is frozen at construction via
    the hash of endpoints, so the "arbitrarily shaped coverage areas" of
    Sec. III-B are stable across a run (links don't flap randomly).
    """

    reference: TwoRayGround = TwoRayGround()
    sigma_db: float = 4.0
    seed: int = 0

    def gain(self, d: float, link_key: tuple[int, int] | None = None) -> float:
        base = self.reference.gain(d)
        if self.sigma_db == 0.0 or link_key is None:
            return base
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + hash(link_key)) & 0x7FFFFFFF
        )
        fade_db = rng.normal(0.0, self.sigma_db)
        return base * 10 ** (fade_db / 10.0)

    def gain_matrix(self, dist: np.ndarray) -> np.ndarray:
        base = self.reference.gain_matrix(dist)
        if self.sigma_db == 0.0:
            return base
        rng = np.random.default_rng(self.seed)
        fades_db = rng.normal(0.0, self.sigma_db, size=base.shape)
        # Symmetrize: a link fades identically in both directions.
        fades_db = np.triu(fades_db, k=1)
        fades_db = fades_db + fades_db.T
        return base * 10 ** (fades_db / 10.0)


def range_for_threshold(model, tx_power_w: float, rx_threshold_w: float) -> float:
    """Largest distance at which rx power clears the threshold (bisection).

    Used to size deployments: the Sec. VI setup quotes a communication range
    that we derive from the radio parameters rather than hard-coding.
    """
    if tx_power_w <= 0 or rx_threshold_w <= 0:
        raise ValueError("powers must be positive")
    lo, hi = 1e-3, 1e-3
    while tx_power_w * model.gain(hi) >= rx_threshold_w:
        hi *= 2.0
        if hi > 1e7:
            raise ValueError("threshold never reached; check parameters")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if tx_power_w * model.gain(mid) >= rx_threshold_w:
            lo = mid
        else:
            hi = mid
    return lo
