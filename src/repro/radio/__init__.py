"""PHY substrate: propagation, the shared medium, radios, energy."""

from .channel import ActiveTransmission, RadioMedium
from .energy import EnergyMeter, EnergyParams, RadioState
from .packet import BROADCAST_ADDR, DEFAULT_SIZES, Frame, FrameSizes, FrameType
from .propagation import (
    FreeSpace,
    LogNormalShadowing,
    TwoRayGround,
    range_for_threshold,
)
from .transceiver import RadioError, Transceiver

__all__ = [
    "FreeSpace",
    "TwoRayGround",
    "LogNormalShadowing",
    "range_for_threshold",
    "RadioMedium",
    "ActiveTransmission",
    "Transceiver",
    "RadioError",
    "EnergyParams",
    "EnergyMeter",
    "RadioState",
    "Frame",
    "FrameType",
    "FrameSizes",
    "DEFAULT_SIZES",
    "BROADCAST_ADDR",
]
