"""The shared wireless medium: SINR capture, collisions, carrier sense.

One :class:`RadioMedium` serves all nodes of a simulation.  Node *i*'s
position and transmit power live in arrays; pairwise receive powers are the
vectorized product of tx power and propagation gain (computed once — nodes
are static, as in the paper).

Reception semantics (matching ns-2's capture behavior closely enough for
the reproduced shapes):

* a frame is decodable at node *r* iff its receive power clears the
  sensitivity threshold, *r* listened continuously for the whole airtime,
  and the SINR against the **sum** of all overlapping transmissions clears
  the capture threshold *beta* — accumulated interference, not pairwise
  (the Sec. III-B / Fig. 3 point);
* carrier sense reports busy when total in-air power at the node exceeds
  the CS threshold (S-MAC's CSMA needs this);
* the medium is oblivious to addressing: every listener that decodes gets
  the frame, and the MAC filters by destination (overhearing costs energy,
  exactly the waste the paper attributes to contention MACs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from ..sim.units import transmission_time
from .packet import Frame

__all__ = ["RadioMedium", "ActiveTransmission"]


@dataclass
class ActiveTransmission:
    """A frame currently in the air."""

    sender: int
    frame: Frame
    start: float
    end: float
    # node -> accumulated overlapping interference power (filled as other
    # transmissions start/stop while this one is in the air)
    interferers: list["ActiveTransmission"] = field(default_factory=list)


class RadioMedium:
    """The broadcast channel shared by all nodes."""

    def __init__(
        self,
        sim: Simulator,
        positions: np.ndarray,
        tx_power_w: np.ndarray,
        propagation,
        bitrate_bps: float = 200_000.0,
        rx_sensitivity_w: float = 1e-11,
        cs_threshold_w: float = 1e-12,
        capture_beta: float = 10.0,
        noise_w: float = 1e-13,
        tracer: Tracer | None = None,
        frame_error_rate: float = 0.0,
        error_seed: int = 0,
    ):
        self.sim = sim
        self.positions = np.asarray(positions, dtype=np.float64)
        self.n_nodes = self.positions.shape[0]
        tx_power_w = np.asarray(tx_power_w, dtype=np.float64)
        if tx_power_w.shape != (self.n_nodes,):
            raise ValueError(
                f"tx_power_w must have shape ({self.n_nodes},), got {tx_power_w.shape}"
            )
        self.bitrate = float(bitrate_bps)
        self.rx_sensitivity = float(rx_sensitivity_w)
        self.cs_threshold = float(cs_threshold_w)
        self.beta = float(capture_beta)
        self.noise = float(noise_w)
        self.tracer = tracer or Tracer()
        # Kept so mobility can recompute rx_power from moved positions.
        self.tx_power_w = tx_power_w
        self.propagation = propagation
        # rx_power[r, s]: what r sees when s transmits.
        self.rx_power = self._compute_rx_power()
        if not 0.0 <= frame_error_rate < 1.0:
            raise ValueError(f"frame error rate must be in [0,1), got {frame_error_rate}")
        self.frame_error_rate = float(frame_error_rate)
        self._error_rng = np.random.default_rng(error_seed)
        # Radio channel per node (Sec. V-G: adjacent clusters on different
        # channels).  Same-channel transmissions interfere; cross-channel
        # ones are mutually invisible.
        self.channels = np.zeros(self.n_nodes, dtype=np.int64)
        self._active: list[ActiveTransmission] = []
        self._transceivers: dict[int, "object"] = {}
        # Hooks the transceivers register to learn about medium activity.
        self._activity_listeners: list[Callable[[], None]] = []
        # Optional per-link loss process (e.g. Gilbert–Elliott bursty fading)
        # consulted in the decode path: anything with
        # ``frame_fails(receiver, sender, now) -> bool``.  None = clean links.
        self.link_loss = None

    def _compute_rx_power(self) -> np.ndarray:
        diff = self.positions[:, np.newaxis, :] - self.positions[np.newaxis, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        gains = self.propagation.gain_matrix(dist)
        rx = gains * self.tx_power_w[np.newaxis, :]
        np.fill_diagonal(rx, 0.0)
        return rx

    def update_positions(self, positions: np.ndarray) -> None:
        """Move nodes: replace positions and receive powers (mobility).

        ``rx_power`` is *replaced*, never mutated in place: consumers that
        captured the old array (the head's planning oracle) deliberately keep
        seeing the topology as it was when they were built — that staleness
        is the physical reality of a plan computed before the nodes moved,
        and a re-cluster pass is what refreshes it.  The medium itself (the
        ground truth every decode consults through ``self.rx_power``) always
        uses the current geometry.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.shape != self.positions.shape:
            raise ValueError(
                f"positions must have shape {self.positions.shape}, "
                f"got {positions.shape}"
            )
        self.positions = positions.copy()
        self.rx_power = self._compute_rx_power()

    # -- registration -------------------------------------------------------------

    def register(self, node: int, transceiver) -> None:
        if node in self._transceivers:
            raise ValueError(f"node {node} already registered")
        self._transceivers[node] = transceiver

    def add_activity_listener(self, fn: Callable[[], None]) -> None:
        self._activity_listeners.append(fn)

    def set_channel(self, node: int, channel: int) -> None:
        """Assign a node's radio channel (default: everyone on channel 0)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        self.channels[node] = int(channel)

    # -- queries -------------------------------------------------------------------

    def airtime(self, frame: Frame) -> float:
        return transmission_time(frame.size_bytes, self.bitrate)

    def in_air_power_at(self, node: int, exclude_sender: int | None = None) -> float:
        """Total power node currently sees from active same-channel senders."""
        total = 0.0
        ch = self.channels[node]
        for tx in self._active:
            if tx.sender == node or tx.sender == exclude_sender:
                continue
            if self.channels[tx.sender] != ch:
                continue
            total += float(self.rx_power[node, tx.sender])
        return total

    def carrier_busy(self, node: int) -> bool:
        """Carrier-sense: anything audible above the CS threshold?"""
        return self.in_air_power_at(node) >= self.cs_threshold

    def hears(self, receiver: int, sender: int) -> bool:
        """Static link predicate (power alone clears sensitivity & capture)."""
        p = float(self.rx_power[receiver, sender])
        return p >= self.rx_sensitivity and p >= self.beta * self.noise

    def hearing_matrix(self) -> np.ndarray:
        """Boolean static connectivity of the whole medium."""
        ok = (self.rx_power >= self.rx_sensitivity) & (
            self.rx_power >= self.beta * self.noise
        )
        np.fill_diagonal(ok, False)
        return ok

    # -- transmission lifecycle ------------------------------------------------------

    def begin_transmission(self, sender: int, frame: Frame) -> ActiveTransmission:
        """Called by the sender's transceiver; returns the in-air record."""
        now = self.sim.now
        record = ActiveTransmission(
            sender=sender, frame=frame, start=now, end=now + self.airtime(frame)
        )
        # Mutual interference bookkeeping with everything already in the air.
        for other in self._active:
            other.interferers.append(record)
            record.interferers.append(other)
        self._active.append(record)
        self.tracer.emit(now, "phy_tx_start", node=sender, frame=frame.ftype.value)
        self.sim.at(record.end, self._end_transmission, record)
        self._notify_activity()
        return record

    def _end_transmission(self, record: ActiveTransmission) -> None:
        self._active.remove(record)
        now = self.sim.now
        self.tracer.emit(now, "phy_tx_end", node=record.sender, frame=record.frame.ftype.value)
        # Deliver to every node that could decode it.
        for node, trx in self._transceivers.items():
            if node == record.sender:
                continue
            outcome = self._decode_outcome(node, record, trx)
            if outcome == "ok":
                self.tracer.emit(
                    now, "phy_rx_ok", node=node, frame=record.frame.ftype.value
                )
                trx.deliver(record.frame, float(self.rx_power[node, record.sender]))
            elif outcome == "collision":
                self.tracer.emit(
                    now, "phy_rx_collision", node=node, frame=record.frame.ftype.value
                )
                trx.deliver_garbled(record.frame)
        self._notify_activity()

    def _decode_outcome(self, node: int, record: ActiveTransmission, trx) -> str:
        """'ok', 'collision' (audible but broken), or 'inaudible'."""
        if self.channels[node] != self.channels[record.sender]:
            return "inaudible"  # tuned to a different channel
        signal = float(self.rx_power[node, record.sender])
        if signal < self.rx_sensitivity:
            return "inaudible"
        if not trx.listened_through(record.start, record.end):
            return "inaudible"  # asleep or transmitting; never heard it
        interference = sum(
            float(self.rx_power[node, other.sender])
            for other in record.interferers
            if other.sender != node and self.channels[other.sender] == self.channels[node]
        )
        if signal < self.beta * (self.noise + interference):
            return "collision"
        if self.frame_error_rate > 0.0 and self._error_rng.random() < self.frame_error_rate:
            return "collision"  # random bit errors: audible but undecodable
        if self.link_loss is not None and self.link_loss.frame_fails(
            node, record.sender, self.sim.now
        ):
            return "collision"  # bursty fade: audible but undecodable
        return "ok"

    def _notify_activity(self) -> None:
        for fn in self._activity_listeners:
            fn()
