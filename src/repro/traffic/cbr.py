"""Constant-bit-rate traffic sources (the paper's workload, Sec. VI).

"CBR traffic on the top of UDP is generated to measure the throughput" —
each sensor produces fixed-size packets at a constant byte rate.  A
*data generating rate* of r Bps with 80-byte packets means one packet every
80/r seconds.  A small deterministic per-sensor phase offset desynchronizes
sources (all sensors generating in the same instant is both unrealistic and
a measurement artifact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim.kernel import Simulator
from ..sim.rng import RngStreams

__all__ = ["CbrSource", "attach_cbr_sources", "packets_per_cycle"]


def packets_per_cycle(rate_bps: float, cycle_s: float, packet_bytes: int) -> float:
    """Average packets a sensor generates per duty cycle (may be fractional)."""
    if rate_bps < 0 or cycle_s <= 0 or packet_bytes <= 0:
        raise ValueError("rates, cycle and packet size must be positive")
    return rate_bps * cycle_s / packet_bytes


@dataclass
class CbrSource:
    """Generates one sensor's packets by calling *deliver* on schedule."""

    sim: Simulator
    deliver: Callable[[], None]
    rate_bps: float
    packet_bytes: int
    phase: float = 0.0
    start_at: float = 0.0  # extra delay before the first tick (node joins late)
    generated: int = 0

    def start(self, until: float | None = None) -> None:
        if self.rate_bps <= 0:
            return
        self._until = until
        interval = self.packet_bytes / self.rate_bps
        self.sim.schedule(self.start_at + self.phase + interval, self._tick, interval)

    def _tick(self, interval: float) -> None:
        if self._until is not None and self.sim.now > self._until:
            return
        self.deliver()
        self.generated += 1
        self.sim.schedule(interval, self._tick, interval)

    # CBR ticks only append to application queues; they never touch radio or
    # meter state, so the vector slot engine may batch across them (the
    # kernel's quiet_until() skips callbacks carrying this marker).
    _tick._radio_neutral = True


def attach_cbr_sources(
    sim: Simulator,
    sensors,
    rate_bps: float,
    packet_bytes: int = 80,
    seed: int = 0,
    until: float | None = None,
    start_ats: dict[int, float] | None = None,
) -> list[CbrSource]:
    """One CBR source per sensor agent (anything with ``generate_packet()``).

    Phase offsets are drawn uniformly in one inter-packet interval from a
    dedicated stream, so runs are reproducible and sources are spread out.
    Phases are drawn in agent order for *every* agent — late joiners must be
    appended after the existing sensors so the existing phases stay
    bit-identical — and ``start_ats`` (agent position -> simulation time)
    delays a source's first packet until its node has actually powered up.
    """
    rng = RngStreams(seed).get("cbr-phase")
    sources: list[CbrSource] = []
    interval = packet_bytes / rate_bps if rate_bps > 0 else 0.0
    for index, agent in enumerate(sensors):
        src = CbrSource(
            sim=sim,
            deliver=agent.generate_packet,
            rate_bps=rate_bps,
            packet_bytes=packet_bytes,
            phase=float(rng.uniform(0.0, interval)) if interval else 0.0,
            start_at=float(start_ats.get(index, 0.0)) if start_ats else 0.0,
        )
        src.start(until=until)
        sources.append(src)
    return sources
