"""Workload generation."""

from .cbr import CbrSource, attach_cbr_sources, packets_per_cycle

__all__ = ["CbrSource", "attach_cbr_sources", "packets_per_cycle"]
