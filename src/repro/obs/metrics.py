"""Typed metrics for the telemetry layer: counters, gauges, histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.  The
polling stack records into the registry of the *active* telemetry (see
:func:`repro.obs.current`); when telemetry is disabled no registry exists
and call sites skip recording behind a single ``enabled`` check.

Snapshots are plain JSON-compatible dicts, which makes them cheap to attach
per duty cycle (``PollingSimResult.telemetry``), to ship across the sweep
runner's worker processes, and to persist inside sweep-cache entries — the
same representation everywhere, so aggregation is a pure dict merge.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (retries, probes, slots...)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def dump(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def merge(self, payload: dict[str, Any]) -> None:
        self.inc(payload["value"])


class Gauge:
    """A point-in-time value (current δ, current blacklist size...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def dump(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def merge(self, payload: dict[str, Any]) -> None:
        # Last write wins — across trials a gauge is "most recent observation".
        if payload["value"] is not None:
            self.value = payload["value"]


class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count/sum/min/max (enough for means and extremes without
    unbounded storage); two histograms merge exactly, so per-trial
    snapshots aggregate losslessly across the sweep runner.
    """

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def dump(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: dict[str, Any]) -> None:
        if not payload["count"]:
            return
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        for attr, pick in (("min", min), ("max", max)):
            theirs = payload[attr]
            ours = getattr(self, attr)
            setattr(self, attr, theirs if ours is None else pick(ours, theirs))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted identifiers (``"mac.retries"``, ``"routing.probes"``).
    Re-registering a name with a different instrument type is an error —
    the name *is* the schema.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-compatible dump of every instrument's current state."""
        return {name: m.dump() for name, m in sorted(self._metrics.items())}

    def merge_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) into this
        registry: counters add, gauges overwrite, histograms combine."""
        for name, payload in snapshot.items():
            cls = _KINDS.get(payload.get("type"))
            if cls is None:
                raise ValueError(
                    f"snapshot entry {name!r} has unknown type {payload.get('type')!r}"
                )
            self._get(name, cls).merge(payload)
