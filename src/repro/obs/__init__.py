"""repro.obs — the unified telemetry layer (DESIGN.md §10).

Causal polling-cycle tracing, a typed metrics registry, wall-clock
profiling, and trace export for the whole polling stack.  Activation is
explicit and scoped::

    from repro import obs
    from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation

    result = run_polling_simulation(PollingSimConfig(telemetry=True))
    obs.export_chrome_trace(result.telemetry, "run.trace.json")
    obs.export_jsonl(result.telemetry, "run.jsonl")
    # then: python -m repro.obs.inspect run.jsonl

or, for code that doesn't thread a config through (the schedule-level
experiments, custom sweeps)::

    with obs.use(obs.Telemetry()) as tel:
        fig2.run()
    tel.metrics.snapshot()

Disabled telemetry is free by design: every wired-in layer caches
:func:`current` once and guards emission behind a single ``enabled``
check, so runs without an active collector are bit-for-bit identical to
the pre-telemetry code path (verified by tests and the ``obs-overhead``
benchmark gate).
"""

from .export import export_chrome_trace, export_jsonl, load_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import profile_span
from .telemetry import (
    NULL_TELEMETRY,
    Span,
    SpanEvent,
    Telemetry,
    current,
    use,
)

__all__ = [
    "Telemetry",
    "Span",
    "SpanEvent",
    "NULL_TELEMETRY",
    "current",
    "use",
    "profile_span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "export_chrome_trace",
    "export_jsonl",
    "load_jsonl",
    "CampaignFeed",
    "campaign_status",
    "detect_anomalies",
    "host_fingerprint",
    "load_feed",
    "mad_outliers",
    "triage_failures",
]

_CAMPAIGN_EXPORTS = frozenset(
    {
        "CampaignFeed",
        "campaign_status",
        "detect_anomalies",
        "host_fingerprint",
        "load_feed",
        "mad_outliers",
        "triage_failures",
    }
)


def __getattr__(name):
    # Lazy so `python -m repro.obs.campaign` doesn't import the module
    # twice (runpy warns when the package __init__ pre-loads its target).
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
