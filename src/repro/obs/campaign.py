"""Campaign observability: streaming sweep telemetry and forensics.

A long ``run_sweep`` used to be a black box — per-trial summaries were
aggregated only after the last trial returned, so nothing could watch a
running campaign, flag sick trials, or tell a real perf regression from
host drift.  This module is the campaign's flight recorder plus the tools
that read it:

* :class:`CampaignFeed` — the **writer**.  ``run_sweep(...,
  campaign_dir=...)`` appends one fsynced JSONL record per trial event
  (``launched`` / ``retry`` / ``timeout`` / ``cached`` / ``completed`` /
  ``failed``) plus ``sweep-start`` / ``sweep-end`` brackets.  Every writer
  (the parent runner, each pool worker) owns its **own shard file** named
  by host fingerprint and pid, so concurrent writers — including workers
  on different machines sharing a network filesystem — never interleave a
  line.  Appends are single ``write`` calls flushed and fsynced, exactly
  the :class:`~repro.experiments.runner.SweepCheckpoint` discipline: a
  SIGKILL can tear at most the final line of one shard, and
  :func:`load_feed` skips torn lines on read.
* :func:`load_feed` / :func:`campaign_status` — the **monitor**.  Loading
  merges every shard under one (or several) campaign directories and the
  status rollup reduces the event stream to per-trial terminal states:
  trial counts (done / cached / failed / retrying / running / pending),
  completion throughput, an ETA from the observed trial-wall
  distribution, and per-experiment health.  A trial that appears in
  several runs (completed before a SIGKILL, replayed as ``cached`` by the
  resumed run) is counted **once**, by its latest terminal event.
* :func:`detect_anomalies` / :func:`triage_failures` — the **forensics**.
  Robust-MAD outlier detection over trial wall time, peak RSS, and the
  obs-metric snapshot each completed record carries (energy, delivery),
  plus structured triage of :class:`~repro.experiments.runner.TrialFailure`
  records and strict-invariant violations — every finding ships a repro
  hint (experiment + kwargs + cache key) that replays the one sick trial.

The CLI renders all of it live::

    python -m repro.obs.campaign results/campaign            # one-shot
    python -m repro.obs.campaign results/campaign --watch    # live refresh
    python -m repro.obs.campaign results/campaign --report   # forensics
    python -m repro.obs.campaign hostA/ hostB/ --report      # merged shards

``campaign_dir=None`` (the default) constructs nothing and emits nothing:
like the rest of :mod:`repro.obs`, the disabled path is bit-for-bit
identical to a build without this module.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "host_fingerprint",
    "CampaignFeed",
    "load_feed",
    "CampaignStatus",
    "campaign_status",
    "reduce_trials",
    "mad_outliers",
    "detect_anomalies",
    "triage_failures",
    "summary_fields",
    "repro_hint",
    "render_status",
    "render_report",
    "main",
]

TERMINAL_EVENTS = ("completed", "cached", "failed")

# Metrics scanned for outliers by default: the trial-wall distribution, the
# worker's memory high-water mark, and the energy / delivery scalars the
# polling stack records into the obs registry.
DEFAULT_ANOMALY_METRICS = (
    "wall_s",
    "peak_rss_kb",
    "mac.energy_j",
    "mac.packets_delivered",
    "polling.delivered",
)


# --------------------------------------------------------------------------- host


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_fingerprint() -> dict[str, Any]:
    """Identity of the machine a measurement was taken on.

    Two measurements are perf-comparable only when the fields that move
    medians agree — CPU model, core count, architecture, and the
    Python/numpy that executed the hot loops.  ``id`` digests exactly those
    fields (not the hostname: two containers on one box are the same host
    as far as a benchmark median is concerned).
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is baked into the image
        numpy_version = None
    info: dict[str, Any] = {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }
    blob = json.dumps(info, sort_keys=True, separators=(",", ":"))
    info["id"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    return info


# --------------------------------------------------------------------------- feed


def summary_fields(summary: dict[str, Any] | None) -> dict[str, Any]:
    """Flatten one per-trial telemetry summary into feed-record fields.

    Counters and gauges keep their value; histograms reduce to their mean —
    enough for the MAD detector without shipping distributions per trial.
    """
    if not summary:
        return {}
    flat: dict[str, Any] = {}
    for name, payload in summary.get("metrics", {}).items():
        if payload.get("type") == "histogram":
            count = payload.get("count") or 0
            flat[name] = payload.get("sum", 0.0) / count if count else None
        else:
            flat[name] = payload.get("value")
    return {
        "wall_s": summary.get("wall_s"),
        "peak_rss_kb": summary.get("peak_rss_kb"),
        "violations": summary.get("violations", 0),
        "metrics": flat,
    }


class CampaignFeed:
    """Append-only, crash-tolerant event log for one campaign directory.

    Each instance appends to a shard private to this (host, pid), so any
    number of concurrent writers — pool workers, resilient forks, runners
    on other machines pointed at the same directory — stay torn-tail
    isolated from each other.  Records carry ``(t, seq, run, host, pid)``
    so a merged read can order them and attribute every event.
    """

    def __init__(self, root: str | os.PathLike, run_id: str | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.host = host_fingerprint()["id"]
        self.pid = os.getpid()
        if run_id is None:
            run_id = f"{int(time.time() * 1e3):012x}-{self.pid}"
        self.run_id = run_id
        self.path = self.root / f"feed-{self.host}-{self.pid}.jsonl"
        self._seq = 0

    def emit(self, event: str, key: str | None, **fields: Any) -> None:
        """Append one event record: a single fsynced write, never a rewrite."""
        record = {
            "t": time.time(),
            "seq": self._seq,
            "run": self.run_id,
            "host": self.host,
            "pid": self.pid,
            "event": event,
            "key": key,
            **fields,
        }
        self._seq += 1
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def emit_trial(
        self,
        event: str,
        key: str | None,
        experiment: str,
        kwargs: dict[str, Any],
        summary: dict[str, Any] | None = None,
        **fields: Any,
    ) -> None:
        """A trial-scoped event, with the obs summary flattened in."""
        self.emit(
            event,
            key,
            experiment=experiment,
            kwargs=kwargs,
            **summary_fields(summary),
            **fields,
        )


def load_feed(
    roots: str | os.PathLike | Iterable[str | os.PathLike],
) -> list[dict[str, Any]]:
    """Merge every ``feed-*.jsonl`` shard under one or more campaign dirs.

    Tolerates torn tails (a line cut short by SIGKILL mid-write), blank
    lines, and junk records, mirroring :meth:`SweepCheckpoint.load`.
    Records come back sorted by ``(t, seq)`` — a stable global order good
    enough for progress accounting (writers stamp wall clocks that may skew
    across hosts; per-key reduction tolerates that).
    """
    if isinstance(roots, (str, os.PathLike)):
        roots = [roots]
    records: list[dict[str, Any]] = []
    for root in roots:
        for shard in sorted(Path(root).glob("feed-*.jsonl")):
            try:
                text = shard.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # the torn tail of a killed writer
                if isinstance(record, dict) and isinstance(record.get("event"), str):
                    records.append(record)
    records.sort(key=lambda r: (r.get("t", 0.0), r.get("seq", 0)))
    return records


# ------------------------------------------------------------------------- status


@dataclass
class CampaignStatus:
    """Reduction of a campaign feed to its current truth."""

    declared: int = 0  # trials the latest sweep-start announced
    completed: int = 0  # fresh terminal completions
    cached: int = 0  # served from cache / journal resume
    failed: int = 0  # settled TrialFailures
    running: int = 0  # launched, no terminal record yet
    retrying: int = 0  # last event is a scheduled retry
    pending: int = 0  # declared but never launched
    retries: int = 0  # retry events (total, not distinct trials)
    timeouts: int = 0  # deadline kills
    violations: int = 0  # strict-invariant violations across trials
    throughput_per_s: float | None = None
    eta_s: float | None = None
    wall_p50_s: float | None = None
    wall_p90_s: float | None = None
    first_t: float | None = None
    last_t: float | None = None
    sweep_ended: bool = False
    by_experiment: dict[str, dict[str, Any]] = field(default_factory=dict)
    trials: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def done(self) -> int:
        """Trials with a successful terminal state (fresh or replayed)."""
        return self.completed + self.cached

    @property
    def terminal(self) -> int:
        return self.done + self.failed


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


def reduce_trials(records: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-trial-key reduction: latest terminal event wins, once per key.

    This is the duplicate-free contract: a trial completed before a kill
    and replayed as ``cached`` by the resumed run collapses to one entry,
    as does a trial whose record appears in several merged shards.
    """
    trials: dict[str, dict[str, Any]] = {}
    for rec in records:
        key = rec.get("key")
        if key is None:
            continue
        slot = trials.setdefault(
            key,
            {
                "key": key,
                "experiment": rec.get("experiment"),
                "kwargs": rec.get("kwargs"),
                "state": "pending",
                "terminal": None,
                "retries": 0,
                "timeouts": 0,
                "violations": 0,
                "last_event": None,
            },
        )
        if rec.get("experiment") is not None:
            slot["experiment"] = rec["experiment"]
        if rec.get("kwargs") is not None:
            slot["kwargs"] = rec["kwargs"]
        event = rec["event"]
        slot["last_event"] = event
        if event == "retry":
            slot["retries"] += 1
            slot["state"] = "retrying"
        elif event == "timeout":
            slot["timeouts"] += 1
        elif event == "launched":
            if slot["terminal"] is None:
                slot["state"] = "running"
        elif event in TERMINAL_EVENTS:
            slot["terminal"] = rec  # records are time-sorted: latest wins
            slot["state"] = event
            slot["violations"] = int(rec.get("violations") or 0)
    return trials


def campaign_status(records: list[dict[str, Any]]) -> CampaignStatus:
    """Reduce a loaded feed to the monitor's rollup."""
    status = CampaignStatus()
    declared = 0
    for rec in records:
        if rec["event"] == "sweep-start":
            declared = max(declared, int(rec.get("trials", 0)))
        elif rec["event"] == "sweep-end":
            status.sweep_ended = True
        if status.first_t is None:
            status.first_t = rec.get("t")
        status.last_t = rec.get("t")

    trials = reduce_trials(records)
    status.trials = trials
    status.declared = max(declared, len(trials))

    walls: list[float] = []
    completion_times: list[float] = []
    for slot in trials.values():
        state = slot["state"]
        if state == "completed":
            status.completed += 1
        elif state == "cached":
            status.cached += 1
        elif state == "failed":
            status.failed += 1
        elif state == "retrying":
            status.retrying += 1
        elif state == "running":
            status.running += 1
        status.retries += slot["retries"]
        status.timeouts += slot["timeouts"]
        status.violations += slot["violations"]
        term = slot["terminal"]
        if term is not None:
            if term.get("wall_s") is not None:
                walls.append(float(term["wall_s"]))
            if term["event"] == "completed":
                completion_times.append(float(term["t"]))

        exp = slot["experiment"] or "?"
        rollup = status.by_experiment.setdefault(
            exp,
            {
                "trials": 0,
                "completed": 0,
                "cached": 0,
                "failed": 0,
                "retries": 0,
                "violations": 0,
                "walls": [],
            },
        )
        rollup["trials"] += 1
        if state in ("completed", "cached", "failed"):
            rollup[state] += 1
        rollup["retries"] += slot["retries"]
        rollup["violations"] += slot["violations"]
        if term is not None and term.get("wall_s") is not None:
            rollup["walls"].append(float(term["wall_s"]))

    status.pending = max(
        0, status.declared - status.terminal - status.running - status.retrying
    )
    walls.sort()
    if walls:
        status.wall_p50_s = _percentile(walls, 0.50)
        status.wall_p90_s = _percentile(walls, 0.90)

    # Throughput over the most recent completions; the ETA projects the
    # remaining trials at that rate, falling back to a serial estimate from
    # the wall distribution when fewer than two completions have landed.
    remaining = status.declared - status.terminal
    if len(completion_times) >= 2:
        tail = sorted(completion_times)[-20:]
        spread = tail[-1] - tail[0]
        if spread > 0:
            status.throughput_per_s = (len(tail) - 1) / spread
    if remaining > 0:
        if status.throughput_per_s:
            status.eta_s = remaining / status.throughput_per_s
        elif status.wall_p50_s is not None:
            status.eta_s = remaining * status.wall_p50_s
    for rollup in status.by_experiment.values():
        rollup_walls = sorted(rollup.pop("walls"))
        rollup["wall_p50_s"] = (
            _percentile(rollup_walls, 0.50) if rollup_walls else None
        )
    return status


# ---------------------------------------------------------------------- forensics


def repro_hint(
    experiment: str | None, kwargs: dict[str, Any] | None, key: str | None
) -> str:
    """A paste-able one-liner that replays exactly one trial."""
    seed = (kwargs or {}).get("seed")
    hint = (
        f"run_trial(Trial({experiment!r}, {kwargs!r}))"
        if experiment is not None
        else "run_trial(<unknown trial>)"
    )
    parts = [hint]
    if seed is not None:
        parts.append(f"seed={seed}")
    if key:
        parts.append(f"cache key {key[:12]}")
    return "  # ".join([parts[0], ", ".join(parts[1:])]) if parts[1:] else parts[0]


def mad_outliers(
    values: list[float], k: float = 3.5, min_n: int = 5
) -> list[tuple[int, float]]:
    """Robust outlier indices via the median-absolute-deviation rule.

    Returns ``(index, score)`` pairs where ``score = |x - median| /
    (1.4826 * MAD)`` exceeds *k*.  When the MAD degenerates to zero (a
    majority of identical values) the mean absolute deviation stands in;
    when that is zero too the series is constant and nothing is an
    outlier.  Series shorter than *min_n* are never flagged — a median of
    three points is not evidence.
    """
    n = len(values)
    if n < min_n:
        return []
    ordered = sorted(values)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    abs_dev = [abs(v - median) for v in values]
    ordered_dev = sorted(abs_dev)
    mad = (
        ordered_dev[mid]
        if n % 2
        else (ordered_dev[mid - 1] + ordered_dev[mid]) / 2.0
    )
    scale = 1.4826 * mad
    if scale == 0.0:
        mean_abs = sum(abs_dev) / n
        scale = 1.2533 * mean_abs  # MAD fallback for spiky-but-mostly-flat data
    if scale == 0.0:
        return []
    out = []
    for idx, dev in enumerate(abs_dev):
        score = dev / scale
        if score > k:
            out.append((idx, score))
    return out


def detect_anomalies(
    records: list[dict[str, Any]],
    metrics: Iterable[str] = DEFAULT_ANOMALY_METRICS,
    k: float = 3.5,
    min_n: int = 5,
) -> list[dict[str, Any]]:
    """MAD-flag trials whose wall / energy / delivery metrics are outliers.

    Distributions are built **per experiment** (mixing fig2 walls with
    fault-ablation walls would flag the experiment, not the trial) over
    every trial with a successful terminal record.  Each finding carries
    the trial's repro hint so the outlier can be replayed in isolation.
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for slot in reduce_trials(records).values():
        term = slot["terminal"]
        if term is None or term["event"] == "failed":
            continue
        groups.setdefault(slot["experiment"] or "?", []).append(slot)

    def metric_value(term: dict[str, Any], name: str) -> float | None:
        if name in ("wall_s", "peak_rss_kb"):
            value = term.get(name)
        else:
            value = (term.get("metrics") or {}).get(name)
        return float(value) if isinstance(value, (int, float)) else None

    findings: list[dict[str, Any]] = []
    for experiment, slots in sorted(groups.items()):
        for name in metrics:
            series: list[tuple[dict[str, Any], float]] = []
            for slot in slots:
                value = metric_value(slot["terminal"], name)
                if value is not None:
                    series.append((slot, value))
            values = [v for _, v in series]
            ordered = sorted(values)
            for idx, score in mad_outliers(values, k=k, min_n=min_n):
                slot = series[idx][0]
                findings.append(
                    {
                        "experiment": experiment,
                        "key": slot["key"],
                        "kwargs": slot["kwargs"],
                        "metric": name,
                        "value": values[idx],
                        "median": _percentile(ordered, 0.50),
                        "score": score,
                        "hint": repro_hint(experiment, slot["kwargs"], slot["key"]),
                    }
                )
    findings.sort(key=lambda f: -f["score"])
    return findings


def triage_failures(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Structured triage: settled failures and invariant-violating trials.

    One entry per sick trial (latest state wins — a trial that failed in a
    killed run but completed after resume is healthy), each with the repro
    hint that replays it under ``REPRO_VALIDATE=strict``.
    """
    triaged: list[dict[str, Any]] = []
    for slot in sorted(reduce_trials(records).values(), key=lambda s: s["key"]):
        term = slot["terminal"]
        if term is None:
            continue
        hint = repro_hint(slot["experiment"], slot["kwargs"], slot["key"])
        if term["event"] == "failed":
            triaged.append(
                {
                    "kind": "failure",
                    "experiment": slot["experiment"],
                    "key": slot["key"],
                    "kwargs": slot["kwargs"],
                    "error": term.get("error"),
                    "attempts": term.get("attempts"),
                    "timed_out": bool(term.get("timed_out")),
                    "hint": hint,
                }
            )
        elif slot["violations"]:
            triaged.append(
                {
                    "kind": "invariant-violation",
                    "experiment": slot["experiment"],
                    "key": slot["key"],
                    "kwargs": slot["kwargs"],
                    "violations": slot["violations"],
                    "hint": hint,
                }
            )
    return triaged


# ---------------------------------------------------------------------- rendering


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def render_status(status: CampaignStatus, width: int = 40) -> str:
    """The live progress block: one bar, one counts line, one rates line."""
    lines = []
    declared = max(status.declared, 1)
    frac = status.terminal / declared
    filled = int(round(frac * width))
    bar = "#" * filled + "." * (width - filled)
    lines.append(
        f"[{bar}] {status.terminal}/{status.declared} trials "
        f"({frac:6.1%}){'  [sweep ended]' if status.sweep_ended else ''}"
    )
    lines.append(
        f"  done {status.done} (completed {status.completed}, cached "
        f"{status.cached})  failed {status.failed}  running {status.running}  "
        f"retrying {status.retrying}  pending {status.pending}"
    )
    rate = (
        f"{status.throughput_per_s:.2f} trials/s"
        if status.throughput_per_s
        else "--"
    )
    wall = (
        f"p50 {status.wall_p50_s:.2f} s / p90 {status.wall_p90_s:.2f} s"
        if status.wall_p50_s is not None
        else "--"
    )
    lines.append(
        f"  throughput {rate}  trial wall {wall}  ETA {_fmt_eta(status.eta_s)}"
    )
    lines.append(
        f"  retries {status.retries}  timeouts {status.timeouts}  "
        f"invariant violations {status.violations}"
    )
    if status.by_experiment:
        lines.append("  per-experiment health:")
        for exp, rollup in sorted(status.by_experiment.items()):
            wall50 = rollup["wall_p50_s"]
            wall_s = f"{wall50:.2f} s" if wall50 is not None else "--"
            sick = rollup["failed"] or rollup["violations"]
            verdict = "SICK" if sick else "ok"
            lines.append(
                f"    {exp:<28} {verdict:<4} "
                f"{rollup['completed'] + rollup['cached']}/{rollup['trials']} done, "
                f"{rollup['failed']} failed, {rollup['retries']} retries, "
                f"{rollup['violations']} violations, wall p50 {wall_s}"
            )
    return "\n".join(lines)


def render_report(
    records: list[dict[str, Any]],
    mad_k: float = 3.5,
    min_n: int = 5,
    top: int = 10,
) -> str:
    """The post-hoc forensics report: status + anomalies + failure triage."""
    status = campaign_status(records)
    lines = [render_status(status)]
    anomalies = detect_anomalies(records, k=mad_k, min_n=min_n)
    if anomalies:
        lines.append(f"\nanomalies (robust MAD, k={mad_k:g}):")
        for finding in anomalies[:top]:
            lines.append(
                f"  {finding['experiment']:<24} {finding['metric']:<20} "
                f"value {finding['value']:.4g} vs median {finding['median']:.4g} "
                f"(score {finding['score']:.1f})"
            )
            lines.append(f"    repro: {finding['hint']}")
        if len(anomalies) > top:
            lines.append(f"  ... {len(anomalies) - top} more")
    else:
        lines.append("\nno metric anomalies.")
    triaged = triage_failures(records)
    if triaged:
        lines.append(f"\ntriage ({len(triaged)} sick trial(s)):")
        for entry in triaged:
            if entry["kind"] == "failure":
                flavor = "timeout" if entry["timed_out"] else "error"
                lines.append(
                    f"  FAILED   {entry['experiment']} after "
                    f"{entry['attempts']} attempt(s) [{flavor}]: "
                    f"{str(entry['error'])[:90]}"
                )
            else:
                lines.append(
                    f"  VIOLATED {entry['experiment']}: "
                    f"{entry['violations']} strict-invariant violation(s)"
                )
            lines.append(f"    repro: {entry['hint']}")
    else:
        lines.append("\nhealth: clean — no failures, no invariant violations.")
    return "\n".join(lines)


# ---------------------------------------------------------------------------- CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.campaign",
        description="Live progress, health rollups, and forensics for a "
        "run_sweep campaign directory (merge several for multi-host shards).",
    )
    parser.add_argument("campaign_dir", nargs="+",
                        help="campaign feed director(ies) from run_sweep(campaign_dir=...)")
    parser.add_argument("--watch", action="store_true",
                        help="refresh the status block until the sweep ends")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period for --watch (default 2 s)")
    parser.add_argument("--report", action="store_true",
                        help="post-hoc forensics: anomalies + failure triage")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable status/anomalies/triage dump")
    parser.add_argument("--mad-k", type=float, default=3.5,
                        help="MAD outlier threshold (default 3.5)")
    parser.add_argument("--min-n", type=int, default=5,
                        help="minimum samples before flagging outliers (default 5)")
    parser.add_argument("--top", type=int, default=10,
                        help="max anomalies to print (default 10)")
    args = parser.parse_args(argv)

    missing = [d for d in args.campaign_dir if not Path(d).is_dir()]
    if missing:
        print(f"no campaign directory at: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.watch:
        try:
            while True:
                records = load_feed(args.campaign_dir)
                status = campaign_status(records)
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                print(render_status(status))
                if status.sweep_ended and status.running == 0 and status.retrying == 0:
                    break
                time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    records = load_feed(args.campaign_dir)
    if not records:
        print("campaign feed is empty (no feed-*.jsonl shards with records)")
        return 1
    if args.json:
        payload = {
            "status": {
                k: v
                for k, v in vars(campaign_status(records)).items()
                if k != "trials"
            },
            "anomalies": detect_anomalies(records, k=args.mad_k, min_n=args.min_n),
            "triage": triage_failures(records),
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    if args.report:
        print(render_report(records, mad_k=args.mad_k, min_n=args.min_n, top=args.top))
    else:
        print(render_status(campaign_status(records)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
