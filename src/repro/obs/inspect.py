"""Trace-file summarizer: ``python -m repro.obs.inspect trace.jsonl``.

Reads a JSONL trace written by :func:`repro.obs.export_jsonl` and prints

* per-phase simulation time (where the duty cycle's seconds went),
* wall-clock profiling totals (where the *solver's* seconds went),
* the top individual spans by duration,
* per-radio energy totals (reconciling with :mod:`repro.metrics.energy`),
* the violation / failover / blacklist / repair timeline, and
* the causal chain of every failed poll request (``--failures``),

so a regression or a TTR outlier can be diagnosed from the trace file
alone, without rerunning the simulation under print-debugging.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Any

from .export import load_jsonl

__all__ = ["summarize", "failure_chains", "engine_field_health", "main"]

_TIMELINE_EVENTS = (
    "invariant-violation",
    "failover",
    "blacklist",
    "head-crash",
    "head-declared-dead",
    "head-adoption",
)


def _fmt_time(clock: str, seconds: float) -> str:
    if clock == "slot":
        return f"{seconds:.0f} slots"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.3f} ms"


def _span_duration(span: dict[str, Any]) -> float:
    end = span.get("end")
    return 0.0 if end is None else end - span["start"]


def per_phase_time(spans: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """``{phase name: {"count", "dur"}}`` over sim-clock phase spans."""
    out: dict[str, dict[str, float]] = defaultdict(lambda: {"count": 0, "dur": 0.0})
    for span in spans:
        if span["kind"] == "phase" and span["clock"] == "sim":
            slot = out[span["name"]]
            slot["count"] += 1
            slot["dur"] += _span_duration(span)
    return dict(out)


def profile_time(spans: list[dict[str, Any]]) -> dict[str, dict[str, float]]:
    """``{profile name: {"count", "dur"}}`` over wall-clock spans."""
    out: dict[str, dict[str, float]] = defaultdict(lambda: {"count": 0, "dur": 0.0})
    for span in spans:
        if span["clock"] == "wall":
            slot = out[span["name"]]
            slot["count"] += 1
            slot["dur"] += _span_duration(span)
    return dict(out)


def failure_chains(trace: dict[str, Any]) -> list[dict[str, Any]]:
    """The end-to-end story of every failed poll request.

    Each chain links the request span (with its retry/failover events) to
    the blacklist event that wrote its sensor off and the repair span(s)
    that routed around the death — the acceptance path of DESIGN.md §10.
    """
    spans = trace["spans"]
    blacklist_events: list[dict[str, Any]] = []
    for span in spans:
        for ev in span.get("events", ()):
            if ev["name"] == "blacklist":
                blacklist_events.append(ev)
    blacklist_events.extend(
        e for e in trace["timeline"] if e["name"] == "blacklist"
    )
    repairs = [s for s in spans if s["kind"] == "repair"]
    chains = []
    for span in spans:
        if span["kind"] != "request" or span["attrs"].get("status") != "failed":
            continue
        sensor = span["attrs"].get("sensor")
        linked_blacklists = [
            e for e in blacklist_events if e["attrs"].get("sensor") == sensor
        ]
        linked_repairs = [
            r
            for r in repairs
            if sensor in r["attrs"].get("blacklisted", ())
            or sensor in r["attrs"].get("unreachable", ())
        ]
        chains.append(
            {
                "request": span,
                "sensor": sensor,
                "events": span.get("events", []),
                "blacklist": linked_blacklists,
                "repairs": linked_repairs,
            }
        )
    return chains


def engine_field_health(metrics: dict[str, Any]) -> list[str]:
    """Engine-eligibility and field-staleness lines for the summary.

    ``engine.scalar_fallback.<reason>`` counters say why a run that asked
    for the vector engine executed scalar slots (so a slow trace is read as
    a gated eligibility decision, not a mystery regression), and the
    ``field.assignment_staleness`` gauge/trajectory says how stale the
    Voronoi forming was — both land in the registry but were previously
    invisible from the CLI.
    """
    lines: list[str] = []
    fallbacks = {
        name[len("engine.scalar_fallback."):]: payload.get("value")
        for name, payload in sorted(metrics.items())
        if name.startswith("engine.scalar_fallback.")
    }
    if fallbacks:
        total = sum(v for v in fallbacks.values() if v)
        reasons = ", ".join(f"{r}={v}" for r, v in fallbacks.items())
        lines.append(f"vector->scalar fallbacks: {total} ({reasons})")
    for name in ("mac.vector_slots", "mac.scalar_slots"):
        payload = metrics.get(name)
        if payload is not None:
            lines.append(f"{name.split('.', 1)[1]}: {payload.get('value')}")
    gauge = metrics.get("field.assignment_staleness")
    if gauge is not None and gauge.get("value") is not None:
        lines.append(f"field assignment staleness (final): {gauge['value']:.4f}")
    traj = metrics.get("field.assignment_staleness.trajectory")
    if traj is not None and traj.get("count"):
        mean = traj["sum"] / traj["count"]
        lines.append(
            f"field staleness trajectory: mean {mean:.4f}, "
            f"max {traj['max']:.4f} over {traj['count']} epochs"
        )
    return lines


def summarize(
    trace: dict[str, Any], top: int = 10, show_failures: bool = True
) -> str:
    """Render the human-readable report for one loaded trace."""
    lines: list[str] = []
    spans = trace["spans"]
    meta = trace.get("meta", {})
    extras = meta.get("extras", {})

    lines.append(f"trace: {len(spans)} spans, {len(trace['timeline'])} timeline "
                 f"events, {len(trace['cycles'])} cycle snapshots")

    phases = per_phase_time(spans)
    if phases:
        lines.append("\nper-phase simulation time:")
        total = sum(v["dur"] for v in phases.values())
        for name, slot in sorted(phases.items(), key=lambda kv: -kv[1]["dur"]):
            share = slot["dur"] / total if total > 0 else 0.0
            lines.append(
                f"  {name:<12} {slot['dur']:>10.4f} s  "
                f"x{int(slot['count']):<5} {share:6.1%}"
            )
        lines.append(f"  {'total':<12} {total:>10.4f} s")

    profiles = profile_time(spans)
    if profiles:
        lines.append("\nwall-clock profiling:")
        for name, slot in sorted(profiles.items(), key=lambda kv: -kv[1]["dur"]):
            lines.append(
                f"  {name:<28} {slot['dur'] * 1e3:>10.3f} ms  x{int(slot['count'])}"
            )

    health = engine_field_health(meta.get("metrics", {}))
    if health:
        lines.append("\nengine / field health:")
        lines.extend(f"  {line}" for line in health)

    ranked = sorted(spans, key=_span_duration, reverse=True)[:top]
    if ranked:
        lines.append(f"\ntop {len(ranked)} spans by duration:")
        for span in ranked:
            lines.append(
                f"  #{span['span_id']:<5} {span['kind']:<8} {span['name']:<20} "
                f"{_fmt_time(span['clock'], _span_duration(span))}"
            )

    energy = extras.get("energy_per_radio_j")
    if energy is not None:
        lines.append("\nper-radio energy (J):")
        for i, joules in enumerate(energy):
            label = "head" if i == len(energy) - 1 else f"s{i}"
            lines.append(f"  {label:<6} {joules:.9f}")
        lines.append(f"  total  {sum(energy):.9f}")

    notable = [e for e in trace["timeline"] if e["name"] in _TIMELINE_EVENTS]
    for span in spans:
        for ev in span.get("events", ()):
            if ev["name"] in _TIMELINE_EVENTS:
                notable.append(ev)
    repair_spans = [s for s in spans if s["kind"] == "repair"]
    if notable or repair_spans:
        lines.append("\nviolation / failover / repair timeline:")
        rows = [(e["time"], e["name"], e.get("attrs", {})) for e in notable]
        rows += [
            (s["start"], "repair", s["attrs"]) for s in repair_spans
        ]
        for t, name, attrs in sorted(rows, key=lambda r: r[0]):
            brief = ", ".join(
                f"{k}={v}" for k, v in attrs.items()
                if k in ("invariant", "sensor", "reason", "blacklisted",
                         "unreachable", "head", "adopter", "orphans", "nodes")
            )
            lines.append(f"  t={t:>10.4f}  {name:<20} {brief}")

    if show_failures:
        chains = failure_chains(trace)
        if chains:
            lines.append(f"\nfailed poll requests ({len(chains)}):")
            for chain in chains:
                req = chain["request"]
                lines.append(
                    f"  request #{req['attrs'].get('request_id')} "
                    f"(sensor {chain['sensor']}, span #{req['span_id']}):"
                )
                for ev in chain["events"]:
                    lines.append(f"    t={ev['time']:>10.4f}  {ev['name']}")
                for ev in chain["blacklist"]:
                    lines.append(
                        f"    t={ev['time']:>10.4f}  blacklist declared"
                    )
                for rep in chain["repairs"]:
                    lines.append(
                        f"    t={rep['start']:>10.4f}  repair span #{rep['span_id']} "
                        f"(blacklisted={rep['attrs'].get('blacklisted')})"
                    )
        else:
            lines.append("\nno failed poll requests.")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.inspect", description=__doc__
    )
    parser.add_argument("trace", help="JSONL trace file from export_jsonl")
    parser.add_argument("--top", type=int, default=10,
                        help="how many top spans to list (default 10)")
    parser.add_argument("--no-failures", action="store_true",
                        help="skip the failed-request causal chains")
    args = parser.parse_args(argv)
    trace = load_jsonl(args.trace)
    print(summarize(trace, top=args.top, show_failures=not args.no_failures))
    return 0


if __name__ == "__main__":
    sys.exit(main())
