"""Trace exporters: JSONL (the repo's native format) and Chrome trace.

JSONL layout — one self-describing object per line, loadable by
:func:`load_jsonl` and summarized by ``python -m repro.obs.inspect``:

* ``{"type": "meta", ...}`` — run extras (per-radio energy, config hints)
  plus the final metrics snapshot;
* ``{"type": "span", ...}`` — one per span, events inlined;
* ``{"type": "timeline", ...}`` — one per run-level event (violations,
  blacklist declarations, head crashes);
* ``{"type": "cycle", ...}`` — one per duty-cycle metrics snapshot.

The Chrome-trace export targets ``chrome://tracing`` / Perfetto: spans
become complete (``"ph": "X"``) events, span events become instants, and
each clock domain gets its own pseudo-process so simulation time (µs = sim
seconds × 1e6) never interleaves with wall-clock profiling.  Request spans
are fanned out one thread per sensor, which renders the per-sensor retry /
failover history as parallel tracks under the cycle/phase timeline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .telemetry import Span, SpanEvent, Telemetry

__all__ = [
    "export_jsonl",
    "export_chrome_trace",
    "load_jsonl",
]

_CLOCK_PIDS = {"sim": 1, "wall": 2, "slot": 3}
_CLOCK_LABELS = {
    "sim": "simulation time",
    "wall": "wall-clock profiling",
    "slot": "slot-indexed scheduling",
}


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / tuples / sets into JSON-compatible values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and getattr(value, "ndim", 0) == 0:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def export_jsonl(telemetry: Telemetry, path: str | os.PathLike) -> Path:
    """Write the full telemetry (spans, timeline, cycles, meta) as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "extras": _jsonable(telemetry.extras),
            "metrics": telemetry.metrics.snapshot(),
            "span_aggregate": telemetry.span_aggregate(),
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for span in telemetry.spans:
            fh.write(json.dumps({"type": "span", **_jsonable(span.dump())}) + "\n")
        for event in telemetry.timeline:
            fh.write(
                json.dumps({"type": "timeline", **_jsonable(event.dump())}) + "\n"
            )
        for snap in telemetry.cycle_snapshots:
            fh.write(json.dumps({"type": "cycle", **_jsonable(snap)}) + "\n")
    return path


def load_jsonl(path: str | os.PathLike) -> dict[str, Any]:
    """Load a JSONL trace back into ``{"meta", "spans", "timeline", "cycles"}``.

    Unparsable lines (a tail truncated by a crash) are skipped, mirroring
    the sweep checkpoint's tolerance.
    """
    meta: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    timeline: list[dict[str, Any]] = []
    cycles: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            rtype = record.get("type")
            if rtype == "meta":
                meta = record
            elif rtype == "span":
                spans.append(record)
            elif rtype == "timeline":
                timeline.append(record)
            elif rtype == "cycle":
                cycles.append(record)
    return {"meta": meta, "spans": spans, "timeline": timeline, "cycles": cycles}


def _ts(span_clock: str, t: float) -> float:
    """Chrome trace timestamps are microseconds; slot indices scale by 1e3
    so one slot renders as a legible 1 ms block."""
    return t * (1e3 if span_clock == "slot" else 1e6)


def _tid(span: Span) -> int:
    if span.kind == "request":
        sensor = span.attrs.get("sensor")
        return 100 + int(sensor) if sensor is not None else 99
    return 0


def export_chrome_trace(telemetry: Telemetry, path: str | os.PathLike) -> Path:
    """Write a ``chrome://tracing`` / Perfetto compatible trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events: list[dict[str, Any]] = []
    for clock, pid in _CLOCK_PIDS.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": _CLOCK_LABELS[clock]},
            }
        )
    seen_request_tids: set[tuple[int, int]] = set()
    for span in telemetry.spans:
        pid = _CLOCK_PIDS[span.clock]
        tid = _tid(span)
        if span.kind == "request" and (pid, tid) not in seen_request_tids:
            seen_request_tids.add((pid, tid))
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"sensor {span.attrs.get('sensor', '?')}"},
                }
            )
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": _ts(span.clock, span.start),
                "dur": max(0.0, _ts(span.clock, end) - _ts(span.clock, span.start)),
                "pid": pid,
                "tid": tid,
                "args": _jsonable(
                    {"span_id": span.span_id, "parent_id": span.parent_id, **span.attrs}
                ),
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "cat": span.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": _ts(span.clock, ev.time),
                    "pid": pid,
                    "tid": tid,
                    "args": _jsonable({"span_id": span.span_id, **ev.attrs}),
                }
            )
    for ev in telemetry.timeline:
        events.append(
            {
                "name": ev.name,
                "cat": "timeline",
                "ph": "i",
                "s": "g",  # global scope: draw across the whole track
                "ts": _ts("sim", max(0.0, ev.time)),
                "pid": _CLOCK_PIDS["sim"],
                "tid": 0,
                "args": _jsonable(ev.attrs),
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return path
