"""Causal spans and the telemetry context (DESIGN.md §10).

One :class:`Telemetry` instance collects everything observable about a run:

* a tree of :class:`Span`\\ s with stable ids — ``run → cycle → phase →
  slot`` scopes plus per-poll-request spans, so a dropped packet, a
  failover re-issue, or a route repair traces back to the poll request
  that caused it;
* a :class:`~repro.obs.metrics.MetricsRegistry` of typed instruments,
  snapshotted per duty cycle;
* a flat *timeline* of events that belong to the run rather than to any
  one span (invariant violations, blacklist declarations, head crashes).

Spans carry a ``clock`` domain: ``"sim"`` spans are stamped in simulation
seconds, ``"wall"`` spans in :func:`time.perf_counter` seconds (solver and
kernel profiling), and ``"slot"`` spans in abstract slot indices (the
schedule-level algorithms outside the DES).  Exporters keep the domains on
separate tracks; ids are unique across all of them.

Activation is scoped, not global: ``with obs.use(Telemetry()) as tel: ...``
makes ``tel`` the ambient collector that every wired-in layer discovers via
:func:`current`.  Outside any scope, :data:`NULL_TELEMETRY` — a permanently
disabled collector — is returned, so emission sites reduce to one attribute
check and the disabled path stays bit-for-bit identical to a build without
telemetry at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "SpanEvent",
    "Telemetry",
    "NULL_TELEMETRY",
    "current",
    "use",
]

CLOCKS = ("sim", "wall", "slot")


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (retry, delivery, ...)."""

    time: float
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def dump(self) -> dict[str, Any]:
        return {"time": self.time, "name": self.name, "attrs": self.attrs}


@dataclass
class Span:
    """One timed unit of work with a stable id and an optional parent."""

    span_id: int
    parent_id: int | None
    kind: str  # "run" | "cycle" | "phase" | "slot" | "request" | "repair" | "profile" ...
    name: str
    clock: str  # one of CLOCKS
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed span time (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def dump(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "clock": self.clock,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "events": [e.dump() for e in self.events],
        }


class Telemetry:
    """Collector for one run (or one aggregation of many runs).

    All emission methods are no-ops when ``enabled`` is False; hot call
    sites cache the ambient telemetry once and guard on ``enabled`` so the
    disabled path costs a single branch.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self.timeline: list[SpanEvent] = []
        self.cycle_snapshots: list[dict[str, Any]] = []
        self.extras: dict[str, Any] = {}
        # Aggregation state (sweep-runner use): per-(clock, kind) totals of
        # merged child summaries, and how many summaries were merged.
        self.merged_spans: dict[str, dict[str, float]] = {}
        self.merged_runs = 0
        self.root: Span | None = None
        self._next_id = 1
        self._wall_stack: list[Span] = []

    # -- spans -------------------------------------------------------------------

    def begin(
        self,
        kind: str,
        name: str,
        time: float,
        clock: str = "sim",
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span | None:
        """Open a span; returns None (and records nothing) when disabled."""
        if not self.enabled:
            return None
        if clock not in CLOCKS:
            raise ValueError(f"clock must be one of {CLOCKS}, got {clock!r}")
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            kind=kind,
            name=name,
            clock=clock,
            start=time,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span: Span | None, time: float, **attrs: Any) -> None:
        """Close an open span (tolerates ``None`` from a disabled begin)."""
        if span is None or not self.enabled:
            return
        span.end = time
        if attrs:
            span.attrs.update(attrs)

    def add_event(
        self, span: Span | None, time: float, name: str, **attrs: Any
    ) -> None:
        """Attach a point event to *span* (no-op for ``None``)."""
        if span is None or not self.enabled:
            return
        span.events.append(SpanEvent(time=time, name=name, attrs=attrs))

    def timeline_event(self, time: float, name: str, **attrs: Any) -> None:
        """A run-level event not owned by any span (violations, crashes)."""
        if not self.enabled:
            return
        self.timeline.append(SpanEvent(time=time, name=name, attrs=attrs))

    # -- wall-clock profiling scope (synchronous, so a stack is safe) -------------

    def push_wall(self, span: Span | None) -> None:
        if span is not None:
            self._wall_stack.append(span)

    def pop_wall(self, span: Span | None) -> None:
        if span is not None and self._wall_stack and self._wall_stack[-1] is span:
            self._wall_stack.pop()

    @property
    def wall_parent(self) -> Span | None:
        return self._wall_stack[-1] if self._wall_stack else None

    # -- per-cycle metric snapshots ------------------------------------------------

    def snapshot_cycle(self, **meta: Any) -> None:
        """Capture the registry state plus caller metadata for one cycle.

        Registry values are *cumulative*; consumers diff consecutive
        snapshots for per-cycle deltas (the exporters keep them verbatim).
        """
        if not self.enabled:
            return
        self.cycle_snapshots.append({**meta, "metrics": self.metrics.snapshot()})

    # -- violations (wired via repro.validate listener) ---------------------------

    def on_violation(self, violation) -> None:
        """Listener for :class:`repro.validate.InvariantMonitor`."""
        if not self.enabled:
            return
        self.timeline.append(
            SpanEvent(
                time=violation.sim_time if violation.sim_time is not None else -1.0,
                name="invariant-violation",
                attrs={
                    "invariant": violation.invariant,
                    "message": violation.message,
                    "nodes": list(violation.nodes),
                    "hint": violation.hint,
                },
            )
        )

    # -- aggregation across runs / processes --------------------------------------

    def span_aggregate(self) -> dict[str, dict[str, float]]:
        """``{"clock:kind": {"count", "dur"}}`` totals over collected spans."""
        agg: dict[str, dict[str, float]] = {}
        for span in self.spans:
            key = f"{span.clock}:{span.kind}"
            slot = agg.setdefault(key, {"count": 0, "dur": 0.0})
            slot["count"] += 1
            slot["dur"] += span.duration
        return agg

    def summary(self) -> dict[str, Any]:
        """A JSON-compatible digest that survives pipes, pools, and caches.

        Small by construction (metrics snapshot + per-kind span totals, not
        the spans themselves), so attaching one per sweep trial is cheap.
        """
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.span_aggregate(),
            "events": len(self.timeline),
            "violations": sum(
                1 for e in self.timeline if e.name == "invariant-violation"
            ),
        }

    def merge_summary(self, summary: dict[str, Any]) -> None:
        """Fold one :meth:`summary` (typically from a worker) into this
        collector: metrics merge by type, span totals add."""
        if not self.enabled:
            return
        self.metrics.merge_snapshot(summary.get("metrics", {}))
        for key, slot in summary.get("spans", {}).items():
            mine = self.merged_spans.setdefault(key, {"count": 0, "dur": 0.0})
            mine["count"] += slot["count"]
            mine["dur"] += slot["dur"]
        self.merged_runs += 1

    # -- convenience ---------------------------------------------------------------

    def spans_of(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def find_span(self, span_id: int) -> Span | None:
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None


NULL_TELEMETRY = Telemetry(enabled=False)
"""The permanently disabled collector returned outside any ``use`` scope."""

_STACK: list[Telemetry] = []


def current() -> Telemetry:
    """The ambient telemetry, or :data:`NULL_TELEMETRY` when none is active."""
    return _STACK[-1] if _STACK else NULL_TELEMETRY


@contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Activate *telemetry* for the dynamic extent of the block.

    Also subscribes it to the process-wide invariant monitor so every
    :class:`~repro.validate.InvariantViolation` recorded inside the block
    lands on the telemetry timeline (strict mode still raises; the event is
    captured first).
    """
    from .. import validate as _validate

    _STACK.append(telemetry)
    listener_attached = False
    if telemetry.enabled:
        _validate.MONITOR.listeners.append(telemetry.on_violation)
        listener_attached = True
    try:
        yield telemetry
    finally:
        _STACK.pop()
        if listener_attached:
            try:
                _validate.MONITOR.listeners.remove(telemetry.on_violation)
            except ValueError:  # pragma: no cover - double-detached externally
                pass
