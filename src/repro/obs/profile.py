"""Wall-clock profiling spans over the ambient telemetry.

:func:`profile_span` wraps a synchronous computation (a flow-solver probe
batch, a route repair, a sweep worker) in a ``clock="wall"`` span timed with
:func:`time.perf_counter`.  Wall spans nest through a stack on the telemetry
object — safe because profiled sections never yield to the event loop —
and optionally feed a histogram so repair latencies and solve times show up
in metric snapshots without a second bookkeeping path.

When no telemetry is active the context manager costs one function call and
one attribute check, then yields ``None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

from .telemetry import Span, current

__all__ = ["profile_span"]


@contextmanager
def profile_span(
    name: str,
    kind: str = "profile",
    histogram: str | None = None,
    **attrs: Any,
) -> Iterator[Span | None]:
    """Time the enclosed block as a wall-clock span on the active telemetry.

    ``histogram`` names a registry histogram that additionally observes the
    elapsed seconds (e.g. ``"routing.repair_wall_s"``).
    """
    tel = current()
    if not tel.enabled:
        yield None
        return
    start = perf_counter()
    span = tel.begin(
        kind, name, start, clock="wall", parent=tel.wall_parent, **attrs
    )
    tel.push_wall(span)
    try:
        yield span
    finally:
        tel.pop_wall(span)
        end = perf_counter()
        tel.finish(span, end)
        if histogram is not None:
            tel.metrics.histogram(histogram).observe(end - start)
