"""Runtime invariant monitor for the polling stack (DESIGN.md §8).

The paper's correctness claims rest on physical invariants the code used to
assume silently: packet conservation along relay paths, at most M compatible
transmissions per slot (Sec. III-D), flow conservation and per-sensor load
≤ δ in the min-max routing (Sec. III-A), and monotone battery drain.  This
module makes them *checked* properties: the hot layers call the check
functions below at natural boundaries (end of a polling phase, end of a flow
solve, energy snapshot, every kernel event), and every breach is recorded as
a structured :class:`InvariantViolation` carrying the simulation time, the
implicated node ids, and a minimal repro hint.

Strictness is pluggable per :class:`InvariantMonitor` and defaults to the
process-wide monitor configured by the ``REPRO_VALIDATE`` environment
variable:

* ``off``    — checks short-circuit; zero overhead beyond one branch.
* ``warn``   — (default) violations are recorded and emitted as
  :class:`InvariantWarning`\\ s; execution continues.
* ``strict`` — the first violation raises :class:`InvariantError`.

Scoped overrides nest::

    from repro import validate
    with validate.strict():
        run_polling_simulation(config)   # raises on the first violation

Healthy runs record nothing, so ``warn`` mode's cost is the checks
themselves — each is O(size of the artifact it checks), far below the work
that produced the artifact (see DESIGN.md §8 for the catalog and measured
overhead).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import-cycle guards only
    from .core.online import OnlinePollingScheduler
    from .core.schedule import PollingSchedule
    from .interference.base import CompatibilityOracle
    from .metrics.energy import EnergyReport
    from .routing.backup import BackupRoutes
    from .routing.maxflow import FlowNetwork
    from .routing.minmax import FlowSolution
    from .topology.cluster import Cluster

__all__ = [
    "MODES",
    "InvariantViolation",
    "InvariantError",
    "InvariantWarning",
    "InvariantMonitor",
    "MONITOR",
    "get_monitor",
    "set_mode",
    "strict",
    "warn",
    "off",
    "check_schedule",
    "check_polling_outcome",
    "check_flow_solution",
    "check_network_flow",
    "check_energy_report",
    "check_delivered_stream",
    "check_backup_routes",
    "check_dynamic_membership",
    "check_reform_conservation",
    "check_handoff_conservation",
    "check_single_membership",
]

MODES = ("off", "warn", "strict")
"""Valid strictness levels, least to most severe."""

_ENV_VAR = "REPRO_VALIDATE"


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a runtime invariant.

    ``invariant`` is a stable dotted identifier from the catalog in
    DESIGN.md §8 (e.g. ``"schedule.group-size"``); ``hint`` is the smallest
    description that reproduces the offending run (typically the config/seed
    of the simulation that was executing).
    """

    invariant: str
    message: str
    sim_time: float | None = None
    nodes: tuple[int, ...] = ()
    hint: str = ""

    def __str__(self) -> str:
        at = "" if self.sim_time is None else f" at t={self.sim_time:.6f}"
        who = f" nodes={list(self.nodes)}" if self.nodes else ""
        how = f" [repro: {self.hint}]" if self.hint else ""
        return f"{self.invariant}{at}{who}: {self.message}{how}"


class InvariantError(RuntimeError):
    """Raised in ``strict`` mode; carries the violation that fired."""

    def __init__(self, violation: InvariantViolation):
        super().__init__(str(violation))
        self.violation = violation


class InvariantWarning(UserWarning):
    """Emitted once per violation in ``warn`` mode."""


class InvariantMonitor:
    """Records invariant violations at a configurable strictness.

    A monitor is cheap, stateful, and pluggable: the process-wide
    :data:`MONITOR` serves the wired-in call sites, while tests construct
    private monitors to collect violations without touching global state.
    """

    def __init__(self, mode: str | None = None):
        if mode is None:
            mode = os.environ.get(_ENV_VAR, "warn")
        self.mode = mode
        self.violations: list[InvariantViolation] = []
        # Observers notified of every recorded violation (before a strict
        # raise).  The telemetry layer (repro.obs) subscribes here so
        # violations surface as trace events; listeners must never raise.
        self.listeners: list = []

    @property
    def mode(self) -> str:
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {value!r}")
        self._mode = value

    @property
    def enabled(self) -> bool:
        return self._mode != "off"

    def record(
        self,
        invariant: str,
        message: str,
        sim_time: float | None = None,
        nodes: Iterable[int] = (),
        hint: str = "",
        raise_strict: bool = True,
    ) -> InvariantViolation | None:
        """Register a violation according to the current mode.

        ``raise_strict=False`` lets a call site that already raises its own
        exception (the sim kernel's :class:`SimulationError`) still log the
        event without the monitor pre-empting the native error type.
        """
        if self._mode == "off":
            return None
        violation = InvariantViolation(
            invariant=invariant,
            message=message,
            sim_time=sim_time,
            nodes=tuple(int(n) for n in nodes),
            hint=hint,
        )
        self.violations.append(violation)
        for listener in self.listeners:
            listener(violation)
        if self._mode == "strict" and raise_strict:
            raise InvariantError(violation)
        warnings.warn(str(violation), InvariantWarning, stacklevel=3)
        return violation

    # -- scoping -----------------------------------------------------------------

    def mark(self) -> int:
        """A position in the violation log; pair with :meth:`since`."""
        return len(self.violations)

    def since(self, mark: int) -> list[InvariantViolation]:
        """Violations recorded after :meth:`mark` returned *mark*."""
        return list(self.violations[mark:])

    @contextmanager
    def at_mode(self, mode: str) -> Iterator["InvariantMonitor"]:
        """Temporarily run this monitor at *mode* (nests and restores)."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        previous = self._mode
        self._mode = mode
        try:
            yield self
        finally:
            self._mode = previous

    @contextmanager
    def capture(self) -> Iterator[list[InvariantViolation]]:
        """Yield a list that receives every violation recorded in the block."""
        start = self.mark()
        box: list[InvariantViolation] = []
        try:
            yield box
        finally:
            box.extend(self.since(start))


MONITOR = InvariantMonitor()
"""The process-wide monitor all wired-in call sites consult by default."""


def get_monitor() -> InvariantMonitor:
    return MONITOR


def set_mode(mode: str) -> None:
    """Set the process-wide strictness (``off`` / ``warn`` / ``strict``)."""
    MONITOR.mode = mode


def strict():
    """Scoped strict mode: ``with validate.strict(): ...`` raises on breach."""
    return MONITOR.at_mode("strict")


def warn():
    """Scoped warn mode (the default): record + warn, keep running."""
    return MONITOR.at_mode("warn")


def off():
    """Scoped off mode: disable all wired-in checks inside the block."""
    return MONITOR.at_mode("off")


def _m(monitor: InvariantMonitor | None) -> InvariantMonitor:
    return MONITOR if monitor is None else monitor


# ---------------------------------------------------------------------------
# Check functions — each validates one artifact and records every breach.
# They all early-return in ``off`` mode and return the number of violations
# recorded (0 for a healthy artifact), so call sites can stay one-liners.
# ---------------------------------------------------------------------------


def check_schedule(
    schedule: "PollingSchedule",
    oracle: "CompatibilityOracle",
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """Sec. III-D slot invariants: ≤ M transmissions, node-disjoint,
    radio-compatible — re-checked on the *final* schedule, independently of
    the greedy insertion logic that built it."""
    from .core.transmissions import structurally_ok

    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    m = oracle.max_group_size
    for t, group in enumerate(schedule.slots):
        if not group:
            continue
        if len(group) > m:
            found += 1
            mon.record(
                "schedule.group-size",
                f"slot {t} holds {len(group)} transmissions, probed limit M={m}",
                sim_time=sim_time,
                nodes=sorted({tx.sender for tx in group}),
                hint=hint,
            )
        if not structurally_ok(group):
            found += 1
            mon.record(
                "schedule.node-reuse",
                f"slot {t} uses a node in two transmissions: "
                + ", ".join(str(tx) for tx in group),
                sim_time=sim_time,
                nodes=sorted({tx.sender for tx in group} | {tx.receiver for tx in group}),
                hint=hint,
            )
        if len(group) >= 2 and len(group) <= m:
            if not oracle.compatible([tx.link for tx in group]):
                found += 1
                mon.record(
                    "schedule.incompatible-group",
                    f"slot {t} group fails the compatibility oracle: "
                    + ", ".join(str(tx) for tx in group),
                    sim_time=sim_time,
                    nodes=sorted({tx.sender for tx in group}),
                    hint=hint,
                )
    return found


def check_polling_outcome(
    scheduler: "OnlinePollingScheduler",
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """Per-phase packet conservation (Table 1 termination contract):
    every request generated is either delivered or explicitly written off
    (retry-exhausted / blacklisted), never both and never silently lost."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    all_ids = {req.request_id for req in scheduler.pool.requests}
    delivered = set(scheduler.schedule.delivered)
    failed = set(scheduler.failed)
    both = delivered & failed
    if both:
        found += 1
        mon.record(
            "polling.double-account",
            f"requests {sorted(both)} are both delivered and failed",
            sim_time=sim_time,
            nodes=sorted(
                {r.sensor for r in scheduler.pool.requests if r.request_id in both}
            ),
            hint=hint,
        )
    missing = all_ids - delivered - failed
    if missing:
        found += 1
        mon.record(
            "polling.conservation",
            f"{len(missing)} of {len(all_ids)} requests neither delivered nor "
            f"written off (ids {sorted(missing)[:8]}...): generated != "
            "delivered + lost + blacklisted-pending",
            sim_time=sim_time,
            nodes=sorted(
                {r.sensor for r in scheduler.pool.requests if r.request_id in missing}
            ),
            hint=hint,
        )
    phantom = (delivered | failed) - all_ids
    if phantom:
        found += 1
        mon.record(
            "polling.conservation",
            f"accounted request ids {sorted(phantom)[:8]} were never generated",
            sim_time=sim_time,
            hint=hint,
        )
    for sensor in scheduler.blacklist:
        leftover = [
            r.request_id
            for r in scheduler.pool.requests
            if r.sensor == sensor
            and r.request_id not in delivered
            and r.request_id not in failed
        ]
        if leftover:
            found += 1
            mon.record(
                "polling.conservation",
                f"blacklisted sensor {sensor} left requests {leftover} pending "
                "instead of written off",
                sim_time=sim_time,
                nodes=(sensor,),
                hint=hint,
            )
    return found


def check_flow_solution(
    cluster: "Cluster",
    solution: "FlowSolution",
    monitor: InvariantMonitor | None = None,
    hint: str = "",
) -> int:
    """Sec. III-A routing invariants on a decomposed solution: demand met
    per sensor, every hop a real hearing-graph edge, per-sensor loads within
    the capacities the search certified, and positive planning energy."""
    from .topology.cluster import HEAD

    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    n = cluster.n_sensors
    loads_from_paths = [0] * n
    for sensor in range(n):
        demand = int(cluster.packets[sensor])
        bundles = solution.flow_paths.get(sensor, [])
        routed = sum(units for _, units in bundles)
        if routed != demand:
            found += 1
            mon.record(
                "flow.conservation",
                f"sensor {sensor} generates {demand} packets but the "
                f"decomposition routes {routed}",
                nodes=(sensor,),
                hint=hint,
            )
        for path, units in bundles:
            if units <= 0:
                found += 1
                mon.record(
                    "flow.conservation",
                    f"sensor {sensor} path {path} carries non-positive "
                    f"volume {units}",
                    nodes=(sensor,),
                    hint=hint,
                )
            if path and (path[0] != sensor or path[-1] != HEAD):
                found += 1
                mon.record(
                    "flow.path-invalid",
                    f"sensor {sensor} path {path} must start at the sensor "
                    "and end at the head",
                    nodes=(sensor,),
                    hint=hint,
                )
            for a, b in zip(path, path[1:]):
                ok = bool(cluster.head_hears[a]) if b == HEAD else bool(cluster.hears[b, a])
                if not ok:
                    found += 1
                    mon.record(
                        "flow.path-invalid",
                        f"hop {a}->{'head' if b == HEAD else b} on sensor "
                        f"{sensor}'s path is not a hearing-graph edge",
                        nodes=(a,) if b == HEAD else (a, b),
                        hint=hint,
                    )
            for node in path[:-1]:
                loads_from_paths[node] += units
    for sensor in range(n):
        if int(solution.loads[sensor]) != loads_from_paths[sensor]:
            found += 1
            mon.record(
                "flow.load-mismatch",
                f"sensor {sensor} reports load {int(solution.loads[sensor])} "
                f"but its decomposed paths carry {loads_from_paths[sensor]}",
                nodes=(sensor,),
                hint=hint,
            )
        cap = int(solution.capacities[sensor])
        if loads_from_paths[sensor] > cap:
            found += 1
            mon.record(
                "flow.capacity",
                f"sensor {sensor} load {loads_from_paths[sensor]} exceeds its "
                f"certified capacity {cap} (δ / floor(λ·e))",
                nodes=(sensor,),
                hint=hint,
            )
        if loads_from_paths[sensor] > 0 and float(cluster.energy[sensor]) <= 0:
            found += 1
            mon.record(
                "flow.energy",
                f"sensor {sensor} is routed load {loads_from_paths[sensor]} "
                f"with non-positive residual energy {float(cluster.energy[sensor])}",
                nodes=(sensor,),
                hint=hint,
            )
    return found


def check_network_flow(
    net: "FlowNetwork",
    source: int,
    sink: int,
    monitor: InvariantMonitor | None = None,
    hint: str = "",
) -> int:
    """Raw max-flow sanity on the node-split network: capacity respected on
    every arc, flow conserved at every interior node."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    imbalance = [0] * net.n_nodes
    for eid in range(0, net.edge_count, 2):
        u, v = net.edge_endpoints(eid)
        f = net.edge_flow(eid)
        cap = net.edge_capacity(eid)
        if f < 0 or f > cap:
            found += 1
            mon.record(
                "flow.capacity",
                f"network edge {u}->{v} carries flow {f} outside [0, {cap}]",
                hint=hint,
            )
        imbalance[u] += f
        imbalance[v] -= f
    for node in range(net.n_nodes):
        if node in (source, sink):
            continue
        if imbalance[node] != 0:
            found += 1
            mon.record(
                "flow.conservation",
                f"network node {node} violates conservation by {imbalance[node]} units",
                hint=hint,
            )
    return found


def check_energy_report(
    report: "EnergyReport",
    elapsed: float | None = None,
    monitor: InvariantMonitor | None = None,
    hint: str = "",
) -> int:
    """Energy accounting invariants: consumption and dwell times are finite
    and non-negative (the meter only ever accumulates — battery energy is
    monotone non-increasing), and no sensor's awake+asleep time exceeds the
    wall clock."""
    import numpy as np

    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    fields = {
        "consumed_j": report.consumed_j,
        "active_s": report.active_s,
        "sleep_s": report.sleep_s,
        "tx_s": report.tx_s,
        "rx_s": report.rx_s,
    }
    for name, values in fields.items():
        values = np.asarray(values, dtype=float)
        bad = np.flatnonzero(~np.isfinite(values) | (values < 0))
        if bad.size:
            found += 1
            mon.record(
                "energy.negative",
                f"{name} has negative or non-finite entries for sensors "
                f"{bad.tolist()} (battery drain must be monotone, residuals "
                "non-negative)",
                nodes=bad.tolist(),
                hint=hint,
            )
    if elapsed is not None and elapsed > 0:
        total = np.asarray(report.active_s, dtype=float) + np.asarray(
            report.sleep_s, dtype=float
        )
        tol = 1e-6 * max(1.0, elapsed)
        over = np.flatnonzero(total > elapsed + tol)
        if over.size:
            found += 1
            mon.record(
                "energy.accounting",
                f"sensors {over.tolist()} account more awake+asleep time than "
                f"the {elapsed:.6f}s that elapsed",
                sim_time=elapsed,
                nodes=over.tolist(),
                hint=hint,
            )
    return found


def check_backup_routes(
    cluster: "Cluster",
    routes: "BackupRoutes",
    monitor: InvariantMonitor | None = None,
    hint: str = "",
) -> int:
    """Survivability invariants on precomputed backup paths (DESIGN.md §9):
    every backup is a real relaying path of the hearing graph, visits no
    relay twice, and its interior relays are disjoint both from the sensor's
    primary flow paths and from the sensor's other backups — so the death of
    one interior relay never invalidates the whole bundle."""
    from .topology.cluster import HEAD

    mon = _m(monitor)
    if not mon.enabled:
        return 0
    found = 0
    for sensor, paths in sorted(routes.backups.items()):
        primary = routes.primary_interiors.get(sensor, frozenset())
        claimed: dict[int, int] = {}  # interior relay -> backup index
        for idx, path in enumerate(paths):
            if len(path) < 2 or path[0] != sensor or path[-1] != HEAD:
                found += 1
                mon.record(
                    "backup.path-invalid",
                    f"sensor {sensor} backup {idx} {path} must start at the "
                    "sensor and end at the head",
                    nodes=(sensor,),
                    hint=hint,
                )
                continue
            if len(set(path[:-1])) != len(path) - 1:
                found += 1
                mon.record(
                    "backup.path-invalid",
                    f"sensor {sensor} backup {idx} {path} revisits a relay",
                    nodes=(sensor,),
                    hint=hint,
                )
            for a, b in zip(path, path[1:]):
                ok = (
                    bool(cluster.head_hears[a])
                    if b == HEAD
                    else bool(cluster.hears[b, a])
                )
                if not ok:
                    found += 1
                    mon.record(
                        "backup.path-invalid",
                        f"hop {a}->{'head' if b == HEAD else b} on sensor "
                        f"{sensor}'s backup {idx} is not a hearing-graph edge",
                        nodes=(a,) if b == HEAD else (a, b),
                        hint=hint,
                    )
            for node in path[1:-1]:
                if node in primary:
                    found += 1
                    mon.record(
                        "backup.disjointness",
                        f"sensor {sensor} backup {idx} routes through relay "
                        f"{node}, which lies on a primary path of {sensor}",
                        nodes=(sensor, node),
                        hint=hint,
                    )
                if node in claimed:
                    found += 1
                    mon.record(
                        "backup.disjointness",
                        f"sensor {sensor} backups {claimed[node]} and {idx} "
                        f"share interior relay {node}",
                        nodes=(sensor, node),
                        hint=hint,
                    )
                claimed[node] = idx
    return found


def check_dynamic_membership(
    solution: "FlowSolution",
    excluded: Iterable[int],
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """Dynamic-membership invariant (DESIGN.md §11): no demand is routed to,
    from, or through a node the head knows to be gone — departed (announced
    leave), blacklisted, or not yet joined.  Checked on every routing
    solution the MAC adopts after a repair or a re-form."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    gone = {int(node) for node in excluded}
    if not gone:
        return 0
    found = 0
    for sensor, bundles in sorted(solution.flow_paths.items()):
        if sensor in gone and any(units > 0 for _, units in bundles):
            found += 1
            mon.record(
                "dynamic.excluded-routed",
                f"excluded sensor {sensor} still has "
                f"{sum(u for _, u in bundles)} units of demand planned",
                sim_time=sim_time,
                nodes=(sensor,),
                hint=hint,
            )
        for path, units in bundles:
            if units <= 0:
                continue
            bad = [node for node in path[:-1] if node in gone and node != sensor]
            if bad:
                found += 1
                mon.record(
                    "dynamic.excluded-routed",
                    f"sensor {sensor} path {path} relays through excluded "
                    f"node(s) {bad}",
                    sim_time=sim_time,
                    nodes=(sensor, *bad),
                    hint=hint,
                )
    for node in gone:
        if 0 <= node < len(solution.loads) and int(solution.loads[node]) > 0:
            found += 1
            mon.record(
                "dynamic.excluded-routed",
                f"excluded node {node} carries planned load "
                f"{int(solution.loads[node])}",
                sim_time=sim_time,
                nodes=(node,),
                hint=hint,
            )
    return found


def check_reform_conservation(
    pending_before: int,
    pending_after: int,
    purged: int = 0,
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """Re-form boundary conservation (DESIGN.md §11): queued application
    packets survive a cluster re-form — the sum of pending packets across
    surviving members immediately after the re-form equals the sum just
    before, minus packets explicitly purged (stranded on newly unreachable
    nodes).  A re-form reshapes routing state only; it must never silently
    create or destroy buffered data."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    if pending_after == pending_before - purged:
        return 0
    mon.record(
        "dynamic.reform-conservation",
        f"re-form changed queued application packets from {pending_before} "
        f"to {pending_after} with only {purged} explicitly purged "
        f"(expected {pending_before - purged})",
        sim_time=sim_time,
        hint=hint,
    )
    return 1


def check_handoff_conservation(
    pending_before: int,
    pending_after: int,
    moved: int = 0,
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """Cross-cluster handoff conservation (DESIGN.md §13): queued
    application packets survive a field-level handoff batch — the sum of
    pending packets across every live cluster immediately after the batch
    commits equals the sum just before.  A handoff transplants each moved
    sensor's queue into its new cluster (re-stamped origins, same packets);
    it must never strand, duplicate, or silently drop buffered data, no
    matter how many sensors *moved* or which heads died mid-transfer."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    if pending_after == pending_before:
        return 0
    mon.record(
        "dynamic.handoff-conservation",
        f"handoff batch ({moved} sensors moved) changed queued application "
        f"packets from {pending_before} to {pending_after}; transplants must "
        "conserve buffered data exactly",
        sim_time=sim_time,
        hint=hint,
    )
    return 1


def check_single_membership(
    rosters: dict[int, Iterable[int]],
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """No-dual-membership invariant (DESIGN.md §13): across the live
    cluster heads of one field, every global sensor id belongs to at most
    one roster.  *rosters* maps head id -> the global sensor ids its PHY
    currently claims (``index_map`` without the head entry).  A sensor
    claimed twice would be polled on two schedules and double-counted by
    every per-cluster metric — the failure mode a handoff that forgets to
    shrink the source cluster (or races the failover adoption path)
    produces."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    owner: dict[int, int] = {}
    found = 0
    for head in sorted(rosters):
        for sensor in rosters[head]:
            sensor = int(sensor)
            if sensor in owner and owner[sensor] != head:
                found += 1
                mon.record(
                    "dynamic.no-dual-membership",
                    f"sensor {sensor} is claimed by live heads "
                    f"{owner[sensor]} and {head} simultaneously",
                    sim_time=sim_time,
                    nodes=(sensor,),
                    hint=hint,
                )
            else:
                owner[sensor] = head
    return found


def check_delivered_stream(
    packets: Iterable[tuple[int, int]],
    monitor: InvariantMonitor | None = None,
    sim_time: float | None = None,
    hint: str = "",
) -> int:
    """End-to-end conservation at the head: the delivered application-packet
    stream must be duplicate-free — one (origin, seq) can physically reach
    the head at most once."""
    mon = _m(monitor)
    if not mon.enabled:
        return 0
    seen: set[tuple[int, int]] = set()
    dupes: dict[tuple[int, int], int] = {}
    for key in packets:
        if key in seen:
            dupes[key] = dupes.get(key, 1) + 1
        seen.add(key)
    if not dupes:
        return 0
    mon.record(
        "mac.delivery-duplicate",
        f"{len(dupes)} application packets were delivered more than once: "
        f"{sorted(dupes)[:8]}",
        sim_time=sim_time,
        nodes=sorted({origin for origin, _ in dupes}),
        hint=hint,
    )
    return 1
