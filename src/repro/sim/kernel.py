"""Discrete-event simulation kernel.

This is the substrate that stands in for ns-2 in the paper's evaluation: a
classic event-heap simulator with deterministic tie-breaking.  Everything in
the PHY/MAC stack (``repro.radio``, ``repro.mac``, ``repro.net``) runs on top
of a :class:`Simulator`.

Design notes
------------
* Events at equal timestamps fire in FIFO scheduling order (a monotone
  sequence number breaks ties), so runs are bit-for-bit reproducible.
* Cancellation is O(1): a cancelled :class:`EventHandle` is left in the heap
  and skipped when popped (lazy deletion), which is the standard trick for
  timer-heavy network simulations where most timers are cancelled.
* The kernel knows nothing about radios or packets; it only runs callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

from .. import validate as _validate

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


# Heap entries are plain (time, seq, handle) tuples: the unique monotone seq
# guarantees the handle is never compared, and tuples beat a dataclass with
# generated __lt__ by a wide margin on push/pop-heavy timer workloads.
_HeapEntry = tuple[float, int, "EventHandle"]


class EventHandle:
    """A scheduled callback; supports O(1) cancellation.

    Users obtain handles from :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and may call :meth:`cancel` any time before the
    event fires.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state} {getattr(self.callback, '__name__', self.callback)!r}>"


class Simulator:
    """Event-heap discrete-event simulator.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        # Optional repro.obs.Telemetry: when set (by the simulation entry
        # points), each run() is wrapped in a wall-clock profile span
        # carrying the event count — one branch per run(), nothing per event.
        self.telemetry = None

    # -- inspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of heap entries not yet popped (includes cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the heap is drained."""
        self._drop_dead_entries()
        return self._heap[0][0] if self._heap else None

    def quiet_until(self, t_end: float) -> bool:
        """True when no live event up to and including *t_end* can observe or
        mutate radio/PHY state.

        Callbacks whose underlying function carries a truthy
        ``_radio_neutral`` attribute (e.g. CBR ticks, which only append to
        application queues) are ignored.  The vectorized slot engine uses
        this to decide whether a slot window is *clean* — i.e. whether it may
        replay the slot in closed form instead of through the event loop.
        The scan is linear over the heap; polling workloads keep the heap
        small (one timer per traffic source plus a few fault timers).
        """
        for time, _, handle in self._heap:
            if (
                time <= t_end
                and not handle._cancelled
                and not getattr(handle.callback, "_radio_neutral", False)
            ):
                return False
        return True

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule *callback(*args)* to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule *callback(*args)* at absolute simulation *time*."""
        if time < self._now:
            # Log to the invariant monitor (raise_strict=False: the kernel's
            # own error below is the strict behaviour and tests pin its type).
            _validate.MONITOR.record(
                "kernel.schedule-past",
                f"event scheduled at t={time} before current time t={self._now}",
                sim_time=self._now,
                raise_strict=False,
            )
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        return handle

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: float | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or :meth:`stop`.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the heap drained earlier), mirroring ns-2's
        ``$ns run`` + halt-at semantics so that duration-based statistics
        (energy, active time) integrate over the full window.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        tel = self.telemetry
        kernel_span = None
        if tel is not None and tel.enabled:
            from time import perf_counter

            kernel_span = tel.begin(
                "profile",
                "kernel.run",
                perf_counter(),
                clock="wall",
                until=until,
            )
            events_before = self.events_processed
        try:
            while self._heap and not self._stopped:
                time, _, handle = self._heap[0]
                if handle._cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if time < self._now:  # heap order is the clock's monotonicity
                    _validate.MONITOR.record(
                        "kernel.time-monotone",
                        f"event at t={time} fired after the clock reached "
                        f"t={self._now}",
                        sim_time=self._now,
                    )
                self._now = time
                handle._fired = True
                handle.callback(*handle.args)
                self.events_processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if kernel_span is not None:
                from time import perf_counter

                tel.finish(
                    kernel_span,
                    perf_counter(),
                    events=self.events_processed - events_before,
                    sim_time=self._now,
                )
                tel.metrics.counter("kernel.events").inc(
                    self.events_processed - events_before
                )

    def step(self) -> bool:
        """Run a single event.  Returns ``False`` if no live event remained."""
        self._drop_dead_entries()
        if not self._heap:
            return False
        time, _, handle = heapq.heappop(self._heap)
        if time < self._now:
            _validate.MONITOR.record(
                "kernel.time-monotone",
                f"event at t={time} fired after the clock reached t={self._now}",
                sim_time=self._now,
            )
        self._now = time
        handle._fired = True
        handle.callback(*handle.args)
        self.events_processed += 1
        return True

    # -- internals ----------------------------------------------------------

    def _drop_dead_entries(self) -> None:
        while self._heap and self._heap[0][2]._cancelled:
            heapq.heappop(self._heap)

    def drain(self) -> Iterator[float]:  # pragma: no cover - convenience
        """Yield event timestamps while stepping to exhaustion (debug helper)."""
        while self.step():
            yield self._now
