"""Canonical units and physical constants used throughout the simulator.

All simulation time is in **seconds**, energy in **joules**, power in
**watts**, data rates in **bits per second**, distances in **meters**.
These helpers exist so that experiment configuration reads like the paper
("radio bandwidth is 200 kbps", "each packet has a fixed size of 80 bytes")
rather than as bare magic numbers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6

# ---------------------------------------------------------------------------
# Data
# ---------------------------------------------------------------------------

BIT: int = 1
BYTE: int = 8

KBPS: float = 1_000.0
MBPS: float = 1_000_000.0

# ---------------------------------------------------------------------------
# Power / energy
# ---------------------------------------------------------------------------

WATT: float = 1.0
MILLIWATT: float = 1e-3
MICROWATT: float = 1e-6

JOULE: float = 1.0
MILLIJOULE: float = 1e-3

# Thermal noise floor used by the SINR channel model.  -101 dBm is a common
# figure for a ~200 kHz bandwidth receiver; the exact value only shifts the
# absolute SNR, not comparative results.
DEFAULT_NOISE_FLOOR_W: float = 10 ** ((-101.0 - 30.0) / 10.0)


def bytes_to_bits(n_bytes: int) -> int:
    """Number of bits in *n_bytes* bytes."""
    return n_bytes * BYTE


def transmission_time(n_bytes: int, bitrate_bps: float) -> float:
    """Airtime, in seconds, of an *n_bytes* frame at *bitrate_bps*.

    This is the paper's "time slot is the length of time for one data
    packet transmission" primitive: an 80-byte packet at 200 kbps takes
    3.2 ms.
    """
    if n_bytes < 0:
        raise ValueError(f"frame size must be non-negative, got {n_bytes}")
    if bitrate_bps <= 0:
        raise ValueError(f"bitrate must be positive, got {bitrate_bps}")
    return bytes_to_bits(n_bytes) / bitrate_bps


def dbm_to_watts(dbm: float) -> float:
    """Convert a dBm power figure to watts."""
    return 10 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm."""
    if watts <= 0:
        raise ValueError(f"power must be positive to express in dBm, got {watts}")
    import math

    return 10.0 * math.log10(watts) + 30.0
