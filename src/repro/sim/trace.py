"""Structured event tracing and counters.

A :class:`Tracer` is a cheap pub/sub sink the PHY/MAC layers emit structured
records into.  Experiments attach collectors (throughput counters, energy
meters); tests attach assertion probes.  When nothing subscribes, emitting is
a single dict lookup — cheap enough to leave on.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: what happened, when, to whom."""

    time: float
    kind: str
    node: int | None = None
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Pub/sub trace sink with per-kind counters.

    >>> t = Tracer()
    >>> seen = []
    >>> t.subscribe("rx_ok", lambda rec: seen.append(rec))
    >>> t.emit(1.5, "rx_ok", node=3, size=80)
    >>> t.counts["rx_ok"], seen[0].detail["size"]
    (1, 80)
    """

    def __init__(self, keep_records: bool = False):
        self._subs: dict[str, list[Callable[[TraceRecord], None]]] = defaultdict(list)
        self._all_subs: list[Callable[[TraceRecord], None]] = []
        self.counts: Counter[str] = Counter()
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Call *fn* for every record of *kind* (``"*"`` matches all kinds)."""
        if kind == "*":
            self._all_subs.append(fn)
        else:
            self._subs[kind].append(fn)

    def emit(self, time: float, kind: str, node: int | None = None, **detail: Any) -> None:
        """Record an event; dispatch to subscribers."""
        self.counts[kind] += 1
        if not (self._subs or self._all_subs or self.keep_records):
            return
        rec = TraceRecord(time=time, kind=kind, node=node, detail=detail)
        if self.keep_records:
            self.records.append(rec)
        for fn in self._subs.get(kind, ()):
            fn(rec)
        for fn in self._all_subs:
            fn(rec)

    def records_of(self, kind: str) -> list[TraceRecord]:
        """All retained records of *kind* (requires ``keep_records=True``)."""
        return [r for r in self.records if r.kind == kind]

    def reset(self) -> None:
        """Clear counters and retained records (subscriptions persist)."""
        self.counts.clear()
        self.records.clear()
