"""Structured event tracing and counters.

A :class:`Tracer` is a cheap pub/sub sink the PHY/MAC layers emit structured
records into.  Experiments attach collectors (throughput counters, energy
meters); tests attach assertion probes.  When nothing subscribes, emitting is
a single dict lookup — cheap enough to leave on.

Reuse across runs
-----------------
A tracer carries *per-run* state (``counts``, ``records``) and *per-owner*
state (subscriptions).  Reusing one tracer across trials without clearing
the per-run state silently accumulates one run's counts into the next —
exactly the kind of bug that corrupts a collision sweep.  Either call
:meth:`reset` between runs, or hand the tracer to an entry point that
enters :meth:`run_scope` (as :func:`repro.net.multicluster_sim.
run_multicluster_simulation` does), which resets on entry while keeping
subscribers registered.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: what happened, when, to whom."""

    time: float
    kind: str
    node: int | None = None
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Pub/sub trace sink with per-kind counters.

    >>> t = Tracer()
    >>> seen = []
    >>> t.subscribe("rx_ok", lambda rec: seen.append(rec))
    >>> t.emit(1.5, "rx_ok", node=3, size=80)
    >>> t.counts["rx_ok"], seen[0].detail["size"]
    (1, 80)

    ``max_records`` bounds retention under ``keep_records=True``: once the
    limit is reached the *oldest* records are dropped, so a long soak run
    keeps a sliding window instead of growing without bound (``None``
    retains everything, the historical behaviour).
    """

    def __init__(self, keep_records: bool = False, max_records: int | None = None):
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self._subs: dict[str, list[Callable[[TraceRecord], None]]] = defaultdict(list)
        self._all_subs: list[Callable[[TraceRecord], None]] = []
        self.counts: Counter[str] = Counter()
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: list[TraceRecord] = []

    def subscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Call *fn* for every record of *kind* (``"*"`` matches all kinds)."""
        if kind == "*":
            self._all_subs.append(fn)
        else:
            self._subs[kind].append(fn)

    def unsubscribe(self, kind: str, fn: Callable[[TraceRecord], None]) -> None:
        """Remove one registration of *fn* for *kind* (``"*"`` for match-all).

        Safe to call from inside a subscriber during dispatch: the emit in
        progress iterates a snapshot, so every subscriber registered when
        the event fired still sees it; the removal takes effect from the
        next emit.  Raises ``ValueError`` if *fn* is not subscribed.
        """
        if kind == "*":
            self._all_subs.remove(fn)
            return
        subs = self._subs.get(kind)
        if not subs:
            raise ValueError(f"no subscriber for kind {kind!r}")
        subs.remove(fn)
        if not subs:
            # Drop the empty list so the no-subscriber emit fast path
            # (which tests `self._subs` for truthiness) stays enabled.
            del self._subs[kind]

    def emit(self, time: float, kind: str, node: int | None = None, **detail: Any) -> None:
        """Record an event; dispatch to subscribers."""
        self.counts[kind] += 1
        if not (self._subs or self._all_subs or self.keep_records):
            return
        rec = TraceRecord(time=time, kind=kind, node=node, detail=detail)
        if self.keep_records:
            self.records.append(rec)
            if self.max_records is not None and len(self.records) > self.max_records:
                del self.records[: len(self.records) - self.max_records]
        # Dispatch over snapshots: a subscriber that unsubscribes itself
        # (or subscribes others) mid-dispatch must not skip or double-call
        # a sibling by mutating the list being iterated.
        for fn in tuple(self._subs.get(kind, ())):
            fn(rec)
        for fn in tuple(self._all_subs):
            fn(rec)

    def records_of(self, kind: str) -> list[TraceRecord]:
        """All retained records of *kind* (requires ``keep_records=True``)."""
        return [r for r in self.records if r.kind == kind]

    def reset(self) -> None:
        """Clear counters and retained records (subscriptions persist)."""
        self.counts.clear()
        self.records.clear()

    @contextmanager
    def run_scope(self) -> Iterator["Tracer"]:
        """Scope one run's worth of per-run state.

        Resets counters and retained records on entry, so a tracer reused
        across trials starts every run from zero — subscribers stay
        registered, and the run's counts remain readable after exit.
        """
        self.reset()
        yield self
