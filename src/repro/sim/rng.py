"""Seeded random-number utilities.

Every stochastic component of the reproduction (deployment, traffic jitter,
packet loss, backoff) draws from an explicit, named stream so experiments are
bit-for-bit reproducible and so changing the amount of randomness one
component consumes cannot perturb another (the classic "shared RNG" pitfall
in network simulation).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RngStreams",
    "derive_seed",
    "fault_rng",
    "mobility_rng",
    "FAULT_STREAM",
    "MOBILITY_STREAM",
]

_MIX = 0x9E3779B97F4A7C15  # golden-ratio increment used by splitmix-style mixers

FAULT_STREAM = "faults"
"""Reserved stream name for fault injection and induced link loss.

All randomness consumed by :mod:`repro.faults` (crash jitter, Gilbert–Elliott
chain transitions, ...) must derive from this stream so that *enabling* fault
injection never perturbs the deployment/traffic/backoff draws of an existing
seeded run — the no-fault trajectories stay bit-for-bit identical.
"""

MOBILITY_STREAM = "mobility"
"""Reserved stream name for node-mobility trajectories.

Per-node drift steps derive from ``(seed, "mobility", node)`` so the order
in which nodes are moved cannot leak randomness between them, and enabling
mobility never perturbs the fault stream (or any other stream) of a seeded
run — churn-only and mobility-only plans compose without interference.
"""


def derive_seed(base_seed: int, *names: str | int) -> int:
    """Deterministically derive a child seed from *base_seed* and a name path.

    Uses a stable string hash (not Python's randomized ``hash``) so results
    are identical across processes and interpreter runs.
    """
    state = (base_seed * 2 + 1) & 0xFFFFFFFFFFFFFFFF
    for name in names:
        text = str(name)
        for ch in text.encode("utf-8"):
            state = (state ^ ch) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
        state = (state + _MIX) & 0xFFFFFFFFFFFFFFFF
        # splitmix64 finalizer
        z = state
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        z = (z ^ (z >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        state = z ^ (z >> 31)
    return int(state & 0x7FFFFFFFFFFFFFFF)


class RngStreams:
    """A family of independent named numpy Generators under one base seed.

    >>> streams = RngStreams(42)
    >>> a = streams.get("deployment")
    >>> b = streams.get("traffic")
    >>> a is streams.get("deployment")
    True
    """

    def __init__(self, base_seed: int = 0):
        self.base_seed = int(base_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.base_seed, name))
            self._streams[name] = gen
        return gen

    def faults(self, *names: str | int) -> np.random.Generator:
        """The dedicated fault-injection stream (see :data:`FAULT_STREAM`).

        Extra *names* sub-split it (e.g. per link, per node) so query order
        across components cannot leak randomness between them.
        """
        key = "/".join([FAULT_STREAM, *map(str, names)])
        return self.get(key)

    def fork(self, name: str | int) -> "RngStreams":
        """A child family whose streams are independent of this family's."""
        return RngStreams(derive_seed(self.base_seed, "fork", name))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngStreams(base_seed={self.base_seed}, streams={sorted(self._streams)})"


def fault_rng(base_seed: int, *names: str | int) -> np.random.Generator:
    """A standalone generator on the fault stream of *base_seed*.

    Equivalent to ``RngStreams(base_seed).faults(*names)`` without keeping the
    family around; used by fault models that only ever need their own stream.
    """
    key = "/".join([FAULT_STREAM, *map(str, names)])
    return np.random.default_rng(derive_seed(base_seed, key))


def mobility_rng(base_seed: int, *names: str | int) -> np.random.Generator:
    """A standalone generator on the mobility stream of *base_seed*.

    Mirrors :func:`fault_rng` on :data:`MOBILITY_STREAM`; the injector
    sub-splits it per node (``mobility_rng(seed, node)``) so trajectories
    are independent of each other and of every fault draw.
    """
    key = "/".join([MOBILITY_STREAM, *map(str, names)])
    return np.random.default_rng(derive_seed(base_seed, key))
