"""Discrete-event simulation substrate (the reproduction's ns-2 stand-in).

Public surface:

* :class:`Simulator` — the event-heap kernel.
* :class:`Process`, :func:`spawn`, :class:`Timeout`, :class:`Signal`,
  :class:`AnyOf`, :class:`AllOf`, :class:`Interrupted` — coroutine processes.
* :class:`RngStreams` — named, independent seeded random streams.
* :class:`Tracer` — structured event tracing.
* :mod:`repro.sim.units` — canonical units and airtime helpers.
"""

from .kernel import EventHandle, SimulationError, Simulator
from .process import (
    AllOf,
    AnyOf,
    Interrupted,
    Process,
    ProcessError,
    Signal,
    Timeout,
    spawn,
)
from .rng import RngStreams, derive_seed
from .trace import TraceRecord, Tracer
from .units import transmission_time

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Process",
    "ProcessError",
    "spawn",
    "Timeout",
    "Signal",
    "AnyOf",
    "AllOf",
    "Interrupted",
    "RngStreams",
    "derive_seed",
    "Tracer",
    "TraceRecord",
    "transmission_time",
]
