"""Generator-based processes on top of the event kernel (mini-SimPy).

MAC protocols are naturally written as sequential control flow ("wait for the
poll message, then transmit, then sleep until the next cycle") rather than as
callback spaghetti.  This module provides just enough coroutine machinery to
express that: a :class:`Process` drives a generator that yields *wait
conditions*:

``Timeout(dt)``
    resume after ``dt`` simulated seconds.
``Signal``
    a broadcastable condition; ``yield sig`` resumes when ``sig.fire(value)``
    is called, receiving ``value`` as the result of the ``yield``.
``AnyOf([...])`` / ``AllOf([...])``
    composite waits.
``Process``
    yielding another process waits for its completion and receives its
    return value.

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupted` inside the generator — S-MAC uses this to abort a
carrier-sense wait when the medium goes busy.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from .kernel import SimulationError, Simulator

__all__ = [
    "Timeout",
    "Signal",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupted",
    "ProcessError",
    "spawn",
]


class ProcessError(RuntimeError):
    """Raised when a process yields something the scheduler cannot wait on."""


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries whatever was passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Wait condition: resume after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A broadcast wait condition.

    Any number of processes may wait on the same signal; a single
    :meth:`fire` wakes all of them.  A signal can fire repeatedly; waiters
    registered after a fire wait for the *next* fire (edge-triggered).
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with *value*; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        self.last_value = value
        for wake in waiters:
            wake(value)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def _subscribe(self, wake: Callable[[Any], None]) -> Callable[[], None]:
        self._waiters.append(wake)

        def unsubscribe() -> None:
            try:
                self._waiters.remove(wake)
            except ValueError:
                pass

        return unsubscribe

    def __repr__(self) -> str:  # pragma: no cover
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class AnyOf:
    """Composite wait: resume when the first member condition completes.

    The yield result is ``(index, value)`` of the member that completed.
    """

    def __init__(self, conditions: Iterable[Any]):
        self.conditions = list(conditions)
        if not self.conditions:
            raise ValueError("AnyOf requires at least one condition")


class AllOf:
    """Composite wait: resume when every member condition has completed.

    The yield result is the list of member values in member order.
    """

    def __init__(self, conditions: Iterable[Any]):
        self.conditions = list(conditions)
        if not self.conditions:
            raise ValueError("AllOf requires at least one condition")


ProcessGen = Generator[Any, Any, Any]

# A "resume" continuation takes (value, exception-or-None).
Resume = Callable[[Any, BaseException | None], None]
# Arming a condition returns a cancel thunk that disarms every timer /
# subscription the condition installed.
Cancel = Callable[[], None]


class Process:
    """Drives a generator on a :class:`Simulator`.

    The process starts immediately: its first step runs at the current
    simulation time via a zero-delay event (preserving FIFO fairness among
    processes spawned in the same instant).
    """

    def __init__(self, sim: Simulator, generator: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.alive = True
        self.value: Any = None  # return value once finished
        self.done_signal = Signal(f"{self.name}.done")
        self._cancel_wait: Cancel | None = None
        start = sim.schedule(0.0, self._step, None, None)
        self._cancel_wait = start.cancel

    # -- public control ------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at the current time."""
        if not self.alive:
            return
        self._disarm()
        self._step(None, Interrupted(cause))

    def stop(self) -> None:
        """Terminate the process without raising inside it (hard kill)."""
        if not self.alive:
            return
        self._disarm()
        self.alive = False
        self._gen.close()
        self.done_signal.fire(None)

    # -- generator stepping ---------------------------------------------------

    def _disarm(self) -> None:
        if self._cancel_wait is not None:
            self._cancel_wait()
            self._cancel_wait = None

    def _step(self, value: Any, exc: BaseException | None) -> None:
        if not self.alive:
            return
        self._cancel_wait = None
        try:
            if exc is not None:
                condition = self._gen.throw(exc)
            else:
                condition = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.value = stop.value
            self.done_signal.fire(stop.value)
            return
        except Interrupted:
            # Process chose not to handle its interruption: treat as a stop.
            self.alive = False
            self.done_signal.fire(None)
            return
        self._cancel_wait = self._arm(condition, self._step)

    # -- wait machinery -------------------------------------------------------

    def _arm(self, condition: Any, resume: Resume) -> Cancel:
        """Arm *condition*, calling ``resume(value, exc)`` once on completion.

        Returns a cancel thunk that disarms everything the condition set up.
        """
        if isinstance(condition, Timeout):
            handle = self.sim.schedule(condition.delay, resume, None, None)
            return handle.cancel
        if isinstance(condition, Signal):
            return condition._subscribe(lambda v: resume(v, None))
        if isinstance(condition, Process):
            if not condition.alive:
                handle = self.sim.schedule(0.0, resume, condition.value, None)
                return handle.cancel
            return condition.done_signal._subscribe(lambda v: resume(v, None))
        if isinstance(condition, AnyOf):
            return self._arm_any(condition, resume)
        if isinstance(condition, AllOf):
            return self._arm_all(condition, resume)
        raise ProcessError(
            f"process {self.name!r} yielded unwaitable object {condition!r}"
        )

    def _arm_any(self, cond: AnyOf, resume: Resume) -> Cancel:
        cancels: list[Cancel] = []
        state = {"done": False}

        def cancel_all() -> None:
            state["done"] = True
            for c in cancels:
                c()

        def member(index: int) -> Resume:
            def member_resume(value: Any, exc: BaseException | None) -> None:
                if state["done"]:
                    return
                cancel_all()
                resume((index, value), exc)

            return member_resume

        for i, sub in enumerate(cond.conditions):
            cancels.append(self._arm(sub, member(i)))
        return cancel_all

    def _arm_all(self, cond: AllOf, resume: Resume) -> Cancel:
        cancels: list[Cancel] = []
        n = len(cond.conditions)
        state = {"remaining": n, "done": False}
        results: list[Any] = [None] * n

        def cancel_all() -> None:
            state["done"] = True
            for c in cancels:
                c()

        def member(index: int) -> Resume:
            def member_resume(value: Any, exc: BaseException | None) -> None:
                if state["done"]:
                    return
                if exc is not None:
                    cancel_all()
                    resume(None, exc)
                    return
                results[index] = value
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    state["done"] = True
                    resume(results, None)

            return member_resume

        for i, sub in enumerate(cond.conditions):
            cancels.append(self._arm(sub, member(i)))
        return cancel_all

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} {'alive' if self.alive else 'done'}>"


def spawn(sim: Simulator, generator: ProcessGen, name: str = "") -> Process:
    """Convenience constructor mirroring ``simpy.Environment.process``."""
    return Process(sim, generator, name=name)
