"""repro — Energy-efficient multi-hop polling in two-layered heterogeneous WSNs.

A complete reproduction of Zhang, Ma & Yang, IPDPS 2005: min-max-load relay
routing, the on-line multi-hop polling scheduler, sector partitioning, the
NP-hardness gadget machinery, and a discrete-event PHY/MAC simulation stack
(polling MAC vs. S-MAC + AODV) regenerating the paper's evaluation figures.

Quickstart::

    from repro import Cluster, solve_min_max_load, OnlinePollingScheduler
    from repro.interference import TabulatedOracle

See ``examples/quickstart.py`` for the paper's Fig. 2 walked end to end.
"""

from .topology import HEAD, Cluster, Deployment, build_tsrf, line, uniform_square
from .routing import (
    FlowSolution,
    PathRotator,
    RelayTree,
    RoutingPlan,
    merge_flow_to_tree,
    solve_min_max_load,
)
from .core import (
    BernoulliLoss,
    OnlinePollingScheduler,
    OnlineResult,
    PairingRules,
    PollingSchedule,
    RequestPool,
    SectorPartition,
    optimal_makespan,
    partition_into_sectors,
    plan_ack_collection,
    solve_optimal,
)
from .interference import (
    CompatibilityOracle,
    PhysicalModelOracle,
    ProtocolModelOracle,
    TabulatedOracle,
    probe_groups,
)
from .faults import (
    BatteryDepletion,
    BurstyLinks,
    FaultInjector,
    FaultPlan,
    GilbertElliottLoss,
    NodeCrash,
    TransientStun,
)
from .sim import RngStreams, Simulator

__version__ = "1.0.0"

__all__ = [
    "HEAD",
    "Cluster",
    "Deployment",
    "uniform_square",
    "line",
    "build_tsrf",
    "RoutingPlan",
    "FlowSolution",
    "solve_min_max_load",
    "RelayTree",
    "merge_flow_to_tree",
    "PathRotator",
    "OnlinePollingScheduler",
    "OnlineResult",
    "PollingSchedule",
    "RequestPool",
    "BernoulliLoss",
    "solve_optimal",
    "optimal_makespan",
    "SectorPartition",
    "partition_into_sectors",
    "PairingRules",
    "plan_ack_collection",
    "CompatibilityOracle",
    "TabulatedOracle",
    "ProtocolModelOracle",
    "PhysicalModelOracle",
    "probe_groups",
    "FaultPlan",
    "NodeCrash",
    "TransientStun",
    "BatteryDepletion",
    "BurstyLinks",
    "GilbertElliottLoss",
    "FaultInjector",
    "Simulator",
    "RngStreams",
    "__version__",
]
