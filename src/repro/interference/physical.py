"""Additive-SINR ("physical") interference model.

This is the model the paper adopts for realizing arbitrary interference
patterns (Sec. III-C.1): reception powers ``P_r(s)`` are **arbitrary
per-pair numbers** (no power-law assumption — ref. [1] showed long-range
power can be anything), and a group of transmissions is compatible iff every
receiver's SINR clears a threshold *beta* with the *accumulated* interference
of all other senders:

    P_r(s) / (noise + sum_{s' != s} P_r(s'))  >=  beta

Unlike the protocol model this is a genuine *group* property — Fig. 3's
example (three pairwise-compatible transmissions whose sum breaks one
receiver) is representable and tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..topology.cluster import HEAD, Cluster
from .base import CompatibilityOracle, Link

__all__ = ["PhysicalModelOracle", "power_matrix_from_positions"]


class PhysicalModelOracle(CompatibilityOracle):
    """SINR oracle over an explicit received-power matrix.

    Parameters
    ----------
    power:
        ``(n+1, n+1)`` floats; ``power[r, s]`` is the power receiver *r*
        sees when *s* transmits (watts).  Index ``n`` is the cluster head
        (node id :data:`HEAD`).  Entries may be zero (inaudible).
    beta:
        SINR capture threshold (linear, not dB).
    noise:
        receiver noise floor in watts.
    """

    def __init__(
        self,
        power: np.ndarray,
        beta: float = 10.0,
        noise: float = 1e-13,
        max_group_size: int = 2,
    ):
        super().__init__(max_group_size=max_group_size)
        self.power = np.asarray(power, dtype=np.float64)
        n_plus_1 = self.power.shape[0]
        if self.power.shape != (n_plus_1, n_plus_1):
            raise ValueError(f"power matrix must be square, got {self.power.shape}")
        if (self.power < 0).any():
            raise ValueError("received powers must be non-negative")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if noise <= 0:
            raise ValueError(f"noise must be positive, got {noise}")
        self.n_sensors = n_plus_1 - 1
        self.beta = float(beta)
        self.noise = float(noise)

    def _index(self, node: int) -> int:
        if node == HEAD:
            return self.n_sensors
        if not 0 <= node < self.n_sensors:
            raise ValueError(f"node {node} out of range (n={self.n_sensors})")
        return node

    def _group_compatible(self, links: Sequence[Link]) -> bool:
        senders = np.array([self._index(s) for s, _ in links])
        receivers = np.array([self._index(r) for _, r in links])
        # signal[k]: wanted power at link k's receiver.
        signal = self.power[receivers, senders]
        # interference[k]: power at link k's receiver from all *other* senders.
        all_at_receiver = self.power[np.ix_(receivers, senders)]
        interference = all_at_receiver.sum(axis=1) - signal
        sinr_ok = signal >= self.beta * (self.noise + interference)
        return bool(sinr_ok.all())

    def sinr(self, link: Link, concurrent: Sequence[Link] = ()) -> float:
        """Diagnostic: the SINR link sees given *concurrent* other senders."""
        s = self._index(link[0])
        r = self._index(link[1])
        interference = sum(self.power[r, self._index(cs)] for cs, _ in concurrent)
        return float(self.power[r, s] / (self.noise + interference))


def power_matrix_from_positions(
    cluster: Cluster,
    tx_power_w: float,
    propagation,
) -> np.ndarray:
    """Build the ``(n+1, n+1)`` received-power matrix from geometry.

    *propagation* is any object with ``gain(distance) -> float`` (see
    :mod:`repro.radio.propagation`); all sensors transmit at *tx_power_w*.
    The head row/column uses the head's position.  The diagonal is zero.
    """
    if cluster.positions is None or cluster.head_position is None:
        raise ValueError("need a geometric cluster to derive powers from positions")
    pos = np.vstack([cluster.positions, cluster.head_position[np.newaxis, :]])
    diff = pos[:, np.newaxis, :] - pos[np.newaxis, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    gains = propagation.gain_matrix(dist)
    power = tx_power_w * gains
    np.fill_diagonal(power, 0.0)
    return power
