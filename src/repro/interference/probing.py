"""Probing-based discovery of connectivity and interference (Sec. V-B, V-E).

The head does not assume any propagation law.  Instead it *tests*:

* **Connectivity** (Sec. V-B): let each sensor broadcast in turn, then poll
  every sensor for who it heard — O(n) transmission rounds.  Here that means
  querying the ground-truth channel for every single link in isolation.
* **Interference** (Sec. V-E): poll each group of at most *M* candidate
  transmissions simultaneously and check which receivers decoded — the
  result is an explicit group table the scheduler consults.

Testing *all* groups is exponential; the paper bounds work by (a) keeping M
small (2 or 3) and (b) probing only transmissions that actually appear in
the chosen relaying paths.  :func:`probe_cost` reproduces the Sec. IV count
("1320 groups instead of 85320" for 8 sectors of 10 vs one cluster of 80).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterable, Sequence

import numpy as np

from ..topology.cluster import HEAD
from .base import CompatibilityOracle, Link

__all__ = ["GroupTableOracle", "probe_connectivity", "probe_groups", "probe_cost"]


class GroupTableOracle(CompatibilityOracle):
    """Oracle backed by an explicit table of probed group outcomes.

    Groups never probed are treated as **incompatible** — the conservative
    choice: scheduling an untested combination risks collisions, while
    refusing one only costs time.
    """

    def __init__(self, table: dict[frozenset[Link], bool], max_group_size: int = 2):
        super().__init__(max_group_size=max_group_size)
        self._table = {frozenset(map(tuple, g)): bool(v) for g, v in table.items()}

    def _group_compatible(self, links: Sequence[Link]) -> bool:
        return self._table.get(frozenset(map(tuple, links)), False)

    @property
    def table_size(self) -> int:
        return len(self._table)


def probe_connectivity(
    truth: CompatibilityOracle, n_sensors: int
) -> tuple[np.ndarray, np.ndarray]:
    """Discover the hearing matrix by testing each link in isolation.

    Returns ``(hears, head_hears)`` in the :class:`~repro.topology.Cluster`
    convention: ``hears[i, j]`` — sensor *i* decodes sensor *j*;
    ``head_hears[j]`` — the head decodes sensor *j*.
    """
    hears = np.zeros((n_sensors, n_sensors), dtype=bool)
    head_hears = np.zeros(n_sensors, dtype=bool)
    for j in range(n_sensors):  # j broadcasts in turn
        for i in range(n_sensors):
            if i != j:
                hears[i, j] = truth.compatible([(j, i)])
        head_hears[j] = truth.compatible([(j, HEAD)])
    return hears, head_hears


def probe_groups(
    truth: CompatibilityOracle,
    links: Iterable[Link],
    max_group_size: int = 2,
) -> GroupTableOracle:
    """Probe all groups of 1..M candidate links against the true channel.

    *links* should be the transmissions that appear in the chosen relaying
    paths (probing everything else is wasted airtime).  Groups that repeat a
    node are skipped — they can never be scheduled together anyway.
    """
    links = sorted({tuple(l) for l in links})
    table: dict[frozenset[Link], bool] = {}
    for size in range(1, max_group_size + 1):
        for group in combinations(links, size):
            nodes: list[int] = []
            for s, r in group:
                nodes.append(s)
                nodes.append(r)
            if len(set(nodes)) != len(nodes):
                continue
            table[frozenset(group)] = truth.compatible(list(group))
    return GroupTableOracle(table, max_group_size=max_group_size)


def probe_cost(n_links: int, max_group_size: int) -> int:
    """Number of group probes needed for *n_links* candidate transmissions.

    Counts all groups of size 1..M (upper bound; node-sharing groups are
    skipped in practice).  This is the quantity Sec. IV argues sectoring
    slashes: probing 8 sectors of 10 links each is vastly cheaper than one
    cluster of 80 links.
    """
    if n_links < 0:
        raise ValueError(f"n_links must be non-negative, got {n_links}")
    if max_group_size < 1:
        raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")
    return sum(comb(n_links, k) for k in range(1, max_group_size + 1))
