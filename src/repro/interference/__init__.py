"""Interference/compatibility oracles the polling scheduler queries."""

from .base import (
    CompatibilityOracle,
    Link,
    PairwiseOracle,
    TabulatedOracle,
    group_nodes_distinct,
)
from .physical import PhysicalModelOracle, power_matrix_from_positions
from .probing import GroupTableOracle, probe_connectivity, probe_cost, probe_groups
from .protocol import ProtocolModelOracle

__all__ = [
    "Link",
    "CompatibilityOracle",
    "PairwiseOracle",
    "TabulatedOracle",
    "group_nodes_distinct",
    "ProtocolModelOracle",
    "PhysicalModelOracle",
    "power_matrix_from_positions",
    "GroupTableOracle",
    "probe_connectivity",
    "probe_groups",
    "probe_cost",
]
