"""Compatibility oracles: can a group of transmissions share a time slot?

The paper deliberately refuses to model interference geometrically
(Sec. III-B): coverage areas "may very likely not be a disc", accumulated
interference breaks pairwise reasoning, and signal power at long range "can
be arbitrary".  The scheduler therefore talks to an abstract
:class:`CompatibilityOracle` that answers *group* queries of bounded size
*M* (the head only ever probes combinations of at most M transmissions,
Sec. III-B last paragraph).

A *link* is the pair ``(sender, receiver)`` of node ids
(:data:`repro.topology.HEAD` = -1 denotes the cluster head).

Structural constraints (half-duplex nodes, one transmission per node per
slot) are *not* the oracle's job — :mod:`repro.core.transmissions` enforces
those.  Oracles answer only the radio-interference question.  All oracles
here nevertheless reject groups that repeat a node, as real probing would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import Iterable, Sequence

__all__ = ["Link", "CompatibilityOracle", "PairwiseOracle", "group_nodes_distinct"]

Link = tuple[int, int]


def group_nodes_distinct(links: Sequence[Link]) -> bool:
    """True when no node appears twice across the group's senders/receivers."""
    seen: set[int] = set()
    for sender, receiver in links:
        if sender in seen or receiver in seen or sender == receiver:
            return False
        seen.add(sender)
        seen.add(receiver)
    return True


class CompatibilityOracle(ABC):
    """Answers whether a group of ≤ ``max_group_size`` links can co-occur.

    ``max_group_size`` is the paper's *M*: testing all groups of more than a
    small constant number of transmissions needs exponential time, so the
    head only knows compatibility up to M (typically 2 or 3).
    """

    def __init__(self, max_group_size: int = 2):
        if max_group_size < 1:
            raise ValueError(f"max group size must be >= 1, got {max_group_size}")
        self.max_group_size = max_group_size
        self.query_count = 0
        # Group outcomes are static (nodes don't move mid-run), so queries
        # are memoized — the scheduler asks about the same small link
        # universe millions of times across a sweep.
        self._memo: dict[frozenset[Link], bool] = {}
        # Second-level memo for the online scheduler's fill hot path,
        # two-level: group-links tuple -> {candidate link -> verdict}.  The
        # scheduler fetches a group's inner dict once per scan epoch and
        # answers per-request probes with one small-tuple dict get.  Entries
        # duplicate _memo results per ordering; query_count semantics are
        # unchanged because misses delegate to compatible().
        self._seq_memo: dict[tuple, dict[tuple, bool]] = {}

    def compatible(self, links: Sequence[Link]) -> bool:
        """Can all *links* transmit in the same slot without any failing?"""
        links = [tuple(l) for l in links]
        if len(links) > self.max_group_size:
            raise ValueError(
                f"oracle only knows groups of <= {self.max_group_size} "
                f"transmissions, asked about {len(links)}"
            )
        if not links:
            return True
        key = frozenset(links)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if not group_nodes_distinct(links):
            result = False
        else:
            self.query_count += 1
            result = self._group_compatible(links)
        self._memo[key] = result
        return result

    @abstractmethod
    def _group_compatible(self, links: Sequence[Link]) -> bool:
        """Model-specific group test; nodes are guaranteed distinct."""

    def single_link_ok(self, link: Link) -> bool:
        """Is the link usable at all (decodes when transmitting alone)?"""
        return self.compatible([link])


class PairwiseOracle(CompatibilityOracle):
    """A group is compatible iff **all pairs** are compatible.

    This is exactly the (flawed, per Sec. III-B) pairwise assumption of the
    protocol model, but it is also what the NP-hardness gadgets specify, so
    it is the right semantics for tabulated gadget oracles.  Subclasses
    implement :meth:`_pair_compatible`.
    """

    def _group_compatible(self, links: Sequence[Link]) -> bool:
        if len(links) == 1:
            return self._single_ok(links[0])
        return all(self._single_ok(l) for l in links) and all(
            self._pair_compatible(a, b) for a, b in combinations(links, 2)
        )

    def _single_ok(self, link: Link) -> bool:
        """Whether the link decodes in isolation; default: yes."""
        return True

    @abstractmethod
    def _pair_compatible(self, a: Link, b: Link) -> bool:
        """Can links *a* and *b* (node-disjoint) share a slot?"""


class TabulatedOracle(PairwiseOracle):
    """Pairwise oracle backed by an explicit table of compatible link pairs.

    Used by the NP-hardness gadget constructions, where the interference
    pattern is dictated by an arbitrary graph.  Pairs are unordered; any
    pair absent from the table is incompatible.
    """

    def __init__(
        self,
        compatible_pairs: Iterable[frozenset[Link] | tuple[Link, Link]],
        valid_links: Iterable[Link] | None = None,
        max_group_size: int = 2,
    ):
        super().__init__(max_group_size=max_group_size)
        self._pairs: set[frozenset[Link]] = set()
        for pair in compatible_pairs:
            a, b = tuple(pair)
            self._pairs.add(frozenset((tuple(a), tuple(b))))
        self._valid: set[Link] | None = (
            None if valid_links is None else {tuple(l) for l in valid_links}
        )

    def _single_ok(self, link: Link) -> bool:
        return self._valid is None or tuple(link) in self._valid

    def _pair_compatible(self, a: Link, b: Link) -> bool:
        return frozenset((tuple(a), tuple(b))) in self._pairs


__all__.append("TabulatedOracle")
