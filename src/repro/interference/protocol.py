"""The protocol interference model of Gupta & Kumar (paper ref. [17]).

Sensor ``j`` receives from ``i`` iff ``dist(i, j) <= r``; two transmissions
``i->j`` and ``k->l`` are compatible iff the *other* sender is at least
``(1 + delta) * r`` from each receiver.  The paper uses this model only for
analysis and argues it is unsafe for real scheduling (pairwise-only,
disc-shaped) — we provide it as a baseline oracle so ablations can quantify
that criticism against the additive-SINR physical model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..topology.cluster import HEAD, Cluster
from .base import Link, PairwiseOracle

__all__ = ["ProtocolModelOracle"]


class ProtocolModelOracle(PairwiseOracle):
    """Disc-based pairwise oracle over a geometric cluster.

    Requires the cluster to carry positions.  The head participates with the
    same receive geometry as sensors (its position is known); its large
    transmit power is irrelevant here because the head never transmits
    during a data slot.
    """

    def __init__(self, cluster: Cluster, delta: float = 0.5, max_group_size: int = 2):
        super().__init__(max_group_size=max_group_size)
        if cluster.positions is None or cluster.head_position is None:
            raise ValueError("protocol model needs a geometric cluster (positions)")
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        self.delta = float(delta)
        self.range = float(_infer_range(cluster))
        # Row n is the head's position; node id -1 maps to index n.
        self._pos = np.vstack([cluster.positions, cluster.head_position[np.newaxis, :]])
        self._n = cluster.n_sensors

    def _index(self, node: int) -> int:
        return self._n if node == HEAD else node

    def _dist(self, a: int, b: int) -> float:
        pa = self._pos[self._index(a)]
        pb = self._pos[self._index(b)]
        return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))

    def _single_ok(self, link: Link) -> bool:
        sender, receiver = link
        if sender == HEAD:
            return True  # head broadcasts cover the cluster
        return self._dist(sender, receiver) <= self.range

    def _pair_compatible(self, a: Link, b: Link) -> bool:
        guard = (1.0 + self.delta) * self.range
        (s1, r1), (s2, r2) = a, b
        return self._dist(s2, r1) > guard and self._dist(s1, r2) > guard


def _infer_range(cluster: Cluster) -> float:
    """Smallest disc radius consistent with the cluster's hearing matrix.

    Geometric clusters built from a :class:`Deployment` have
    ``hears[i, j] == (dist <= comm_range)``; we recover ``comm_range`` as the
    largest hearing distance (or, if no sensor pair hears, the largest
    head-hearing distance).
    """
    assert cluster.positions is not None and cluster.head_position is not None
    dists: list[float] = []
    pos = cluster.positions
    n = cluster.n_sensors
    ii, jj = np.nonzero(cluster.hears)
    if ii.size:
        d = np.sqrt(((pos[ii] - pos[jj]) ** 2).sum(axis=1))
        dists.append(float(d.max()))
    lvl1 = np.flatnonzero(cluster.head_hears)
    if lvl1.size:
        d = np.sqrt(((pos[lvl1] - cluster.head_position) ** 2).sum(axis=1))
        dists.append(float(d.max()))
    if not dists:
        raise ValueError("cluster has no links; cannot infer a radio range")
    # Tiny relative headroom: the farthest link sits exactly at the radius
    # and must not lose the comparison to float rounding.
    return max(dists) * (1.0 + 1e-9)
