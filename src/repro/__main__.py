"""Command-line entry point: ``python -m repro <experiment> [options]``.

Dispatches to the figure-regeneration modules so a user can reproduce any
paper artifact without writing code::

    python -m repro fig2
    python -m repro fig7a
    python -m repro all          # everything except the slow DES sweeps
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = {
    "fig2": ("worked multi-hop polling example (2 vs 3 slots)", "repro.experiments.fig2"),
    "fig4": ("TSRFP <-> Hamiltonian Path gadget", "repro.experiments.fig4"),
    "fig6": ("CPAR <- Partition gadget", "repro.experiments.fig6"),
    "fig7a": ("% active time vs cluster size x rate [minutes]", "repro.experiments.fig7a"),
    "fig7b": ("throughput: polling vs S-MAC+AODV [minutes]", "repro.experiments.fig7b"),
    "fig7c": ("lifetime ratio with sectors", "repro.experiments.fig7c"),
    "ablations": ("design-choice ablation suite", "repro.experiments.ablations"),
}

FAST = ("fig2", "fig4", "fig6", "fig7c")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="which artifact to regenerate ('all' runs the fast ones)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"  {name.ljust(width)}  {desc}")
        return 0

    targets = FAST if args.experiment == "all" else (args.experiment,)
    for name in targets:
        module = __import__(EXPERIMENTS[name][1], fromlist=["main"])
        module.main()
    return 0


if __name__ == "__main__":
    sys.exit(main())
