"""Multiple-path rotation (paper Sec. V-D).

The max-flow routing may split a sensor's packets over several paths (e.g.
2 units on path 1, 1 unit on path 2).  Within one duty cycle a sensor uses
a single fixed path (simple control); to still realize the balanced loads
*on average*, sensors alternate among their paths across cycles **in
proportion to the units of flow each path carries** — the paper's example:
two cycles on path 1, then one cycle on path 2.

:class:`PathRotator` produces the per-cycle path choice deterministically
using a smooth weighted round-robin, so after ``k * total_units`` cycles
each path has been used exactly ``k * units`` times (tests assert this
exactness, and that the long-run average load converges to the flow loads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .minmax import FlowSolution
from .paths import RoutingPlan

__all__ = ["PathRotator"]


@dataclass
class _SensorRotation:
    weights: list[int]
    current: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.current:
            self.current = [0.0] * len(self.weights)

    def next_index(self) -> int:
        """Smooth weighted round-robin (the nginx algorithm): exact quotas."""
        total = sum(self.weights)
        for i, w in enumerate(self.weights):
            self.current[i] += w
        best = max(range(len(self.weights)), key=lambda i: (self.current[i], -i))
        self.current[best] -= total
        return best


class PathRotator:
    """Deterministic per-cycle path chooser honoring flow-split proportions."""

    def __init__(self, solution: FlowSolution):
        self.solution = solution
        self._rotations: dict[int, _SensorRotation] = {}
        for sensor, alternatives in solution.flow_paths.items():
            self._rotations[sensor] = _SensorRotation(
                weights=[units for _, units in alternatives]
            )
        self.cycle_count = 0

    def next_cycle(self) -> RoutingPlan:
        """The routing plan for the next duty cycle."""
        choice = {
            sensor: rot.next_index() for sensor, rot in self._rotations.items()
        }
        self.cycle_count += 1
        return self.solution.routing_plan(path_choice=choice)

    def usage_counts(self) -> dict[int, list[int]]:
        """How many cycles each path of each sensor has been chosen so far.

        Derived by replaying the deterministic rotation (cheap), so callers
        can audit proportionality without instrumenting ``next_cycle``.
        """
        counts: dict[int, list[int]] = {}
        for sensor, alternatives in self.solution.flow_paths.items():
            replay = _SensorRotation(weights=[u for _, u in alternatives])
            tally = [0] * len(alternatives)
            for _ in range(self.cycle_count):
                tally[replay.next_index()] += 1
            counts[sensor] = tally
        return counts
