"""Relay routing: min-max-load flow routing, trees, rotation, AODV baseline."""

from .aodv import BROADCAST, AodvAgent, Rerr, Rrep, Rreq, RouteEntry
from .backup import BackupRoutes, compute_backup_routes
from .maxflow import INF, FlowNetwork
from .minmax import FlowSolution, RoutingInfeasible, solve_min_max_load
from .paths import RelayingPath, RoutingPlan, validate_path
from .repair import RepairResult, merge_dropped_demand, prune_dead_nodes, repair_routing
from .rotation import PathRotator
from .tables import (
    OneHopTables,
    SourceRouteHeader,
    build_one_hop_tables,
    route_packet,
    source_route_overhead_bytes,
)
from .tree import RelayTree, merge_flow_to_tree
from .warmcache import SolverCache, SolverCacheStats, topology_fingerprint

__all__ = [
    "FlowNetwork",
    "INF",
    "FlowSolution",
    "solve_min_max_load",
    "RoutingInfeasible",
    "RelayingPath",
    "RoutingPlan",
    "validate_path",
    "PathRotator",
    "BackupRoutes",
    "compute_backup_routes",
    "SolverCache",
    "SolverCacheStats",
    "topology_fingerprint",
    "RepairResult",
    "prune_dead_nodes",
    "repair_routing",
    "merge_dropped_demand",
    "RelayTree",
    "merge_flow_to_tree",
    "OneHopTables",
    "SourceRouteHeader",
    "build_one_hop_tables",
    "route_packet",
    "source_route_overhead_bytes",
    "AodvAgent",
    "RouteEntry",
    "Rreq",
    "Rrep",
    "Rerr",
    "BROADCAST",
]
