"""A compact AODV implementation (RFC 3561 subset) — the baseline's router.

The paper's Fig. 7(b) baseline is "SMAC + AODV": sensors discover routes to
the cluster head on demand, and — crucially for the measured result — those
routes *die* whenever a next hop is asleep or a link breaks, forcing fresh
RREQ floods whose control packets eat the channel.  This module implements
the protocol core independent of any MAC so it can be unit-tested
synchronously and then driven by the S-MAC DES layer.

Supported machinery: RREQ flooding with (origin, rreq-id) duplicate
suppression, destination sequence numbers, RREP unicast back along reverse
routes, route lifetimes, RERR on forwarding failure, and retry with
expanding rings abstracted to a simple retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Rreq", "Rrep", "Rerr", "RouteEntry", "AodvAgent", "BROADCAST"]

BROADCAST: int = -999
"""Link-layer broadcast address used by AODV control floods."""


@dataclass(frozen=True)
class Rreq:
    origin: int
    origin_seq: int
    rreq_id: int
    dest: int
    dest_seq_known: int
    hop_count: int = 0


@dataclass(frozen=True)
class Rrep:
    origin: int  # who asked
    dest: int  # who answers (route target)
    dest_seq: int
    hop_count: int
    lifetime: float


@dataclass(frozen=True)
class Rerr:
    dest: int
    dest_seq: int


@dataclass
class RouteEntry:
    next_hop: int
    hop_count: int
    dest_seq: int
    expires_at: float
    valid: bool = True


@dataclass
class AodvAgent:
    """Per-node AODV state machine.

    The surrounding MAC calls :meth:`route_to` before sending data,
    :meth:`make_rreq` to start discovery, and :meth:`on_receive` for every
    received control message; the agent returns messages to transmit as
    ``(message, link_destination)`` pairs (``BROADCAST`` or a neighbor id).
    """

    node_id: int
    route_lifetime: float = 10.0
    seq: int = 0
    rreq_id: int = 0
    routes: dict[int, RouteEntry] = field(default_factory=dict)
    _seen_rreqs: set[tuple[int, int]] = field(default_factory=set)
    # statistics the experiment harness reads
    control_tx: int = 0

    # -- data-plane queries ----------------------------------------------------

    def route_to(self, dest: int, now: float) -> int | None:
        """Valid next hop toward *dest*, or None (triggering discovery)."""
        entry = self.routes.get(dest)
        if entry is None or not entry.valid or entry.expires_at <= now:
            return None
        return entry.next_hop

    def invalidate(self, dest: int) -> list[tuple[Rerr, int]]:
        """Mark the route to *dest* broken (link failure); emit RERR."""
        entry = self.routes.get(dest)
        if entry is None or not entry.valid:
            return []
        entry.valid = False
        self.control_tx += 1
        return [(Rerr(dest=dest, dest_seq=entry.dest_seq + 1), BROADCAST)]

    # -- control-plane ----------------------------------------------------------

    def make_rreq(self, dest: int) -> tuple[Rreq, int]:
        """Originate a new route request flood for *dest*."""
        self.seq += 1
        self.rreq_id += 1
        req = Rreq(
            origin=self.node_id,
            origin_seq=self.seq,
            rreq_id=self.rreq_id,
            dest=dest,
            dest_seq_known=self.routes[dest].dest_seq if dest in self.routes else 0,
        )
        self._seen_rreqs.add((self.node_id, self.rreq_id))
        self.control_tx += 1
        return req, BROADCAST

    def on_receive(
        self, msg, from_node: int, now: float, is_dest: bool = False
    ) -> list[tuple[object, int]]:
        """Process a received control message; return messages to send.

        *is_dest* tells the agent it is the target of a RREQ (the cluster
        head sets this; sensors never answer for the head).
        """
        if isinstance(msg, Rreq):
            return self._on_rreq(msg, from_node, now, is_dest)
        if isinstance(msg, Rrep):
            return self._on_rrep(msg, from_node, now)
        if isinstance(msg, Rerr):
            return self._on_rerr(msg, from_node)
        raise TypeError(f"unknown AODV message {msg!r}")

    def _learn(self, dest: int, next_hop: int, hops: int, seq: int, now: float) -> None:
        cur = self.routes.get(dest)
        fresher = cur is None or seq > cur.dest_seq or (
            seq == cur.dest_seq and (hops < cur.hop_count or not cur.valid)
        )
        if fresher:
            self.routes[dest] = RouteEntry(
                next_hop=next_hop,
                hop_count=hops,
                dest_seq=seq,
                expires_at=now + self.route_lifetime,
            )

    def _on_rreq(
        self, msg: Rreq, from_node: int, now: float, is_dest: bool
    ) -> list[tuple[object, int]]:
        key = (msg.origin, msg.rreq_id)
        if key in self._seen_rreqs:
            return []
        self._seen_rreqs.add(key)
        # Reverse route toward the origin.
        self._learn(msg.origin, from_node, msg.hop_count + 1, msg.origin_seq, now)
        if is_dest or self.node_id == msg.dest:
            self.seq = max(self.seq, msg.dest_seq_known) + 1
            rep = Rrep(
                origin=msg.origin,
                dest=self.node_id,
                dest_seq=self.seq,
                hop_count=0,
                lifetime=self.route_lifetime,
            )
            self.control_tx += 1
            return [(rep, from_node)]
        entry = self.routes.get(msg.dest)
        if entry is not None and entry.valid and entry.dest_seq >= msg.dest_seq_known \
                and entry.expires_at > now:
            # Intermediate node answers from cache.
            rep = Rrep(
                origin=msg.origin,
                dest=msg.dest,
                dest_seq=entry.dest_seq,
                hop_count=entry.hop_count,
                lifetime=max(0.0, entry.expires_at - now),
            )
            self.control_tx += 1
            return [(rep, from_node)]
        # Re-flood.
        fwd = Rreq(
            origin=msg.origin,
            origin_seq=msg.origin_seq,
            rreq_id=msg.rreq_id,
            dest=msg.dest,
            dest_seq_known=msg.dest_seq_known,
            hop_count=msg.hop_count + 1,
        )
        self.control_tx += 1
        return [(fwd, BROADCAST)]

    def _on_rrep(self, msg: Rrep, from_node: int, now: float) -> list[tuple[object, int]]:
        # Forward route toward the answering destination.
        self._learn(msg.dest, from_node, msg.hop_count + 1, msg.dest_seq, now)
        if msg.origin == self.node_id:
            return []  # we asked; route installed, nothing to forward
        back = self.routes.get(msg.origin)
        if back is None or not back.valid or back.expires_at <= now:
            return []  # reverse route gone; RREP dies here
        fwd = Rrep(
            origin=msg.origin,
            dest=msg.dest,
            dest_seq=msg.dest_seq,
            hop_count=msg.hop_count + 1,
            lifetime=msg.lifetime,
        )
        self.control_tx += 1
        return [(fwd, back.next_hop)]

    def _on_rerr(self, msg: Rerr, from_node: int) -> list[tuple[object, int]]:
        entry = self.routes.get(msg.dest)
        if entry is not None and entry.valid and entry.next_hop == from_node:
            entry.valid = False
            entry.dest_seq = max(entry.dest_seq, msg.dest_seq)
            self.control_tx += 1
            return [(Rerr(dest=msg.dest, dest_seq=msg.dest_seq), BROADCAST)]
        return []

    # -- maintenance -------------------------------------------------------------

    def purge(self, now: float) -> None:
        """Drop expired routes (called opportunistically by the MAC)."""
        for dest in list(self.routes):
            if self.routes[dest].expires_at <= now:
                del self.routes[dest]

    def forget_rreqs(self, keep_last: int = 256) -> None:
        """Bound the duplicate-suppression cache (long simulations)."""
        if len(self._seen_rreqs) > keep_last:
            self._seen_rreqs = set(list(self._seen_rreqs)[-keep_last:])
