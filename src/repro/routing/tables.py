"""Source routing and one-hop routing tables (paper Sec. V-C).

After the optimal relaying paths are computed, traffic must actually follow
them.  Two equivalent mechanisms from the paper:

* **Source routing** — each sensor prepends its full relaying path to the
  packet header; relays pop themselves and forward to the next listed hop.
  Costs header bytes on every data packet.
* **One-hop tables** — each sensor stores, *per dependent*, the single next
  hop for that dependent's packets.  No header overhead; storage is one
  entry per dependent.

Both are derived from a :class:`~repro.routing.paths.RoutingPlan`;
:func:`route_packet` verifies they deliver identical hop sequences (tested
as an invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.cluster import HEAD
from .paths import RelayingPath, RoutingPlan

__all__ = [
    "SourceRouteHeader",
    "OneHopTables",
    "build_one_hop_tables",
    "route_packet",
    "source_route_overhead_bytes",
]


@dataclass
class SourceRouteHeader:
    """The in-packet route: remaining hops after the current holder."""

    origin: int
    remaining: tuple[int, ...]

    @classmethod
    def for_path(cls, path: RelayingPath) -> "SourceRouteHeader":
        return cls(origin=path[0], remaining=tuple(path[1:]))

    def next_hop(self) -> int:
        if not self.remaining:
            raise ValueError("route already consumed (packet is at the head)")
        return self.remaining[0]

    def advance(self) -> "SourceRouteHeader":
        return SourceRouteHeader(origin=self.origin, remaining=self.remaining[1:])


@dataclass
class OneHopTables:
    """Per-sensor forwarding tables keyed by packet origin.

    ``tables[relay][origin]`` is where *relay* forwards packets that
    originated at *origin* (the relay's own packets are keyed by itself).
    """

    tables: dict[int, dict[int, int]] = field(default_factory=dict)

    def next_hop(self, holder: int, origin: int) -> int:
        try:
            return self.tables[holder][origin]
        except KeyError:
            raise KeyError(
                f"sensor {holder} has no forwarding entry for origin {origin}"
            ) from None

    def entries_at(self, sensor: int) -> int:
        """Table size at *sensor* — the paper's storage argument: one entry
        per dependent (plus one for its own packets)."""
        return len(self.tables.get(sensor, {}))


def build_one_hop_tables(plan: RoutingPlan) -> OneHopTables:
    """Compile a routing plan into per-sensor one-hop tables."""
    tables: dict[int, dict[int, int]] = {}
    for origin, path in plan.paths.items():
        for holder, nxt in zip(path, path[1:]):
            slot = tables.setdefault(holder, {})
            existing = slot.get(origin)
            if existing is not None and existing != nxt:
                raise ValueError(
                    f"conflicting next hops for origin {origin} at {holder}: "
                    f"{existing} vs {nxt}"
                )
            slot[origin] = nxt
    return OneHopTables(tables=tables)


def route_packet(
    origin: int,
    plan: RoutingPlan,
    tables: OneHopTables | None = None,
) -> list[int]:
    """Trace a packet from *origin* to the head using one-hop tables.

    When *tables* is omitted they are built from the plan.  Returns the node
    sequence including origin and HEAD; raises if the tables loop or dead-end
    (cannot happen for tables compiled from a valid plan — tested).
    """
    if tables is None:
        tables = build_one_hop_tables(plan)
    trace = [origin]
    holder = origin
    visited = {origin}
    while holder != HEAD:
        nxt = tables.next_hop(holder, origin)
        if nxt in visited:
            raise RuntimeError(f"forwarding loop at {nxt} for origin {origin}")
        trace.append(nxt)
        visited.add(nxt)
        holder = nxt
    return trace


def source_route_overhead_bytes(plan: RoutingPlan, bytes_per_hop: int = 1) -> dict[int, int]:
    """Header bytes source routing would add per packet of each sensor.

    This quantifies the paper's "source routing will also add length to the
    data packets and waste energy" remark; compare against
    :meth:`OneHopTables.entries_at` storage.
    """
    return {
        sensor: (len(path) - 1) * bytes_per_hop
        for sensor, path in plan.paths.items()
    }
