"""Cross-trial solver warm-start cache (DESIGN.md §12).

A parameter sweep re-runs the polling simulation over a grid of traffic
rates, fault regimes or MAC knobs, and most grid points share the *same*
topology: the deployment is seeded, so the hearing graph, per-sensor
demands and head adjacency are byte-identical across trials.  The min-max
routing solve (node-split Dinic over the paper's flow network) and the
k-disjoint backup-route computation are pure functions of that topology —
re-running them per trial is pure waste.

:class:`SolverCache` memoizes both behind a topology fingerprint: a SHA-256
over the exact bytes of ``hears`` / ``head_hears`` / ``packets`` /
``energy`` plus the solver parameters.  Because the solvers are
deterministic (no RNG anywhere in the flow engines), a cache hit returns a
solution that is **bit-for-bit identical** to what a fresh solve would
produce — enabling the cache can never change simulation results, only
skip redundant work.  Mid-run re-solves (route repair, re-clustering)
fingerprint their pruned cluster the same way, so trials replaying the
same fault plan share those solves too.

Sharing is safe because both artefacts are treated as immutable
everywhere: :class:`~repro.routing.minmax.FlowSolution` is only read after
construction (``PathRotator`` and the schedulers never write into it), and
planning clusters are built fresh per MAC via ``with_packets`` copies.

The cache is opt-in (``PollingSimConfig.solver_cache``) and unbounded —
a sweep touches a handful of distinct topologies, each a few kilobytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..topology.cluster import Cluster
from .backup import BackupRoutes, compute_backup_routes
from .minmax import FlowSolution, solve_min_max_load

__all__ = ["SolverCache", "SolverCacheStats", "topology_fingerprint"]


def topology_fingerprint(cluster: Cluster) -> bytes:
    """SHA-256 digest of everything the routing solvers read.

    Covers the hearing graph, head adjacency, per-sensor demands and
    residual-energy levels (the energy-aware solver weighs those), plus
    the array shapes so transposed/resized inputs can never alias.
    """
    h = hashlib.sha256()
    for arr in (cluster.hears, cluster.head_hears, cluster.packets, cluster.energy):
        a = np.ascontiguousarray(arr)
        h.update(str(a.shape).encode())
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.digest()


@dataclass
class SolverCacheStats:
    """Hit/miss counters, split by artefact kind."""

    routing_hits: int = 0
    routing_misses: int = 0
    backup_hits: int = 0
    backup_misses: int = 0
    oracle_hits: int = 0
    oracle_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "routing_hits": self.routing_hits,
            "routing_misses": self.routing_misses,
            "backup_hits": self.backup_hits,
            "backup_misses": self.backup_misses,
            "oracle_hits": self.oracle_hits,
            "oracle_misses": self.oracle_misses,
        }


@dataclass
class SolverCache:
    """Memoized routing + backup solves keyed by topology fingerprint."""

    stats: SolverCacheStats = field(default_factory=SolverCacheStats)
    _routing: dict[tuple, FlowSolution] = field(default_factory=dict)
    _backups: dict[tuple, BackupRoutes] = field(default_factory=dict)
    _oracle_memos: dict[tuple, tuple[dict, dict]] = field(default_factory=dict)

    def routing_for(
        self,
        cluster: Cluster,
        energy_aware: bool = False,
        search: str = "binary",
        engine: str = "warm",
        method: str | None = None,
    ) -> FlowSolution:
        """The min-max flow solution for *cluster* (solved once per topology)."""
        key = (topology_fingerprint(cluster), energy_aware, search, engine, method)
        sol = self._routing.get(key)
        if sol is None:
            self.stats.routing_misses += 1
            sol = solve_min_max_load(
                cluster, energy_aware=energy_aware, search=search,
                engine=engine, method=method,
            )
            self._routing[key] = sol
        else:
            self.stats.routing_hits += 1
        return sol

    def backups_for(self, solution: FlowSolution, k: int) -> BackupRoutes:
        """The k-disjoint backup bundle for *solution* (solved once per
        topology/solution/k triple).

        The key covers the solution's flow paths as well as its topology:
        two solutions over one topology (plain vs energy-aware) have
        different primaries, hence different disjointness constraints.
        """
        paths = hashlib.sha256(
            repr(
                sorted(
                    (s, tuple((tuple(p), u) for p, u in alts))
                    for s, alts in solution.flow_paths.items()
                )
            ).encode()
        ).digest()
        key = (topology_fingerprint(solution.cluster), paths, k)
        bk = self._backups.get(key)
        if bk is None:
            self.stats.backup_misses += 1
            bk = compute_backup_routes(solution, k)
            self._backups[key] = bk
        else:
            self.stats.backup_hits += 1
        return bk

    def adopt_oracle(self, oracle) -> None:
        """Share SINR verdict memos across oracles with identical physics.

        A :class:`~repro.interference.physical.PhysicalModelOracle` verdict
        is a pure function of the received-power snapshot, the SINR
        threshold, the noise floor and the group-size cap — so oracles
        built from byte-identical PHY state may share one memo.  The dicts
        are shared *by reference* (not copied): later trials both benefit
        from and extend the same memo.  ``query_count`` stays per-oracle;
        it only counts genuine model evaluations, which is exactly what a
        warm memo avoids.
        """
        power = getattr(oracle, "power", None)
        if power is None:
            return  # tabulated/gadget oracles: memo cost is trivial
        key = (
            hashlib.sha256(np.ascontiguousarray(power).tobytes()).digest(),
            oracle.beta,
            oracle.noise,
            oracle.max_group_size,
        )
        memos = self._oracle_memos.get(key)
        if memos is None:
            self.stats.oracle_misses += 1
            self._oracle_memos[key] = (oracle._memo, oracle._seq_memo)
        else:
            self.stats.oracle_hits += 1
            oracle._memo, oracle._seq_memo = memos
