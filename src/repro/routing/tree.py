"""Flow merging: turn the min-max routing DAG into a relay tree (Sec. IV-B).

The union of optimal relaying paths "is almost surely not a tree": some
sensors split their flow over several next hops.  The sector partitioner
needs a tree, so each *flow-splitting* sensor is forced to "choose a
parent": the next hop minimizing the maximum sensor load along the path
from that parent to the cluster head.  Merging starts at splitting sensors
closest to the head so that the path from any candidate parent onward is
already merged (or deterministically resolvable).

The result is a :class:`RelayTree`: a parent pointer per participating
sensor, from which first-level branches (a first-level sensor plus all its
dependents) fall out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..topology.cluster import HEAD, Cluster
from .minmax import FlowSolution
from .paths import RelayingPath, RoutingPlan

__all__ = ["RelayTree", "merge_flow_to_tree"]


@dataclass
class RelayTree:
    """A relaying tree rooted at the head.

    ``parent[s]`` is the node sensor *s* forwards to (a sensor or ``HEAD``).
    Sensors with neither packets nor relaying duty are absent.
    """

    cluster: Cluster
    parent: dict[int, int]

    def __post_init__(self) -> None:
        # Validate: acyclic, ends at HEAD, hops audible.
        for s in self.parent:
            seen = {s}
            node = s
            while node != HEAD:
                nxt = self.parent.get(node)
                if nxt is None:
                    raise ValueError(f"sensor {node} has no parent but is not the head")
                if not self.cluster.can_hear(nxt, node):
                    raise ValueError(f"tree hop {node} -> {nxt} is not audible")
                if nxt in seen:
                    raise ValueError(f"parent pointers contain a cycle through {nxt}")
                seen.add(nxt)
                node = nxt

    @property
    def members(self) -> list[int]:
        return sorted(self.parent)

    def path_from(self, sensor: int) -> RelayingPath:
        """The tree path ``(sensor, ..., HEAD)``."""
        if sensor not in self.parent:
            raise KeyError(f"sensor {sensor} is not in the relay tree")
        path = [sensor]
        node = sensor
        while node != HEAD:
            node = self.parent[node]
            path.append(node)
        return tuple(path)

    def children(self, node: int) -> list[int]:
        return sorted(s for s, p in self.parent.items() if p == node)

    def first_level_roots(self) -> list[int]:
        """Sensors parented directly to the head (branch roots)."""
        return self.children(HEAD)

    def subtree(self, root: int) -> list[int]:
        """All sensors in *root*'s subtree, root included (BFS order)."""
        out = [root]
        frontier = [root]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                kids = self.children(node)
                out.extend(kids)
                nxt.extend(kids)
            frontier = nxt
        return out

    def branches(self) -> dict[int, list[int]]:
        """First-level branches: ``{root: [root, *dependents]}`` (Sec. IV-B)."""
        return {r: self.subtree(r) for r in self.first_level_roots()}

    def routing_plan(self) -> RoutingPlan:
        """Paths along the tree for every member sensor with packets."""
        paths = {
            s: self.path_from(s)
            for s in self.parent
            if self.cluster.packets[s] > 0
        }
        return RoutingPlan(cluster=self.cluster, paths=paths)

    def loads(self) -> np.ndarray:
        """Per-sensor transmit load along the tree (own + relayed packets)."""
        n = self.cluster.n_sensors
        load = np.zeros(n, dtype=np.int64)
        for s in self.parent:
            pk = int(self.cluster.packets[s])
            if pk == 0:
                continue
            node = s
            while node != HEAD:
                load[node] += pk
                node = self.parent[node]
        return load


def merge_flow_to_tree(solution: FlowSolution) -> RelayTree:
    """Merge a flow solution's splitting sensors until the DAG is a tree.

    Follows Sec. IV-B: repeatedly take the flow-splitting sensor closest to
    the head; among its next hops choose the parent whose onward path to the
    head has the smallest maximum sensor load; redirect all of the sensor's
    outflow through that parent.
    """
    cluster = solution.cluster
    flows: dict[int, dict[int, int]] = {
        s: dict(nxt) for s, nxt in solution.next_hop_flows().items()
    }
    hop_counts = cluster.min_hop_counts()

    def loads_now() -> dict[int, int]:
        return {s: sum(nxt.values()) for s, nxt in flows.items()}

    def pick_hop(nxt: dict[int, int]) -> int:
        """Deterministic next hop: max volume, ties prefer HEAD then low id."""
        best = max(nxt.values())
        cands = [q for q, v in nxt.items() if v == best]
        return HEAD if HEAD in cands else min(cands)

    def chain_from(node: int) -> list[int]:
        """Deterministic onward path following max-volume next hops."""
        chain: list[int] = []
        seen: set[int] = set()
        while node != HEAD:
            if node in seen:
                raise RuntimeError(f"flow graph contains a cycle through {node}")
            seen.add(node)
            chain.append(node)
            nxt = flows.get(node)
            if not nxt:
                raise RuntimeError(f"sensor {node} has inflow but no outflow")
            node = pick_hop(nxt)
        return chain

    def reduce_down(node: int, amount: int) -> None:
        """Remove *amount* units of outflow from *node*'s chain (conserving flow)."""
        guard = 0
        while node != HEAD and amount > 0:
            guard += 1
            if guard > 2 * cluster.n_sensors + 2:
                raise RuntimeError("flow reduction walk exceeded node count (cycle?)")
            nxt = flows.get(node)
            if not nxt:
                raise RuntimeError(
                    f"flow conservation violated: {node} owes {amount} units "
                    "but has no outflow"
                )
            # Drain from the largest-volume hop first.
            hop = pick_hop(nxt)
            d = min(nxt[hop], amount)
            nxt[hop] -= d
            if nxt[hop] == 0:
                del nxt[hop]
            if not nxt:
                del flows[node]
            if hop == HEAD:
                # Drained units terminated at the head; any remainder came
                # from other hops of the same node — keep draining it.
                amount -= d
                continue
            # The drained units continued from `hop`; follow them down.
            if amount > d:
                # The rest of this node's debt drains via its other hops.
                reduce_down(node, amount - d)
            node = hop
            amount = d

    def add_down(node: int, amount: int) -> None:
        """Push *amount* extra units along *node*'s chain to the head."""
        guard = 0
        while node != HEAD:
            guard += 1
            if guard > 2 * cluster.n_sensors + 2:
                raise RuntimeError("flow addition walk exceeded node count (cycle?)")
            nxt = flows.get(node)
            if not nxt:
                raise RuntimeError(f"cannot extend flow: {node} has no onward hop")
            hop = pick_hop(nxt)
            nxt[hop] += amount
            node = hop

    # -- merge loop ------------------------------------------------------------
    while True:
        splitting = [s for s, nxt in flows.items() if len(nxt) > 1]
        if not splitting:
            break
        s = min(splitting, key=lambda x: (hop_counts[x], x))
        out = flows[s]
        candidates = sorted(out)
        # Score each candidate parent by the max load along its onward chain.
        loads = loads_now()

        def parent_score(p: int) -> tuple:
            if p == HEAD:
                return (0, -1)
            chain = chain_from(p)
            return (max(loads[c] for c in chain), p)

        parent = min(candidates, key=parent_score)
        # Redirect: remove every non-parent share, push it through `parent`.
        moved = 0
        for q in list(out):
            if q == parent:
                continue
            units = out.pop(q)
            moved += units
            if q != HEAD:
                reduce_down(q, units)
        out[parent] = out.get(parent, 0) + moved
        if parent != HEAD:
            add_down(parent, moved)

    parent_map = {s: next(iter(nxt)) for s, nxt in flows.items() if nxt}
    return RelayTree(cluster=cluster, parent=parent_map)
