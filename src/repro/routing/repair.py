"""Incremental route repair around failed nodes.

The paper computes min-max-load routing "once every long time period"
(Sec. III-A); a production head must additionally *re*-compute it when
sensors die.  Repair is deliberately performed at duty-cycle boundaries —
within a cycle the schedule is already committed, and the online algorithm's
re-polling plus retry budgets absorb the damage until the boundary.

The repair contract is **graceful degradation, never abort**: dead nodes are
cut out of the hearing graph, sensors left without any multi-hop path to the
head are reported as uncovered (their packets are planned at zero) instead of
raising :class:`~repro.routing.minmax.RoutingInfeasible`, and everything
still reachable gets a fresh min-max-load flow over the surviving topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Iterable

from ..obs import profile_span as _profile_span
from ..topology.cluster import Cluster
from .minmax import FlowSolution, solve_min_max_load

__all__ = [
    "RepairResult",
    "prune_dead_nodes",
    "repair_routing",
    "merge_dropped_demand",
]


def prune_dead_nodes(cluster: Cluster, dead: set[int]) -> Cluster:
    """A copy of *cluster* with *dead* sensors cut out of the hearing graph.

    Dead sensors keep their index (all node ids stay stable) but hear
    nothing, are heard by nothing — including the head — and carry zero
    packets, so no routing or covering computation can ever use them.
    """
    if not dead:
        return cluster
    n = cluster.n_sensors
    for node in dead:
        if not 0 <= node < n:
            raise ValueError(f"dead node {node} out of range for n={n}")
    idx = sorted(dead)
    hears = cluster.hears.copy()
    hears[idx, :] = False
    hears[:, idx] = False
    head_hears = cluster.head_hears.copy()
    head_hears[idx] = False
    packets = cluster.packets.copy()
    packets[idx] = 0
    return Cluster(
        hears=hears,
        head_hears=head_hears,
        packets=packets,
        energy=cluster.energy.copy(),
        positions=None if cluster.positions is None else cluster.positions.copy(),
        head_position=None
        if cluster.head_position is None
        else cluster.head_position.copy(),
    )


@dataclass
class RepairResult:
    """Outcome of one route repair."""

    cluster: Cluster  # the pruned topology routing now runs on
    solution: FlowSolution  # fresh min-max flow over the survivors
    dead: frozenset[int]  # nodes excluded as failed
    uncovered: frozenset[int]  # live sensors left with no path to the head
    dropped_demand: dict[int, int]  # uncovered sensor -> packets zeroed for it
    """Exactly which packets the partial-coverage fallback planned away,
    per uncovered sensor.  Every uncovered sensor appears (possibly at 0),
    so degradation metrics and the packet-conservation invariant reconcile
    packet-for-packet: demand in == demand routed + sum(dropped_demand)."""

    @property
    def dropped_packets(self) -> int:
        """Total demand the repair could not serve."""
        return sum(self.dropped_demand.values())

    @property
    def coverage(self) -> float:
        """Fraction of all sensors still served after the repair."""
        n = self.cluster.n_sensors
        if n == 0:
            return 1.0
        return 1.0 - (len(self.dead) + len(self.uncovered)) / n


def merge_dropped_demand(results: Iterable[RepairResult]) -> dict[int, int]:
    """Reconcile dropped demand across consecutive repairs of one run.

    Pruning only ever grows, so a sensor uncovered by repair N stays
    uncovered in repair N+1 and reappears in its ``dropped_demand`` —
    naively summing the dicts counts the same never-served packets once per
    repair.  Each sensor's demand is dropped exactly once, at the repair
    that first cut it off, so later entries overwrite instead of add (the
    value is unchanged anyway: once zeroed, a sensor's planned demand never
    grows back).
    """
    merged: dict[int, int] = {}
    for result in results:
        for sensor, packets in result.dropped_demand.items():
            if sensor not in merged:
                merged[sensor] = packets
    return merged


def repair_routing(
    cluster: Cluster,
    dead: set[int],
    energy_aware: bool = False,
    engine: str = "warm",
    method: str | None = None,
) -> RepairResult:
    """Recompute min-max-load routing with *dead* nodes excluded.

    *cluster* is the original (pre-fault) topology with its per-sensor
    packet demands; the repair prunes the dead nodes, zeroes the demand of
    any survivor that lost its last path (partial coverage), and solves the
    flow on what remains.  Repairs run at duty-cycle boundaries where
    latency matters, so the solve defaults to the warm-start engine
    (``engine``/``method`` are forwarded to
    :func:`~repro.routing.minmax.solve_min_max_load`).
    """
    with _profile_span(
        "routing.repair", histogram="routing.repair_wall_s", dead=len(dead)
    ):
        pruned = prune_dead_nodes(cluster, set(dead))
        hops = pruned.min_hop_counts()
        uncovered = frozenset(
            i
            for i in range(pruned.n_sensors)
            if i not in dead and not np.isfinite(hops[i])
        )
        dropped_demand = {i: int(pruned.packets[i]) for i in sorted(uncovered)}
        if uncovered:
            packets = pruned.packets.copy()
            packets[sorted(uncovered)] = 0
            pruned = pruned.with_packets(packets)
        solution = solve_min_max_load(
            pruned, energy_aware=energy_aware, engine=engine, method=method
        )
        return RepairResult(
            cluster=pruned,
            solution=solution,
            dead=frozenset(dead),
            uncovered=uncovered,
            dropped_demand=dropped_demand,
        )
