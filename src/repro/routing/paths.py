"""Relaying-path data structures and load accounting.

A *relaying path* (Sec. III-A) is the fixed node sequence a sensor's packets
follow to the head within a duty cycle, e.g. ``(2, 1, HEAD)`` for the
paper's Fig. 2 sensor ``s2``.  A :class:`RoutingPlan` assigns one path to
every sensor that has packets and is the unit the scheduler, the sector
partitioner, and the lifetime model all consume.

Terminology from the paper:

* **load** of a sensor — packets it must *send out* during a duty cycle:
  its own plus everything it relays.
* **hop count** of a sensor — hops its packet travels to reach the head.
* **dependent** of sensor *s* — a sensor whose relaying path passes
  through *s*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..topology.cluster import HEAD, Cluster, node_name

__all__ = ["RelayingPath", "RoutingPlan", "validate_path"]


RelayingPath = tuple[int, ...]
"""A path ``(sensor, relay, ..., HEAD)``; the owner is element 0."""


def validate_path(cluster: Cluster, path: RelayingPath) -> None:
    """Raise ``ValueError`` unless *path* is a usable relaying path.

    Checks: starts at a sensor, ends at HEAD (exactly once), consecutive
    hops are audible in the cluster, and no node repeats (a packet must
    never loop).
    """
    if len(path) < 2:
        raise ValueError(f"path too short: {path}")
    if path[-1] != HEAD:
        raise ValueError(f"path must end at the head, got {path}")
    if HEAD in path[:-1]:
        raise ValueError(f"head may only appear as the final hop: {path}")
    if len(set(path)) != len(path):
        raise ValueError(f"path revisits a node: {path}")
    for a, b in zip(path, path[1:]):
        if not cluster.can_hear(b, a):
            raise ValueError(
                f"hop {node_name(a)} -> {node_name(b)} is not audible in the cluster"
            )


@dataclass
class RoutingPlan:
    """One duty cycle's routing: a fixed relaying path per active sensor.

    Sensors with zero packets may be omitted (pure relays appear only inside
    other sensors' paths).  The plan is validated against the cluster on
    construction.
    """

    cluster: Cluster
    paths: dict[int, RelayingPath] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: dict[int, RelayingPath] = {}
        for sensor, path in self.paths.items():
            path = tuple(int(x) for x in path)
            if path[0] != sensor:
                raise ValueError(
                    f"path for sensor {sensor} must start at it, got {path}"
                )
            validate_path(self.cluster, path)
            clean[int(sensor)] = path
        self.paths = clean

    # -- queries --------------------------------------------------------------

    def path_of(self, sensor: int) -> RelayingPath:
        try:
            return self.paths[sensor]
        except KeyError:
            raise KeyError(f"no relaying path assigned to sensor {sensor}") from None

    def hop_count(self, sensor: int) -> int:
        """Hops sensor's packet travels to the head."""
        return len(self.path_of(sensor)) - 1

    def max_hop_count(self) -> int:
        return max((len(p) - 1 for p in self.paths.values()), default=0)

    def loads(self) -> np.ndarray:
        """Per-sensor load: own packets plus relayed packets (Sec. III-A).

        Pure relays (zero own packets) still accrue relayed load.
        """
        n = self.cluster.n_sensors
        load = np.zeros(n, dtype=np.int64)
        for sensor, path in self.paths.items():
            pk = int(self.cluster.packets[sensor])
            if pk == 0:
                continue
            for node in path[:-1]:  # every non-head node on the path transmits
                load[node] += pk
        return load

    def max_load(self) -> int:
        loads = self.loads()
        return int(loads.max()) if loads.size else 0

    def dependents(self, sensor: int) -> list[int]:
        """Sensors (other than *sensor*) whose relaying path passes through it."""
        out: list[int] = []
        for owner, path in self.paths.items():
            if owner != sensor and sensor in path[:-1]:
                out.append(owner)
        return sorted(out)

    def first_level_sensor_of(self, sensor: int) -> int:
        """The last sensor before the head on *sensor*'s path."""
        return self.path_of(sensor)[-2]

    def active_sensors(self) -> list[int]:
        """Sensors with at least one packet to send this cycle."""
        return sorted(
            s for s in self.paths if self.cluster.packets[s] > 0
        )

    def used_links(self) -> list[tuple[int, int]]:
        """All (sender, receiver) links appearing in any active path.

        This is the candidate set for interference probing (Sec. V-E).
        """
        links: set[tuple[int, int]] = set()
        for sensor, path in self.paths.items():
            if self.cluster.packets[sensor] == 0:
                continue
            for a, b in zip(path, path[1:]):
                links.add((a, b))
        return sorted(links)

    def subplan(self, sensors: list[int]) -> "RoutingPlan":
        """The plan restricted to the given packet owners (for sectors)."""
        return RoutingPlan(
            cluster=self.cluster,
            paths={s: self.paths[s] for s in sensors if s in self.paths},
        )

    def describe(self) -> str:
        """Multi-line human-readable listing, e.g. for example scripts."""
        lines = []
        for sensor in sorted(self.paths):
            route = " -> ".join(node_name(x) for x in self.paths[sensor])
            lines.append(
                f"{node_name(sensor)} ({int(self.cluster.packets[sensor])} pkt): {route}"
            )
        return "\n".join(lines)
