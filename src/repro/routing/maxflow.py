"""Maximum flow, implemented from scratch (no networkx dependency here).

The paper's routing step (Sec. III-A) runs "the Ford-Fulkerson algorithm" on
a node-split graph.  We implement Edmonds-Karp (BFS augmenting paths —
Ford-Fulkerson with the shortest-path rule), which is exact, strongly
polynomial, and deterministic.  Capacities are integers; ``INF`` encodes the
paper's "infinite capacity" arcs.

The residual-graph representation is the classic paired-edge scheme: edge
``2k`` and its reverse ``2k+1``, ``residual(e) = cap[e] - flow[e]`` with
``flow[e^1] = -flow[e]``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["FlowNetwork", "INF"]

INF: int = 10**12
"""Stand-in for infinite capacity (larger than any meaningful packet total)."""


@dataclass
class _Edge:
    __slots__ = ("to", "cap", "flow")
    to: int
    cap: int
    flow: int


class FlowNetwork:
    """A directed flow network over nodes ``0..n_nodes-1``.

    >>> g = FlowNetwork(4)
    >>> _ = g.add_edge(0, 1, 3); _ = g.add_edge(1, 2, 2); _ = g.add_edge(2, 3, 5)
    >>> g.max_flow(0, 3)
    2
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"network needs at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self._edges: list[_Edge] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add arc ``u -> v`` with capacity *cap*; returns the edge id.

        The reverse residual edge is ``id ^ 1``.
        """
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n_nodes}")
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        eid = len(self._edges)
        self._edges.append(_Edge(v, cap, 0))
        self._edges.append(_Edge(u, 0, 0))
        self._adj[u].append(eid)
        self._adj[v].append(eid + 1)
        return eid

    def set_capacity(self, edge_id: int, cap: int) -> None:
        """Change an edge's capacity (flow must be reset before re-solving)."""
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        self._edges[edge_id].cap = cap

    def reset_flow(self) -> None:
        """Zero all flow so the network can be re-solved after capacity edits."""
        for e in self._edges:
            e.flow = 0

    def edge_flow(self, edge_id: int) -> int:
        return self._edges[edge_id].flow

    def edge_residual(self, edge_id: int) -> int:
        e = self._edges[edge_id]
        return e.cap - e.flow

    def out_edges(self, u: int) -> list[int]:
        """Ids of *forward* edges leaving u (even ids only)."""
        return [eid for eid in self._adj[u] if eid % 2 == 0]

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """(u, v) of a forward edge."""
        if edge_id % 2 != 0:
            raise ValueError("endpoint query is for forward (even) edge ids")
        v = self._edges[edge_id].to
        u = self._edges[edge_id ^ 1].to
        return u, v

    # -- solving --------------------------------------------------------------

    def max_flow(self, source: int, sink: int) -> int:
        """Edmonds-Karp max flow from *source* to *sink*; returns its value."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        parent_edge = [-1] * self.n_nodes
        while True:
            # BFS for the shortest augmenting path in the residual graph.
            for i in range(self.n_nodes):
                parent_edge[i] = -1
            parent_edge[source] = -2
            queue: deque[int] = deque([source])
            found = False
            while queue and not found:
                u = queue.popleft()
                for eid in self._adj[u]:
                    e = self._edges[eid]
                    if e.cap - e.flow > 0 and parent_edge[e.to] == -1:
                        parent_edge[e.to] = eid
                        if e.to == sink:
                            found = True
                            break
                        queue.append(e.to)
            if not found:
                return total
            # Find bottleneck.
            bottleneck = INF
            v = sink
            while v != source:
                eid = parent_edge[v]
                e = self._edges[eid]
                bottleneck = min(bottleneck, e.cap - e.flow)
                v = self._edges[eid ^ 1].to
            # Augment.
            v = sink
            while v != source:
                eid = parent_edge[v]
                self._edges[eid].flow += bottleneck
                self._edges[eid ^ 1].flow -= bottleneck
                v = self._edges[eid ^ 1].to
            total += bottleneck
