"""Maximum flow, implemented from scratch (no networkx dependency here).

The paper's routing step (Sec. III-A) runs "the Ford-Fulkerson algorithm" on
a node-split graph.  We implement two exact, deterministic augmenting-path
algorithms over one residual representation:

* **Edmonds-Karp** (BFS augmenting paths — Ford-Fulkerson with the
  shortest-path rule), the original reference implementation; and
* **Dinic** (BFS level graph + DFS blocking flows), asymptotically and
  practically faster on the dense node-split networks the δ/λ search probes.

Both run on the *residual* graph, so calling :meth:`FlowNetwork.max_flow`
on a network that already carries flow simply augments what is there.  This
is the warm-start primitive the min-max-load search exploits: **raising an
edge capacity never invalidates an existing feasible flow**, so a monotone
sequence of capacity probes can keep its flow and pay only for the extra
augmentation (see ``routing/minmax.py`` and DESIGN.md §7).

The residual-graph representation is the classic paired-edge scheme: edge
``2k`` and its reverse ``2k+1``, ``residual(e) = cap[e] - flow[e]`` with
``flow[e^1] = -flow[e]``.  Capacities are integers; ``INF`` encodes the
paper's "infinite capacity" arcs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["FlowNetwork", "INF", "MAXFLOW_METHODS"]

INF: int = 10**12
"""Stand-in for infinite capacity (larger than any meaningful packet total)."""

MAXFLOW_METHODS = ("edmonds-karp", "dinic")
"""Valid ``method=`` arguments to :meth:`FlowNetwork.max_flow`."""


@dataclass
class _Edge:
    __slots__ = ("to", "cap", "flow")
    to: int
    cap: int
    flow: int


class FlowNetwork:
    """A directed flow network over nodes ``0..n_nodes-1``.

    >>> g = FlowNetwork(4)
    >>> _ = g.add_edge(0, 1, 3); _ = g.add_edge(1, 2, 2); _ = g.add_edge(2, 3, 5)
    >>> g.max_flow(0, 3)
    2
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"network needs at least one node, got {n_nodes}")
        self.n_nodes = n_nodes
        self._edges: list[_Edge] = []
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]
        self._forward_adj: list[list[int]] | None = None
        self.solve_calls = 0
        """Number of :meth:`max_flow` invocations (observability for tests)."""

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add arc ``u -> v`` with capacity *cap*; returns the edge id.

        The reverse residual edge is ``id ^ 1``.
        """
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n_nodes}")
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        eid = len(self._edges)
        self._edges.append(_Edge(v, cap, 0))
        self._edges.append(_Edge(u, 0, 0))
        self._adj[u].append(eid)
        self._adj[v].append(eid + 1)
        self._forward_adj = None
        return eid

    def set_capacity(self, edge_id: int, cap: int) -> None:
        """Change an edge's capacity.

        *Raising* a capacity keeps any existing flow feasible, so a
        subsequent :meth:`max_flow` call warm-starts from it.  *Lowering*
        a capacity below the edge's current flow leaves the network in an
        infeasible state — call :meth:`reset_flow` before re-solving.
        """
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        self._edges[edge_id].cap = cap

    def reset_flow(self) -> None:
        """Zero all flow so the network can be re-solved after capacity edits."""
        for e in self._edges:
            e.flow = 0

    def edge_flow(self, edge_id: int) -> int:
        return self._edges[edge_id].flow

    def edge_residual(self, edge_id: int) -> int:
        e = self._edges[edge_id]
        return e.cap - e.flow

    def out_edges(self, u: int) -> list[int]:
        """Ids of *forward* edges leaving u (even ids only).

        The per-node lists are computed once and cached (invalidated by
        :meth:`add_edge`); callers must treat the returned list as
        read-only.
        """
        if self._forward_adj is None:
            self._forward_adj = [
                [eid for eid in adj if eid % 2 == 0] for adj in self._adj
            ]
        return self._forward_adj[u]

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """(u, v) of a forward edge."""
        if edge_id % 2 != 0:
            raise ValueError("endpoint query is for forward (even) edge ids")
        v = self._edges[edge_id].to
        u = self._edges[edge_id ^ 1].to
        return u, v

    @property
    def edge_count(self) -> int:
        """Total residual-edge entries (forward edges are the even half).

        The invariant monitor walks ``range(0, edge_count, 2)`` to audit
        capacity respect and per-node conservation of a solved flow.
        """
        return len(self._edges)

    def edge_capacity(self, edge_id: int) -> int:
        return self._edges[edge_id].cap

    # -- flow state -----------------------------------------------------------

    def flow_value(self, source: int) -> int:
        """Net flow currently leaving *source* (the value of the flow)."""
        out = 0
        for eid in self._adj[source]:
            if eid % 2 == 0:
                out += self._edges[eid].flow
            else:
                out -= self._edges[eid ^ 1].flow
        return out

    def snapshot_flow(self) -> list[int]:
        """The current per-edge flow, for :meth:`restore_flow`."""
        return [e.flow for e in self._edges]

    def restore_flow(self, snapshot: list[int]) -> None:
        """Restore a flow captured by :meth:`snapshot_flow`."""
        if len(snapshot) != len(self._edges):
            raise ValueError(
                f"snapshot has {len(snapshot)} entries for {len(self._edges)} edges"
            )
        for e, f in zip(self._edges, snapshot):
            e.flow = f

    # -- solving --------------------------------------------------------------

    def max_flow(
        self,
        source: int,
        sink: int,
        method: str = "edmonds-karp",
        limit: int | None = None,
    ) -> int:
        """Augment *source* → *sink* to a maximum flow; returns the flow **added**.

        On a zero-flow network this is the max-flow value.  On a network
        that already carries flow (a warm start after monotone capacity
        raises) only the residual is augmented and the *increment* is
        returned; add :meth:`flow_value` of the prior state for the total.

        ``limit`` stops augmentation once that much flow has been added.
        When the true max increment equals ``limit`` exactly (a saturation
        probe), the resulting flow is identical to the unlimited solve —
        only the final, failing path search is skipped.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        if method not in MAXFLOW_METHODS:
            raise ValueError(f"method must be one of {MAXFLOW_METHODS}, got {method!r}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.solve_calls += 1
        if limit == 0:
            return 0
        if method == "dinic":
            return self._dinic(source, sink, limit)
        return self._edmonds_karp(source, sink, limit)

    def _edmonds_karp(self, source: int, sink: int, limit: int | None = None) -> int:
        total = 0
        parent_edge = [-1] * self.n_nodes
        while True:
            # BFS for the shortest augmenting path in the residual graph.
            for i in range(self.n_nodes):
                parent_edge[i] = -1
            parent_edge[source] = -2
            queue: deque[int] = deque([source])
            found = False
            while queue and not found:
                u = queue.popleft()
                for eid in self._adj[u]:
                    e = self._edges[eid]
                    if e.cap - e.flow > 0 and parent_edge[e.to] == -1:
                        parent_edge[e.to] = eid
                        if e.to == sink:
                            found = True
                            break
                        queue.append(e.to)
            if not found:
                return total
            # Find bottleneck.
            bottleneck = INF
            v = sink
            while v != source:
                eid = parent_edge[v]
                e = self._edges[eid]
                bottleneck = min(bottleneck, e.cap - e.flow)
                v = self._edges[eid ^ 1].to
            # Augment.
            v = sink
            while v != source:
                eid = parent_edge[v]
                self._edges[eid].flow += bottleneck
                self._edges[eid ^ 1].flow -= bottleneck
                v = self._edges[eid ^ 1].to
            total += bottleneck
            if limit is not None and total >= limit:
                return total

    def _dinic(self, source: int, sink: int, limit: int | None = None) -> int:
        edges = self._edges
        adj = self._adj
        level = [0] * self.n_nodes
        it = [0] * self.n_nodes
        total = 0
        while True:
            # Phase: BFS the residual level graph.
            for i in range(self.n_nodes):
                level[i] = -1
            level[source] = 0
            queue: deque[int] = deque([source])
            while queue:
                u = queue.popleft()
                for eid in adj[u]:
                    e = edges[eid]
                    if e.cap - e.flow > 0 and level[e.to] == -1:
                        level[e.to] = level[u] + 1
                        queue.append(e.to)
            if level[sink] == -1:
                return total
            # Blocking flow: iterative DFS with per-node edge pointers.
            for i in range(self.n_nodes):
                it[i] = 0
            while True:
                pushed = self._dinic_dfs(source, sink, INF, level, it)
                if pushed == 0:
                    break
                total += pushed
                if limit is not None and total >= limit:
                    return total

    def _dinic_dfs(
        self, u: int, sink: int, limit: int, level: list[int], it: list[int]
    ) -> int:
        # Iterative DFS along level-increasing residual edges (no recursion:
        # node-split networks can be thousands of levels deep on chains).
        edges = self._edges
        adj = self._adj
        path: list[int] = []  # edge ids of the current partial path
        stack: list[int] = [u]
        while stack:
            node = stack[-1]
            if node == sink:
                # Bottleneck along path, then augment.
                bottleneck = limit
                for eid in path:
                    e = edges[eid]
                    bottleneck = min(bottleneck, e.cap - e.flow)
                for eid in path:
                    edges[eid].flow += bottleneck
                    edges[eid ^ 1].flow -= bottleneck
                return bottleneck
            advanced = False
            while it[node] < len(adj[node]):
                eid = adj[node][it[node]]
                e = edges[eid]
                if e.cap - e.flow > 0 and level[e.to] == level[node] + 1:
                    stack.append(e.to)
                    path.append(eid)
                    advanced = True
                    break
                it[node] += 1
            if not advanced:
                # Dead end: prune this node from the level graph and backtrack.
                level[node] = -1
                stack.pop()
                if path:
                    path.pop()
                    # Retry the parent's current edge choice next iteration.
                    parent = stack[-1]
                    it[parent] += 1
        return 0
