"""Proactive k-disjoint backup relay paths (survivability layer).

The min-max-load routing of Sec. III-A commits every sensor to relay paths
for a whole duty cycle; when a relay dies mid-cycle the online algorithm can
only burn retries until the duty-cycle boundary, where ``routing/repair.py``
re-solves the flow from scratch.  This module precomputes, for every sensor,
up to *k* **backup** relaying paths that are

* node-disjoint (in their interior relays) from *all* of the sensor's
  primary flow paths, and
* mutually node-disjoint among themselves,

so that the death of any single interior relay — primary or backup — leaves
at least one precomputed alternative intact.  The MAC's in-cycle failover
(:mod:`repro.core.online`) re-issues pending requests along these paths in
the very next slot instead of waiting for the boundary repair.

The computation runs on the same node-split construction the min-max solver
uses, with **unit** through-capacities so max-flow value = maximum number of
interior-node-disjoint paths (Menger's theorem).  One network is built per
cluster and reused across sensors via the warm-start machinery of
:class:`~repro.routing.maxflow.FlowNetwork` (``set_capacity`` +
``reset_flow`` + Dinic), exactly like the δ/λ probe engines: construction,
not augmentation, dominates, so paying it once per cluster matters.

Disjointness is a *checked* property: :func:`repro.validate.check_backup_routes`
audits every bundle against the primaries (DESIGN.md §9) and is invoked on
each computation when the invariant monitor is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import validate as _validate
from ..obs import profile_span as _profile_span
from ..topology.cluster import HEAD, Cluster
from .maxflow import INF, FlowNetwork
from .minmax import FlowSolution
from .paths import RelayingPath

__all__ = ["BackupRoutes", "compute_backup_routes"]


@dataclass(frozen=True)
class BackupRoutes:
    """Precomputed backup relaying paths, up to *k* per sensor.

    ``backups[i]`` lists sensor *i*'s backup paths in preference order
    (shortest first).  ``primary_interiors[i]`` is the set of interior
    relays across all of *i*'s primary flow paths — the nodes every backup
    of *i* is guaranteed to avoid.  Sensors whose topology admits no
    disjoint alternative simply have an empty (or missing) bundle: failover
    then falls back to the boundary repair, never to an unchecked path.
    """

    k: int
    backups: dict[int, tuple[RelayingPath, ...]] = field(default_factory=dict)
    primary_interiors: dict[int, frozenset[int]] = field(default_factory=dict)

    def paths_for(self, sensor: int) -> tuple[RelayingPath, ...]:
        return self.backups.get(sensor, ())

    def select(self, sensor: int, avoid: set[int]) -> RelayingPath | None:
        """The first backup of *sensor* whose interior avoids *avoid*."""
        for path in self.backups.get(sensor, ()):
            if not (set(path[1:-1]) & avoid):
                return path
        return None

    @property
    def n_covered(self) -> int:
        """Sensors that actually have at least one backup path."""
        return sum(1 for paths in self.backups.values() if paths)


def _build_unit_network(
    cluster: Cluster,
) -> tuple[FlowNetwork, list[int], list[int]]:
    """The node-split network with unit through-capacities, zero sources.

    Same layout as the min-max solver's: 0 = source, 1 = sink, ``2+2i`` =
    in_i, ``3+2i`` = out_i.  Source arcs start at capacity 0; the per-sensor
    sweep opens exactly one at a time.
    """
    n = cluster.n_sensors
    net = FlowNetwork(2 + 2 * n)
    source_edges: list[int] = []
    through_edges: list[int] = []
    for i in range(n):
        source_edges.append(net.add_edge(0, 2 + 2 * i, 0))
        through_edges.append(net.add_edge(2 + 2 * i, 3 + 2 * i, 1))
    hears = cluster.hears
    for i in range(n):
        for j in np.flatnonzero(hears[:, i]):
            net.add_edge(3 + 2 * i, 2 + 2 * int(j), INF)
        if cluster.head_hears[i]:
            net.add_edge(3 + 2 * i, 1, INF)
    return net, source_edges, through_edges


def _walk_paths(net: FlowNetwork, origin: int) -> list[RelayingPath]:
    """Decompose the unit flow out of sensor *origin* into relaying paths.

    With unit through-capacities every interior node carries at most one
    unit, so paths fall out by walking saturated forward edges; cycles
    (legal in a max-flow) are cancelled on sight exactly like the min-max
    decomposition.
    """
    remaining: dict[int, int] = {}
    out_by_node: dict[int, list[int]] = {}
    for u in range(net.n_nodes):
        for eid in net.out_edges(u):
            f = net.edge_flow(eid)
            if f > 0:
                remaining[eid] = f
                out_by_node.setdefault(u, []).append(eid)

    def take_step(u: int) -> int | None:
        for eid in out_by_node.get(u, ()):
            if remaining.get(eid, 0) > 0:
                return eid
        return None

    start = 2 + 2 * origin
    paths: list[RelayingPath] = []
    while True:
        eid = take_step(start)
        if eid is None:
            break
        # Walk one unit to the sink, cancelling any cycle met on the way.
        while True:
            path_nodes = [start]
            path_edges: list[int] = []
            seen_at: dict[int, int] = {start: 0}
            cycled = False
            u = start
            while u != 1:
                step = take_step(u)
                if step is None:
                    raise AssertionError(
                        f"backup decomposition stuck at graph node {u}"
                    )
                v = net.edge_endpoints(step)[1]
                if v in seen_at:
                    for ce in path_edges[seen_at[v]:]:
                        remaining[ce] -= 1
                    remaining[step] -= 1
                    cycled = True
                    break
                path_edges.append(step)
                path_nodes.append(v)
                seen_at[v] = len(path_nodes) - 1
                u = v
            if not cycled:
                break
        for ce in path_edges:
            remaining[ce] -= 1
        sensors_on_path = [
            (g - 2) // 2 for g in path_nodes if g != 1 and (g - 2) % 2 == 0
        ]
        paths.append(tuple(sensors_on_path) + (HEAD,))
    return paths


def compute_backup_routes(solution: FlowSolution, k: int) -> BackupRoutes:
    """Up to *k* interior-disjoint backup paths per routed sensor.

    For each sensor *i* with a primary flow path, the interior relays of
    *all* of *i*'s primaries are removed from the unit-capacity node-split
    network (their through-arcs zeroed), *i*'s own arcs are opened to *k*,
    and a Dinic max-flow (``limit=k``) yields the maximum family of
    mutually interior-disjoint alternatives — possibly fewer than *k*,
    possibly none.  ``k=0`` is the exact no-op: an empty route set and no
    network construction at all.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0 or not solution.flow_paths:
        return BackupRoutes(k=k)
    with _profile_span(
        "routing.backups",
        histogram="routing.backups_wall_s",
        k=k,
        sensors=len(solution.flow_paths),
    ):
        return _compute_backup_routes(solution, k)


def _compute_backup_routes(solution: FlowSolution, k: int) -> BackupRoutes:
    cluster = solution.cluster
    net, source_edges, through_edges = _build_unit_network(cluster)
    backups: dict[int, tuple[RelayingPath, ...]] = {}
    primary_interiors: dict[int, frozenset[int]] = {}
    for sensor in sorted(solution.flow_paths):
        interiors = frozenset(
            node
            for path, _ in solution.flow_paths[sensor]
            for node in path[1:-1]
        )
        primary_interiors[sensor] = interiors
        # Open this sensor's source and widen its own through-arc to k; a
        # sensor lies on every one of its own paths, so its node capacity
        # must not constrain the family.  Blocked interiors get capacity 0.
        net.set_capacity(source_edges[sensor], k)
        net.set_capacity(through_edges[sensor], k)
        for node in interiors:
            net.set_capacity(through_edges[node], 0)
        net.reset_flow()
        sent = net.max_flow(0, 1, method="dinic", limit=k)
        found = _walk_paths(net, sensor) if sent > 0 else []
        # A path with an empty interior (direct head link) can absorb
        # several flow units, and nothing stops the solver from re-deriving
        # a primary path verbatim — neither duplicate is a real alternative.
        primaries = {path for path, _ in solution.flow_paths[sensor]}
        unique: list[RelayingPath] = []
        for path in found:
            if path not in primaries and path not in unique:
                unique.append(path)
        # Preference order: fewest hops first, then lexicographic — the
        # failover tries them in order, so cheap detours come first.
        unique.sort(key=lambda p: (len(p), p))
        backups[sensor] = tuple(unique)
        # Restore the shared network for the next sensor.
        net.set_capacity(source_edges[sensor], 0)
        net.set_capacity(through_edges[sensor], 1)
        for node in interiors:
            net.set_capacity(through_edges[node], 1)
    routes = BackupRoutes(
        k=k, backups=backups, primary_interiors=primary_interiors
    )
    if _validate.MONITOR.enabled:
        _validate.check_backup_routes(
            cluster,
            routes,
            hint=f"compute_backup_routes(n={cluster.n_sensors}, k={k})",
        )
    return routes
