"""Transmissions and per-slot groups.

A :class:`Transmission` is one hop of one packet in one time slot: *sender*
forwards request *request_id*'s packet to *receiver*.  A slot's transmission
group must satisfy two orthogonal kinds of constraint:

* **structural** — every node (head included) participates in at most one
  transmission per slot, because sensors are half-duplex single-radio
  devices ("sensors are simple and cannot receive and send at the same
  time", Sec. IV-B);
* **radio** — the group must be compatible per the interference oracle.

This module owns the structural side; oracles own the radio side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..interference.base import Link
from ..topology.cluster import node_name

__all__ = ["Transmission", "occupied_nodes", "structurally_ok", "links_of"]


@dataclass(frozen=True)
class Transmission:
    """One scheduled hop: ``sender -> receiver`` carrying ``request_id``.

    ``hop_index`` is the position along the request's relaying path
    (0 = the originating sensor's own send).
    """

    sender: int
    receiver: int
    request_id: int
    hop_index: int

    @property
    def link(self) -> Link:
        return (self.sender, self.receiver)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{node_name(self.sender)}->{node_name(self.receiver)}"
            f"[req{self.request_id}.h{self.hop_index}]"
        )


def occupied_nodes(group: Iterable[Transmission]) -> set[int]:
    """All nodes participating in the group (senders and receivers)."""
    nodes: set[int] = set()
    for tx in group:
        nodes.add(tx.sender)
        nodes.add(tx.receiver)
    return nodes


def structurally_ok(group: Sequence[Transmission]) -> bool:
    """No node appears twice across the group (half-duplex, single radio)."""
    seen: set[int] = set()
    for tx in group:
        if tx.sender == tx.receiver:
            return False
        if tx.sender in seen or tx.receiver in seen:
            return False
        seen.add(tx.sender)
        seen.add(tx.receiver)
    return True


def links_of(group: Sequence[Transmission]) -> list[Link]:
    """The (sender, receiver) pairs of a group, for oracle queries."""
    return [tx.link for tx in group]
