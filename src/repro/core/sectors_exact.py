"""Exhaustive sector partitioning over branch groupings (small clusters).

Optimal sector partition is NP-complete (Thm. 5), but for clusters with a
handful of first-level branches we can enumerate *every* grouping of
branches into sectors (set partitions — Bell numbers, fine up to ~8
branches) and report the grouping minimizing the maximum pseudo power
consumption rate.  The heuristic's benchmark: how close does Sec. IV-B
pairing get to this optimum?

Groups keep the relay tree's paths (with the same cross-branch rebalancing
the heuristic uses for two-root groups), so this is exact *at the branch
level*, matching the structure the paper's heuristic explores.
"""

from __future__ import annotations

from typing import Iterator

from ..routing.tree import RelayTree
from ..topology.cluster import Cluster
from .sectors import Sector, SectorPartition, _rebalance_pair

__all__ = ["iter_set_partitions", "best_branch_partition"]


def iter_set_partitions(items: list) -> Iterator[list[list]]:
    """Yield all set partitions of *items* (Bell-number many)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in iter_set_partitions(rest):
        # first joins an existing block...
        for i in range(len(partial)):
            yield partial[:i] + [[first] + partial[i]] + partial[i + 1 :]
        # ...or starts its own.
        yield [[first]] + partial


def _sector_from_group(
    cluster: Cluster, tree: RelayTree, group: list[int]
) -> Sector:
    members: list[int] = []
    for root in group:
        members.extend(tree.subtree(root))
    parent = {s: tree.parent[s] for s in members}
    if len(group) == 2:
        parent = _rebalance_pair(cluster, parent, group[0], group[1], members)
    return Sector(sensors=sorted(members), roots=sorted(group), parent=parent)


def best_branch_partition(
    tree: RelayTree,
    c1: float = 1.0,
    c2: float = 1.0,
    max_branches: int = 8,
) -> SectorPartition:
    """The branch-grouping partition minimizing the max pseudo rate."""
    cluster = tree.cluster
    roots = tree.first_level_roots()
    if len(roots) > max_branches:
        raise ValueError(
            f"{len(roots)} branches exceed the exhaustive cap of {max_branches}"
        )
    best: SectorPartition | None = None
    best_rate = float("inf")
    for grouping in iter_set_partitions(roots):
        sectors = [_sector_from_group(cluster, tree, g) for g in grouping]
        partition = SectorPartition(cluster=cluster, sectors=sectors)
        rate = partition.max_pseudo_rate(c1, c2)
        if rate < best_rate:
            best_rate = rate
            best = partition
    assert best is not None
    return best
