"""Lower bounds on the minimum polling makespan.

Used (a) to prune the exact branch-and-bound search and (b) as test oracles:
any valid schedule's makespan must dominate every bound here.

For a request set R with hop counts h_r over an oracle with group limit M:

* **head bound** — the head receives one packet per slot, and the first
  packet cannot arrive before slot h_min (its pipeline must run); so
  makespan >= (h_min - 1) + |R|.
* **pipeline bound** — some request must finish last; makespan >= max h_r.
* **node-load bound** — sensor v transmits load_v times, one per slot;
  additionally its last transmission is followed by the rest of that
  packet's pipeline: makespan >= load_v + (remaining hops after v of the
  last packet v could send) which we relax to load_v + dist_v - 1 where
  dist_v is v's distance (in hops) to the head along its path.
* **concurrency bound** — total transmissions / M.
"""

from __future__ import annotations

from math import ceil

from ..topology.cluster import HEAD
from .requests import PollRequest

__all__ = ["makespan_lower_bound"]


def makespan_lower_bound(requests: list[PollRequest], max_group_size: int) -> int:
    """The max of all known lower bounds (0 for an empty request set)."""
    if not requests:
        return 0
    hops = [r.hop_count for r in requests]
    n = len(requests)
    head_bound = (min(hops) - 1) + n
    pipeline_bound = max(hops)
    concurrency_bound = ceil(sum(hops) / max_group_size)

    # node-load bound
    load: dict[int, int] = {}
    dist_to_head: dict[int, int] = {}
    for r in requests:
        path = r.path
        for k, node in enumerate(path[:-1]):
            load[node] = load.get(node, 0) + 1
            remaining = len(path) - 1 - k  # hops from node to head on this path
            dist_to_head[node] = min(dist_to_head.get(node, remaining), remaining)
    node_bound = 0
    for node, l in load.items():
        node_bound = max(node_bound, l + dist_to_head[node] - 1)

    return max(head_bound, pipeline_bound, concurrency_bound, node_bound)
