"""Polling requests and their lifecycle (paper Sec. III-D).

"We refer each packet as a polling request, or simply a request.  Initially,
each request is active.  When a request has been added to the schedule, it
becomes idle.  At the time slot when the packet should have been received by
the cluster head, if it is not received, the request will become active
again.  Otherwise, it will be deleted."

One request = one packet.  A sensor with *k* packets owns *k* requests, all
sharing its relaying path for the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..routing.paths import RelayingPath, RoutingPlan

__all__ = ["RequestState", "PollRequest", "RequestPool"]


class RequestState(Enum):
    ACTIVE = "active"  # waiting to be added to the schedule
    IDLE = "idle"  # in the schedule, outcome not yet known
    DELETED = "deleted"  # packet received by the head


@dataclass
class PollRequest:
    """One packet awaiting delivery to the head."""

    request_id: int
    sensor: int
    path: RelayingPath
    state: RequestState = RequestState.ACTIVE
    start_slot: int | None = None  # slot of the current attempt's first hop
    attempts: int = 0

    @property
    def hop_count(self) -> int:
        return len(self.path) - 1

    def arrival_slot(self) -> int:
        """Slot in which the head receives this attempt's packet."""
        if self.start_slot is None:
            raise ValueError(f"request {self.request_id} is not scheduled")
        return self.start_slot + self.hop_count - 1

    def mark_scheduled(self, start_slot: int) -> None:
        if self.state is not RequestState.ACTIVE:
            raise ValueError(
                f"request {self.request_id} cannot be scheduled from {self.state}"
            )
        self.state = RequestState.IDLE
        self.start_slot = start_slot
        self.attempts += 1

    def mark_lost(self) -> None:
        """The expected arrival slot passed without the packet: re-activate."""
        if self.state is not RequestState.IDLE:
            raise ValueError(
                f"request {self.request_id} cannot be reactivated from {self.state}"
            )
        self.state = RequestState.ACTIVE
        self.start_slot = None

    def mark_delivered(self) -> None:
        if self.state is not RequestState.IDLE:
            raise ValueError(
                f"request {self.request_id} cannot be delivered from {self.state}"
            )
        self.state = RequestState.DELETED


class RequestPool:
    """All requests of one duty cycle, in the deterministic scan order.

    The paper scans "according to an arbitrarily predetermined order"; we
    fix it as ascending request id, which enumerates sensors in index order
    and a sensor's packets consecutively.  (Deeper-first or larger-first
    orders are exposed as alternatives for the ablation benchmarks.)
    """

    def __init__(self, plan: RoutingPlan, order: str = "index"):
        self.plan = plan
        self.requests: list[PollRequest] = []
        rid = 0
        for sensor in sorted(plan.paths):
            n_packets = int(plan.cluster.packets[sensor])
            for _ in range(n_packets):
                self.requests.append(
                    PollRequest(request_id=rid, sensor=sensor, path=plan.paths[sensor])
                )
                rid += 1
        if order == "index":
            pass
        elif order == "deep-first":
            self.requests.sort(key=lambda r: (-r.hop_count, r.request_id))
        elif order == "shallow-first":
            self.requests.sort(key=lambda r: (r.hop_count, r.request_id))
        else:
            raise ValueError(f"unknown scan order {order!r}")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def by_id(self, request_id: int) -> PollRequest:
        for r in self.requests:
            if r.request_id == request_id:
                return r
        raise KeyError(f"no request {request_id}")

    def active(self) -> list[PollRequest]:
        return [r for r in self.requests if r.state is RequestState.ACTIVE]

    def idle(self) -> list[PollRequest]:
        return [r for r in self.requests if r.state is RequestState.IDLE]

    def all_deleted(self) -> bool:
        return all(r.state is RequestState.DELETED for r in self.requests)

    def total_attempts(self) -> int:
        return sum(r.attempts for r in self.requests)
