"""Joint Multi-Hop Routing and Polling (JMHRP, paper Sec. III-E).

Jointly choosing relaying paths *and* the schedule to minimize the maximum
power consumption rate  r(v) = c1 * load(v) + c2 * T_polling  is NP-hard
(it subsumes TSRFP).  The paper's answer — and ours — is decomposition:
solve routing (min-max load) then scheduling (greedy) separately.

This module provides both:

* :func:`decomposed_jmhrp` — the paper's two-phase pipeline, returning the
  achieved max power rate;
* :func:`exact_jmhrp` — brute force over per-sensor simple-path choices ×
  exact optimal scheduling, for tiny clusters, so benchmarks can measure the
  decomposition gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..interference.base import CompatibilityOracle
from ..routing.minmax import solve_min_max_load
from ..routing.paths import RelayingPath, RoutingPlan
from ..topology.cluster import HEAD, Cluster
from .online import OnlinePollingScheduler
from .optimal import solve_optimal

__all__ = ["JmhrpResult", "power_rate", "decomposed_jmhrp", "exact_jmhrp", "all_simple_paths_to_head"]


@dataclass
class JmhrpResult:
    plan: RoutingPlan
    polling_time: int
    max_load: int
    max_power_rate: float


def power_rate(load: int, polling_time: int, c1: float, c2: float) -> float:
    """The paper's linear power consumption rate model r = c1*l + c2*T."""
    return c1 * load + c2 * polling_time


def _rate_of(plan: RoutingPlan, polling_time: int, c1: float, c2: float) -> float:
    loads = plan.loads()
    max_load = int(loads.max()) if loads.size else 0
    return power_rate(max_load, polling_time, c1, c2)


def decomposed_jmhrp(
    cluster: Cluster,
    oracle: CompatibilityOracle,
    c1: float = 1.0,
    c2: float = 1.0,
) -> JmhrpResult:
    """Route for min-max load, then schedule greedily (the paper's approach)."""
    solution = solve_min_max_load(cluster)
    plan = solution.routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    loads = plan.loads()
    return JmhrpResult(
        plan=plan,
        polling_time=result.makespan,
        max_load=int(loads.max()) if loads.size else 0,
        max_power_rate=_rate_of(plan, result.makespan, c1, c2),
    )


def all_simple_paths_to_head(
    cluster: Cluster, sensor: int, max_hops: int = 4
) -> list[RelayingPath]:
    """Every simple relaying path from *sensor* to the head up to *max_hops*."""
    out: list[RelayingPath] = []

    def extend(node: int, path: list[int]) -> None:
        if len(path) - 1 >= max_hops:
            return
        if cluster.head_hears[node]:
            out.append(tuple(path) + (HEAD,))
        for nxt in range(cluster.n_sensors):
            if nxt not in path and cluster.hears[nxt, node]:
                extend(nxt, path + [nxt])

    extend(sensor, [sensor])
    return sorted(out, key=lambda p: (len(p), p))


def exact_jmhrp(
    cluster: Cluster,
    oracle: CompatibilityOracle,
    c1: float = 1.0,
    c2: float = 1.0,
    max_hops: int = 3,
    max_combinations: int = 20_000,
) -> JmhrpResult:
    """Brute-force the routing × scheduling product (tiny clusters only)."""
    senders = [
        s for s in range(cluster.n_sensors) if cluster.packets[s] > 0
    ]
    choices = [all_simple_paths_to_head(cluster, s, max_hops=max_hops) for s in senders]
    for s, c in zip(senders, choices):
        if not c:
            raise ValueError(f"sensor {s} has no path to the head within {max_hops} hops")
    n_comb = 1
    for c in choices:
        n_comb *= len(c)
    if n_comb > max_combinations:
        raise ValueError(
            f"{n_comb} routing combinations exceed the cap of {max_combinations}"
        )
    best: JmhrpResult | None = None
    for combo in product(*choices):
        plan = RoutingPlan(
            cluster=cluster, paths={s: p for s, p in zip(senders, combo)}
        )
        opt = solve_optimal(plan, oracle)
        rate = _rate_of(plan, opt.makespan, c1, c2)
        if best is None or rate < best.max_power_rate:
            loads = plan.loads()
            best = JmhrpResult(
                plan=plan,
                polling_time=opt.makespan,
                max_load=int(loads.max()) if loads.size else 0,
                max_power_rate=rate,
            )
    assert best is not None
    return best
