"""Exact minimum-makespan polling schedules (small instances only).

The MHP problem is NP-hard (Sec. III-C), so no polynomial algorithm exists
unless P=NP — but exhaustive search with memoization and lower-bound pruning
handles the instance sizes the hardness gadgets and the greedy-vs-optimal
ablation need (roughly ≤ 12 packets).  Both the paper's no-delay semantics
and the delayed variant are supported, letting tests *measure* Thm. 2's
claim that allowing delay does not shorten TSRF schedules.

State space: (undelivered-and-unstarted requests, in-flight pipeline
positions).  One slot advances every in-flight packet by exactly one hop
(no-delay) or any chosen subset (delayed), plus starts any subset of waiting
requests, subject to the slot's group being structurally sound, oracle-
compatible, and within the group limit M.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..interference.base import CompatibilityOracle
from ..routing.paths import RoutingPlan
from .bounds import makespan_lower_bound
from .requests import PollRequest, RequestPool
from .schedule import PollingSchedule
from .transmissions import Transmission, structurally_ok

__all__ = ["OptimalResult", "solve_optimal", "optimal_makespan"]

_INF = 10**9


@dataclass
class OptimalResult:
    makespan: int
    schedule: PollingSchedule
    states_explored: int


def solve_optimal(
    plan: RoutingPlan,
    oracle: CompatibilityOracle,
    allow_delay: bool = False,
    max_requests: int = 14,
    budget_slots: int | None = None,
) -> OptimalResult:
    """Exact optimum via memoized DFS with lower-bound pruning.

    Raises ``ValueError`` for instances larger than *max_requests* packets —
    the caller should be using the online greedy scheduler there.

    When ``budget_slots`` is given, the search runs as a *decision*
    procedure: a returned makespan < budget_slots is the exact optimum,
    while a value >= budget_slots only certifies that no schedule shorter
    than budget_slots exists (use :func:`feasible_within`).
    """
    pool = RequestPool(plan)
    requests = list(pool.requests)
    if len(requests) > max_requests:
        raise ValueError(
            f"{len(requests)} requests exceed the exact-solver cap of "
            f"{max_requests}; use OnlinePollingScheduler"
        )
    if not requests:
        return OptimalResult(makespan=0, schedule=PollingSchedule(), states_explored=0)

    by_id: dict[int, PollRequest] = {r.request_id: r for r in requests}
    m = oracle.max_group_size
    all_ids = frozenset(by_id)
    stats = {"states": 0}
    # memo: state -> (best extra slots, best action) where an action is
    # (starts tuple, advances tuple) chosen at this state's slot.
    memo: dict[tuple, tuple[int, tuple | None]] = {}

    def hop_link(rid: int, k: int) -> tuple[int, int]:
        path = by_id[rid].path
        return (path[k], path[k + 1])

    # Static "lonely link" analysis: a link with no compatible partner link
    # anywhere in the instance can only ever occupy a slot alone, so
    #   slots >= (#lonely transmissions) + ceil(#pairable transmissions / M).
    all_links = sorted(
        {
            (r.path[k], r.path[k + 1])
            for r in requests
            for k in range(r.hop_count)
        }
    )
    lonely_link: dict[tuple[int, int], bool] = {}
    if m >= 2:
        for a in all_links:
            has_partner = False
            for b in all_links:
                if a == b or len({a[0], a[1], b[0], b[1]}) < 4:
                    continue
                if oracle.compatible([a, b]):
                    has_partner = True
                    break
            lonely_link[a] = not has_partner
    else:
        lonely_link = {a: True for a in all_links}

    def group_valid(hops: list[tuple[int, int]]) -> bool:
        if len(hops) > m:
            return False
        txs = [
            Transmission(sender=s, receiver=r, request_id=i, hop_index=0)
            for i, (s, r) in enumerate(hops)
        ]
        if not structurally_ok(txs):
            return False
        return oracle.compatible(hops)

    def lb(remaining: frozenset[int], ongoing: frozenset[tuple[int, int]]) -> int:
        """Cheap lower bound on extra slots from this state."""
        if not remaining and not ongoing:
            return 0
        # Every ongoing pipeline still needs (h - k) slots; every remaining
        # request needs its full pipeline; the head still takes one arrival
        # per slot for every undelivered packet.
        n_undelivered = len(remaining) + len(ongoing)
        tail = 0
        for rid, k in ongoing:
            tail = max(tail, by_id[rid].hop_count - k)
        for rid in remaining:
            tail = max(tail, by_id[rid].hop_count)
        # Node-load bound: a node with L remaining transmissions needs >= L
        # slots, plus the lead-out of the last packet it forwards.
        node_load: dict[int, int] = {}
        node_dist: dict[int, int] = {}
        for rid, k0 in list(ongoing) + [(rid, 0) for rid in remaining]:
            path = by_id[rid].path
            h = by_id[rid].hop_count
            for k in range(k0, h):
                node = path[k]
                node_load[node] = node_load.get(node, 0) + 1
                rem = h - k  # hops from node to head on this path
                node_dist[node] = min(node_dist.get(node, rem), rem)
        node_bound = 0
        for node, load in node_load.items():
            node_bound = max(node_bound, load + node_dist[node] - 1)
        # Lonely-link bound (see the static analysis above).
        n_lonely = 0
        n_pairable = 0
        for rid, k0 in list(ongoing) + [(rid, 0) for rid in remaining]:
            for k in range(k0, by_id[rid].hop_count):
                if lonely_link[hop_link(rid, k)]:
                    n_lonely += 1
                else:
                    n_pairable += 1
        lonely_bound = n_lonely + -(-n_pairable // m)
        return max(n_undelivered, tail, node_bound, lonely_bound)

    def search(
        remaining: frozenset[int],
        ongoing: frozenset[tuple[int, int]],
        budget: int,
    ) -> int:
        """Minimum extra slots to finish, or >= budget if that's impossible
        within it (branch-and-bound window)."""
        if not remaining and not ongoing:
            return 0
        key = (remaining, ongoing)
        hit = memo.get(key)
        if hit is not None:
            return hit[0]  # memo holds only exact values
        bound = lb(remaining, ongoing)
        if bound >= budget:
            return bound  # can't beat the budget; exact value not needed
        stats["states"] += 1
        best = _INF
        best_action: tuple | None = None

        forced = sorted(ongoing)
        # Advancing choices: all pipelines (no-delay) or any subset (delayed).
        if allow_delay:
            advance_choices = [
                tuple(c)
                for size in range(len(forced), -1, -1)
                for c in combinations(forced, size)
            ]
        else:
            advance_choices = [tuple(forced)]

        for advances in advance_choices:
            adv_hops = [hop_link(rid, k) for rid, k in advances]
            if len(adv_hops) > m:
                continue
            base_txs_ok = group_valid(adv_hops) if adv_hops else True
            if not base_txs_ok:
                continue
            # Enumerate start subsets, biggest first (greedy tends to be good,
            # tightening the budget early).
            waiting = sorted(remaining)
            max_new = m - len(adv_hops)
            start_subsets: list[tuple[int, ...]] = []
            for size in range(min(max_new, len(waiting)), -1, -1):
                start_subsets.extend(combinations(waiting, size))
            for starts in start_subsets:
                if not starts and not advances:
                    continue  # an all-idle slot never helps
                hops = adv_hops + [hop_link(rid, 0) for rid in starts]
                if len(hops) != len(adv_hops) and not group_valid(hops):
                    continue
                if not hops:
                    continue
                # Build successor state.
                nxt_ongoing: set[tuple[int, int]] = set()
                for rid, k in ongoing:
                    if (rid, k) in set(advances):
                        if k + 1 < by_id[rid].hop_count:
                            nxt_ongoing.add((rid, k + 1))
                    else:
                        nxt_ongoing.add((rid, k))
                for rid in starts:
                    if by_id[rid].hop_count > 1:
                        nxt_ongoing.add((rid, 1))
                sub_budget = min(budget, best) - 1
                sub = search(remaining - frozenset(starts), frozenset(nxt_ongoing), sub_budget)
                total = 1 + sub
                if total < best:
                    best = total
                    best_action = (starts, advances)
                    if best == bound:
                        break
            if best == bound:
                break
        # Branch-and-bound contract: a return value < budget is exact (no
        # subtree that could beat it was pruned); only those may be cached.
        if best < budget:
            memo[key] = (best, best_action)
        return best

    if budget_slots is None:
        budget_slots = sum(r.hop_count for r in requests) + len(requests) + 1
    best = search(all_ids, frozenset(), budget_slots)
    schedule = _reconstruct(by_id, memo, all_ids)
    return OptimalResult(makespan=best, schedule=schedule, states_explored=stats["states"])


def _reconstruct(
    by_id: dict[int, PollRequest],
    memo: dict[tuple, tuple[int, tuple | None]],
    all_ids: frozenset[int],
) -> PollingSchedule:
    """Replay the memoized best actions into an explicit schedule."""
    schedule = PollingSchedule()
    remaining = all_ids
    ongoing: frozenset[tuple[int, int]] = frozenset()
    t = 0
    while remaining or ongoing:
        entry = memo.get((remaining, ongoing))
        if entry is None or entry[1] is None:
            break  # pruned region; schedule reconstruction not possible
        starts, advances = entry[1]
        nxt_ongoing: set[tuple[int, int]] = set()
        adv_set = set(advances)
        for rid, k in ongoing:
            if (rid, k) in adv_set:
                req = by_id[rid]
                schedule.add(
                    t,
                    Transmission(
                        sender=req.path[k],
                        receiver=req.path[k + 1],
                        request_id=rid,
                        hop_index=k,
                    ),
                )
                if k + 1 < req.hop_count:
                    nxt_ongoing.add((rid, k + 1))
                else:
                    schedule.delivered[rid] = t
            else:
                nxt_ongoing.add((rid, k))
        for rid in starts:
            req = by_id[rid]
            schedule.add(
                t,
                Transmission(
                    sender=req.path[0],
                    receiver=req.path[1],
                    request_id=rid,
                    hop_index=0,
                ),
            )
            if req.hop_count > 1:
                nxt_ongoing.add((rid, 1))
            else:
                schedule.delivered[rid] = t
        remaining = remaining - frozenset(starts)
        ongoing = frozenset(nxt_ongoing)
        t += 1
        if t > 10_000:  # pragma: no cover - safety valve
            raise RuntimeError("schedule reconstruction runaway")
    return schedule


def optimal_makespan(
    plan: RoutingPlan,
    oracle: CompatibilityOracle,
    allow_delay: bool = False,
    max_requests: int = 14,
) -> int:
    """Just the optimum number of slots."""
    return solve_optimal(
        plan, oracle, allow_delay=allow_delay, max_requests=max_requests
    ).makespan


def feasible_within(
    plan: RoutingPlan,
    oracle: CompatibilityOracle,
    deadline: int,
    allow_delay: bool = False,
    max_requests: int = 24,
) -> bool:
    """Decision variant: does a schedule of at most *deadline* slots exist?

    Much faster than computing the exact optimum when the answer is no —
    the deadline becomes the branch-and-bound budget and the lower bounds
    prune aggressively.  This is exactly the TSRFP / X1MHP question
    ("can all packets reach the head by time T?").
    """
    result = solve_optimal(
        plan,
        oracle,
        allow_delay=allow_delay,
        max_requests=max_requests,
        budget_slots=deadline + 1,
    )
    return result.makespan <= deadline
