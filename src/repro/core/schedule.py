"""The polling schedule: per-slot transmission groups plus validation.

A :class:`PollingSchedule` records which transmissions the head ordered in
each slot and which packets were actually delivered (loss can make a
reserved slot carry nothing).  ``validate`` checks every property the paper
requires of a legal schedule:

* pipelining — hop *j* of an attempt occurs exactly *j* slots after hop 0
  (no-delay mode, the default per Thm. 2) or in increasing slots (delayed);
* structural — every node in at most one transmission per slot;
* radio — every slot's group is compatible per the oracle;
* completeness — every request is delivered exactly once.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..interference.base import CompatibilityOracle
from ..topology.cluster import HEAD, node_name
from .requests import PollRequest
from .transmissions import Transmission, structurally_ok

__all__ = ["PollingSchedule", "ScheduleInvalid"]


class ScheduleInvalid(ValueError):
    """Raised by :meth:`PollingSchedule.validate` with a specific reason."""


@dataclass
class PollingSchedule:
    """An (evolving or final) multi-hop polling schedule.

    ``slots[t]`` is the ordered list of transmissions in slot *t*.
    ``delivered[request_id]`` is the slot the head received that packet in
    (assigned by the scheduler / simulator as deliveries happen).
    """

    slots: list[list[Transmission]] = field(default_factory=list)
    delivered: dict[int, int] = field(default_factory=dict)

    # -- building --------------------------------------------------------------

    def _ensure_slot(self, t: int) -> None:
        while len(self.slots) <= t:
            self.slots.append([])

    def add(self, t: int, tx: Transmission) -> None:
        """Append a transmission to slot *t* (no validation — the scheduler
        is responsible for only adding legal groups; validate() re-checks)."""
        if t < 0:
            raise ValueError(f"slot must be non-negative, got {t}")
        self._ensure_slot(t)
        self.slots[t].append(tx)

    def group_at(self, t: int) -> list[Transmission]:
        return self.slots[t] if t < len(self.slots) else []

    def node_busy(self, t: int, node: int) -> bool:
        return any(tx.sender == node or tx.receiver == node for tx in self.group_at(t))

    # -- measurements ----------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Number of slots the schedule occupies (trailing empties trimmed)."""
        n = len(self.slots)
        while n > 0 and not self.slots[n - 1]:
            n -= 1
        return n

    def makespan(self) -> int:
        """Slots until the last delivery (the paper's 'polling time')."""
        if not self.delivered:
            return self.n_slots
        return max(self.delivered.values()) + 1

    def transmissions_total(self) -> int:
        return sum(len(g) for g in self.slots)

    def concurrency_profile(self) -> list[int]:
        """Group size per slot — ablations plot this against M."""
        return [len(g) for g in self.slots[: self.n_slots]]

    def last_slot_of_node(self, node: int) -> int | None:
        """Last slot *node* participates in, or None if it never does.

        This is when the sensor could go to sleep if it were told the future
        — the quantity sectoring approximates (Sec. IV).
        """
        last = None
        for t in range(self.n_slots):
            if self.node_busy(t, node):
                last = t
        return last

    # -- validation --------------------------------------------------------------

    def validate(
        self,
        requests: list[PollRequest],
        oracle: CompatibilityOracle | None = None,
        allow_delay: bool = False,
        require_all_delivered: bool = True,
    ) -> None:
        """Raise :class:`ScheduleInvalid` unless the schedule is legal.

        When *oracle* enforces a group-size limit M smaller than some slot's
        group, compatibility of that slot cannot be fully checked and the
        slot is rejected — matching the paper's rule that the head never
        schedules more concurrency than it has probed.
        """
        # Structural per-slot checks.
        for t, group in enumerate(self.slots):
            if not structurally_ok(group):
                raise ScheduleInvalid(f"slot {t}: node used twice in {self._fmt(t)}")
            if oracle is not None and group:
                if len(group) > oracle.max_group_size:
                    raise ScheduleInvalid(
                        f"slot {t}: {len(group)} concurrent transmissions exceed "
                        f"the probed group size M={oracle.max_group_size}"
                    )
                if not oracle.compatible([tx.link for tx in group]):
                    raise ScheduleInvalid(
                        f"slot {t}: incompatible group {self._fmt(t)}"
                    )
        # Per-request pipeline checks.
        by_request: dict[int, list[tuple[int, Transmission]]] = defaultdict(list)
        for t, group in enumerate(self.slots):
            for tx in group:
                by_request[tx.request_id].append((t, tx))
        for req in requests:
            placed = sorted(by_request.get(req.request_id, []))
            if not placed:
                if require_all_delivered:
                    raise ScheduleInvalid(f"request {req.request_id} never scheduled")
                continue
            self._check_pipeline(req, placed, allow_delay)
            if require_all_delivered and req.request_id not in self.delivered:
                raise ScheduleInvalid(f"request {req.request_id} never delivered")
        # Deliveries must match final hops.
        for rid, t_arr in self.delivered.items():
            placed = by_request.get(rid, [])
            finals = [
                (t, tx) for t, tx in placed if tx.receiver == HEAD and t == t_arr
            ]
            if not finals:
                raise ScheduleInvalid(
                    f"request {rid} marked delivered at slot {t_arr} but no "
                    "final hop to the head is scheduled there"
                )

    def _check_pipeline(
        self,
        req: PollRequest,
        placed: list[tuple[int, Transmission]],
        allow_delay: bool,
    ) -> None:
        """One request's hops must walk its path in order (retries = repeats
        of the full pipeline starting again from hop 0)."""
        path = req.path
        # Split into attempts: a new attempt starts whenever hop_index == 0.
        attempts: list[list[tuple[int, Transmission]]] = []
        for t, tx in placed:
            if tx.hop_index == 0:
                attempts.append([])
            if not attempts:
                raise ScheduleInvalid(
                    f"request {req.request_id}: hop {tx.hop_index} appears "
                    "before any hop 0"
                )
            attempts[-1].append((t, tx))
        for attempt in attempts:
            prev_t = None
            for k, (t, tx) in enumerate(attempt):
                if tx.hop_index != k:
                    raise ScheduleInvalid(
                        f"request {req.request_id}: expected hop {k}, "
                        f"found hop {tx.hop_index} at slot {t}"
                    )
                if (tx.sender, tx.receiver) != (path[k], path[k + 1]):
                    raise ScheduleInvalid(
                        f"request {req.request_id}: hop {k} is "
                        f"{node_name(tx.sender)}->{node_name(tx.receiver)}, "
                        f"path says {node_name(path[k])}->{node_name(path[k + 1])}"
                    )
                if prev_t is not None:
                    if allow_delay:
                        if t <= prev_t:
                            raise ScheduleInvalid(
                                f"request {req.request_id}: hop {k} at slot {t} "
                                f"not after hop {k - 1} at slot {prev_t}"
                            )
                    elif t != prev_t + 1:
                        raise ScheduleInvalid(
                            f"request {req.request_id}: no-delay violated — hop "
                            f"{k} at slot {t}, hop {k - 1} at slot {prev_t}"
                        )
                prev_t = t

    # -- display -----------------------------------------------------------------

    def _fmt(self, t: int) -> str:
        return ", ".join(str(tx) for tx in self.group_at(t))

    def describe(self) -> str:
        """Human-readable table like the paper's Fig. 2(b) / Fig. 4(c)."""
        lines = []
        for t in range(self.n_slots):
            lines.append(f"slot {t + 1}: {self._fmt(t) or '(idle)'}")
        if self.delivered:
            order = sorted(self.delivered.items(), key=lambda kv: kv[1])
            arrivals = ", ".join(f"req{rid}@{t + 1}" for rid, t in order)
            lines.append(f"deliveries: {arrivals}")
        return "\n".join(lines)

    def gantt(self) -> str:
        """ASCII per-node timeline, one row per participating node.

        Cell glyphs: ``T`` transmitting, ``R`` receiving, ``.`` idle —
        the slot-level picture the paper draws in Fig. 2(b)/4(c), rendered
        for any schedule size.
        """
        n_slots = self.n_slots
        nodes: set[int] = set()
        for group in self.slots[:n_slots]:
            for tx in group:
                nodes.add(tx.sender)
                nodes.add(tx.receiver)
        if not nodes:
            return "(empty schedule)"
        rows = []
        # Head last; sensors ascending.
        ordered = sorted(nodes - {HEAD}) + ([HEAD] if HEAD in nodes else [])
        label_w = max(len(node_name(v)) for v in ordered)
        header = " " * (label_w + 2) + "".join(
            f"{t + 1:<3d}" for t in range(n_slots)
        )
        rows.append(header)
        for v in ordered:
            cells = []
            for t in range(n_slots):
                glyph = "."
                for tx in self.group_at(t):
                    if tx.sender == v:
                        glyph = "T"
                    elif tx.receiver == v:
                        glyph = "R"
                cells.append(f"{glyph:<3}")
            rows.append(f"{node_name(v):<{label_w}}  " + "".join(cells))
        return "\n".join(rows)
