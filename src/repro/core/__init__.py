"""The paper's primary contribution: multi-hop polling and sectoring."""

from .ack import (
    AckPlan,
    bfs_path_to_head,
    greedy_weighted_set_cover,
    plan_ack_collection,
    run_ack_collection,
)
from .bounds import makespan_lower_bound
from .jmhrp import (
    JmhrpResult,
    all_simple_paths_to_head,
    decomposed_jmhrp,
    exact_jmhrp,
    power_rate,
)
from .online import (
    BernoulliLoss,
    LossModel,
    NoLoss,
    OnlinePollingScheduler,
    OnlineResult,
)
from .optimal import OptimalResult, optimal_makespan, solve_optimal
from .requests import PollRequest, RequestPool, RequestState
from .schedule import PollingSchedule, ScheduleInvalid
from .sectors import (
    PairingRules,
    Sector,
    SectorPartition,
    partition_into_sectors,
    partition_tree_into_sectors,
)
from .sectors_exact import best_branch_partition, iter_set_partitions
from .transmissions import Transmission, links_of, occupied_nodes, structurally_ok

__all__ = [
    "Transmission",
    "occupied_nodes",
    "structurally_ok",
    "links_of",
    "PollRequest",
    "RequestPool",
    "RequestState",
    "PollingSchedule",
    "ScheduleInvalid",
    "OnlinePollingScheduler",
    "OnlineResult",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "solve_optimal",
    "optimal_makespan",
    "OptimalResult",
    "makespan_lower_bound",
    "greedy_weighted_set_cover",
    "AckPlan",
    "plan_ack_collection",
    "run_ack_collection",
    "bfs_path_to_head",
    "Sector",
    "SectorPartition",
    "PairingRules",
    "partition_into_sectors",
    "partition_tree_into_sectors",
    "best_branch_partition",
    "iter_set_partitions",
    "JmhrpResult",
    "power_rate",
    "decomposed_jmhrp",
    "exact_jmhrp",
    "all_simple_paths_to_head",
]
