"""The on-line greedy polling algorithm (paper Table 1, Sec. III-D).

Before each time slot the head extends the schedule for *that slot only*:
it scans the active requests in a predetermined order and adds a request if,
started at this slot, its whole no-delay pipeline causes no contention with
the transmissions already reserved — where contention means either a node
being used twice in a slot or a slot group failing the compatibility oracle.
At most M transmissions share a slot, because the head only probed groups of
size ≤ M.

Packet loss: the head knows exactly which slot each packet should arrive in
(it fixed the start slot and knows the hop count), so a missing packet is
detected at its expected arrival slot and its request simply becomes active
again — new polls for old packets arrive while polling is still going on,
which is why the algorithm must be on-line.

Complexity: per slot the scan is O(R · h · M) oracle/occupancy work for R
requests of hop count ≤ h — linear in input size for fixed M, as the paper
notes (the exponential term is in the *probing*, not the scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs as _obs
from .. import validate as _validate
from ..interference.base import CompatibilityOracle
from ..routing.backup import BackupRoutes
from ..routing.paths import RelayingPath, RoutingPlan
from ..sim.rng import RngStreams
from ..topology.cluster import HEAD
from .requests import PollRequest, RequestPool, RequestState
from .schedule import PollingSchedule
from .transmissions import Transmission

__all__ = [
    "LossModel",
    "BernoulliLoss",
    "NoLoss",
    "FailoverEvent",
    "OnlinePollingScheduler",
    "OnlineResult",
]


@dataclass(frozen=True)
class FailoverEvent:
    """One in-cycle switch of a sensor onto a precomputed backup path.

    ``reason`` is ``"retry-exhausted"`` (a request burned its per-path retry
    budget) or ``"miss-streak"`` (the sensor reached K consecutive misses
    and would otherwise have been declared dead).
    """

    slot: int
    sensor: int
    old_path: RelayingPath
    new_path: RelayingPath
    reason: str


class LossModel:
    """Decides whether a given hop transmission fails."""

    def fails(self, request: PollRequest, hop_index: int, slot: int) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    """The ideal channel: every hop succeeds."""

    def fails(self, request: PollRequest, hop_index: int, slot: int) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent per-hop loss with probability *p*, deterministic per seed.

    The decision depends on (request, attempt, hop) so re-polls of the same
    packet redraw fresh randomness, exactly like retransmissions on a real
    channel.
    """

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = RngStreams(seed).get("loss")

    def fails(self, request: PollRequest, hop_index: int, slot: int) -> bool:
        if self.p == 0.0:
            return False
        return bool(self._rng.random() < self.p)


@dataclass
class OnlineResult:
    """Everything the experiments need from one polling run.

    ``failed_ids`` are requests abandoned after exhausting their retry budget
    (or belonging to a blacklisted sensor) — they were *not* delivered, and
    callers accounting throughput must treat them explicitly rather than
    assume every request in the pool reached the head.  ``blacklisted`` are
    sensors the head declared dead during the run (see
    ``dead_after_misses``).
    """

    schedule: PollingSchedule
    pool: RequestPool
    makespan: int
    total_attempts: int
    slots_elapsed: int
    failed_ids: frozenset[int] = frozenset()
    blacklisted: frozenset[int] = frozenset()
    failovers: tuple[FailoverEvent, ...] = ()

    @property
    def n_failed(self) -> int:
        """Requests that exhausted their retry budget and were abandoned."""
        return len(self.failed_ids)

    @property
    def delivered_count(self) -> int:
        return len(self.pool.requests) - self.n_failed

    @property
    def delivery_ratio(self) -> float:
        """Delivered / total requests (1.0 for a fault-free run)."""
        if not self.pool.requests:
            return 1.0
        return self.delivered_count / len(self.pool.requests)

    @property
    def retransmissions(self) -> int:
        return self.total_attempts - len(self.pool.requests)


class OnlinePollingScheduler:
    """Runs Table 1 to completion over a routing plan.

    Parameters
    ----------
    plan:
        the duty cycle's routing (fixed path per sensor).
    oracle:
        compatibility oracle; its ``max_group_size`` is the paper's M and
        caps per-slot concurrency.
    loss:
        optional loss model; lost packets are re-polled.
    order:
        request scan order (see :class:`RequestPool`).
    max_slots:
        safety valve — raises if polling hasn't finished by then (prevents
        infinite loops under pathological loss).
    retry_limit:
        per-request retry budget.  ``None`` (the default) means **retry
        forever** — the paper's idealized head, which re-polls until every
        packet arrives (and therefore never terminates if a sensor is truly
        dead; ``max_slots`` is the only backstop).  With an integer limit, a
        request whose attempt count reaches the limit is abandoned and
        reported in :attr:`OnlineResult.failed_ids` rather than silently
        dropped.
    dead_after_misses:
        head-side dead-sensor detection.  ``None`` disables it (default;
        behavior is bit-for-bit the pre-fault-subsystem algorithm).  With an
        integer K, a sensor whose packets miss K *consecutive* expected
        arrival slots is declared dead: all its remaining requests are
        abandoned into ``failed_ids`` and the sensor joins ``blacklist`` so
        the MAC can exclude it from future cycles and repair routes around
        it.
    telemetry:
        optional :class:`repro.obs.Telemetry` collector.  ``None`` (the
        default) uses the ambient :func:`repro.obs.current` one, which is
        the disabled null collector unless a run activated telemetry; pass
        :data:`repro.obs.NULL_TELEMETRY` explicitly to silence a planning
        or estimation run that must not pollute the live trace.
    telemetry_parent:
        span to parent this phase's per-request spans under (the MAC
        passes its phase span so requests nest in the cycle tree).
    telemetry_clock:
        ``(clock_name, now_fn)`` for span timestamps.  Defaults to the
        scheduler's own slot cursor (clock ``"slot"``); the DES MAC passes
        ``("sim", lambda: sim.now)`` so request spans share the simulation
        timeline.
    backups:
        optional precomputed k-disjoint backup paths (``routing/backup.py``).
        ``None`` (the default) keeps the pre-survivability behavior bit for
        bit.  With backups, a sensor whose relay path shows evidence of a
        dead interior relay — retry exhaustion or a K-miss streak — is
        switched onto its next viable backup *in-cycle*: pending requests
        re-issue along the new path at the next slot with a fresh retry
        budget, instead of being written off until the boundary repair.  A
        backup is viable only if none of its interior relays is already a
        suspect or blacklisted; when the pool runs dry the original
        abandon/blacklist semantics apply unchanged.
    """

    def __init__(
        self,
        plan: RoutingPlan,
        oracle: CompatibilityOracle,
        loss: LossModel | None = None,
        order: str = "index",
        max_slots: int = 1_000_000,
        retry_limit: int | None = None,
        dead_after_misses: int | None = None,
        backups: BackupRoutes | None = None,
        telemetry: "_obs.Telemetry | None" = None,
        telemetry_parent: "_obs.Span | None" = None,
        telemetry_clock: "tuple[str, Callable[[], float]] | None" = None,
    ):
        self.plan = plan
        self.oracle = oracle
        self.loss = loss or NoLoss()
        self.pool = RequestPool(plan, order=order)
        self.max_slots = max_slots
        self.retry_limit = retry_limit
        if dead_after_misses is not None and dead_after_misses < 1:
            raise ValueError(
                f"dead_after_misses must be >= 1, got {dead_after_misses}"
            )
        self.dead_after_misses = dead_after_misses
        self.failed: set[int] = set()
        self.blacklist: set[int] = set()
        self._miss_streak: dict[int, int] = {}
        self.schedule = PollingSchedule()
        # Per-request progress of the current attempt: request_id -> the
        # farthest hop that actually carries the packet (loss truncates it).
        self._attempt_ok_until: dict[int, int] = {}
        # Hot-path bookkeeping (semantics-neutral): the scan list of active
        # requests in pool order, per-slot occupied-node sets, and the count
        # of not-yet-delivered requests.
        self._scan_order = {r.request_id: i for i, r in enumerate(self.pool.requests)}
        self._active_list: list[PollRequest] = list(self.pool.requests)
        self._in_flight: list[PollRequest] = []
        self._occupied: dict[int, set[int]] = {}
        self._undelivered = len(self.pool.requests)
        # Verify every link is usable at all, otherwise polling can never end.
        for req in self.pool:
            for a, b in zip(req.path, req.path[1:]):
                if not oracle.single_link_ok((a, b)):
                    raise ValueError(
                        f"hop {a}->{b} of sensor {req.sensor}'s path never "
                        "decodes even alone; routing must avoid it"
                    )
        # In-cycle failover state.  Backups whose hops cannot decode even
        # alone are silently unusable (unlike the plan they are optional),
        # so they are filtered here once instead of re-checked per switch.
        self.failover_events: list[FailoverEvent] = []
        self._slot_cursor = 0
        # Telemetry: one span per poll request, opened lazily at its first
        # scheduled attempt.  _tel_enabled folds the whole wiring into one
        # boolean check on the hot paths.
        self._tel = telemetry if telemetry is not None else _obs.current()
        self._tel_enabled = self._tel.enabled
        self._tel_parent = telemetry_parent
        if telemetry_clock is None:
            self._tel_clock_name = "slot"
            self._tel_now = lambda: float(self._slot_cursor)
        else:
            self._tel_clock_name, self._tel_now = telemetry_clock
        self._req_spans: dict[int, _obs.Span] = {}
        self._suspect_nodes: set[int] = set()
        self._sensor_path: dict[int, RelayingPath] = {}
        self._retry_base: dict[int, int] = {}
        self._backup_pool: dict[int, list[RelayingPath]] = {}
        if backups is not None:
            for sensor, paths in backups.backups.items():
                usable = [
                    p
                    for p in paths
                    if all(
                        oracle.single_link_ok((a, b))
                        for a, b in zip(p, p[1:])
                    )
                ]
                if usable:
                    self._backup_pool[sensor] = usable

    # -- the algorithm ----------------------------------------------------------

    def run(self) -> OnlineResult:
        """Execute slot by slot until every request is deleted."""
        t = 0
        while self._undelivered > 0:
            if t >= self.max_slots:
                raise RuntimeError(
                    f"polling did not finish within {self.max_slots} slots"
                )
            self._process_arrivals(t)
            self._fill_slot(t)
            t += 1
        self.validate_invariants()
        return OnlineResult(
            schedule=self.schedule,
            pool=self.pool,
            makespan=self.schedule.makespan(),
            total_attempts=self.pool.total_attempts(),
            slots_elapsed=t,
            failed_ids=frozenset(self.failed),
            blacklisted=frozenset(self.blacklist),
            failovers=tuple(self.failover_events),
        )

    def validate_invariants(self, sim_time: float | None = None, hint: str = "") -> int:
        """Run the Sec. III-D invariant checks on the finished phase.

        Packet conservation (every request delivered or explicitly written
        off) plus the per-slot group invariants (≤ M, node-disjoint,
        oracle-compatible) on the schedule actually produced.  Called
        automatically at the end of :meth:`run`; the DES MAC calls it after
        each externally-stepped phase.  Respects the process-wide
        :mod:`repro.validate` monitor mode.
        """
        found = _validate.check_polling_outcome(self, sim_time=sim_time, hint=hint)
        found += _validate.check_schedule(
            self.schedule, self.oracle, sim_time=sim_time, hint=hint
        )
        return found

    # -- external (simulator-driven) stepping -------------------------------------
    #
    # The DES polling MAC drives the same algorithm slot by slot, with real
    # PHY deliveries instead of the internal loss model: before slot t it
    # reports which request ids arrived during slot t-1, and receives the
    # slot-t transmission group to announce in the poll message.

    def external_step(self, t: int, delivered_now: set[int]) -> list[Transmission]:
        """Advance to slot *t* given the head's observed arrivals at t-1."""
        self._slot_cursor = t
        due = self._take_arrivals(t - 1)
        # Deliveries first: same-slot proof of life must reset a sensor's
        # miss streak before a sibling request's miss can condemn it.
        for req in due:
            if req.request_id in delivered_now:
                req.mark_delivered()
                self.schedule.delivered[req.request_id] = t - 1
                self._undelivered -= 1
                self._miss_streak.pop(req.sensor, None)
                if self._tel_enabled:
                    self._tel_delivered(req)
        for req in due:
            if req.state is RequestState.IDLE:
                self._lose(req)
        self._fill_slot(t, draw_loss=False)
        return self.schedule.group_at(t)

    # -- telemetry ----------------------------------------------------------------
    #
    # One span per poll request, so a failed delivery traces end to end:
    # attempt events per scheduled re-poll, retry/failover events, then a
    # terminal delivered/abandoned event closing the span.  All callers
    # guard on self._tel_enabled, keeping the disabled path branch-cheap.

    def _tel_span(self, req: PollRequest) -> "_obs.Span":
        span = self._req_spans.get(req.request_id)
        if span is None:
            span = self._tel.begin(
                "request",
                f"poll:s{req.sensor}",
                self._tel_now(),
                clock=self._tel_clock_name,
                parent=self._tel_parent,
                sensor=req.sensor,
                request_id=req.request_id,
                path=list(req.path),
            )
            self._req_spans[req.request_id] = span
        return span

    def _tel_delivered(self, req: PollRequest) -> None:
        span = self._req_spans.get(req.request_id)
        now = self._tel_now()
        self._tel.add_event(span, now, "delivered", attempts=req.attempts)
        if span is not None:
            self._tel.finish(span, now, status="ok", attempts=req.attempts)
        self._tel.metrics.counter("polling.delivered").inc()

    def _tel_abandoned(self, req: PollRequest, reason: str) -> None:
        span = self._req_spans.get(req.request_id)
        now = self._tel_now()
        self._tel.add_event(
            span, now, "abandoned", reason=reason, attempts=req.attempts
        )
        if span is not None:
            self._tel.finish(
                span, now, status="failed", reason=reason, attempts=req.attempts
            )
        self._tel.metrics.counter("polling.abandoned").inc()

    def _lose(self, req: PollRequest) -> None:
        """Re-activate a lost request, or give it up past the retry limit.

        A real head cannot re-poll forever (a dead sensor would stall the
        whole duty cycle); past the limit the packet is abandoned and
        reported in ``failed`` / :attr:`OnlineResult.failed_ids`.  With
        backup routes, exhaustion on one path first tries switching the
        sensor onto a backup with a fresh budget; only when no viable
        backup remains does the original write-off apply.
        """
        base = self._retry_base.get(req.request_id, 0)
        if (
            self.retry_limit is not None
            and req.attempts - base >= self.retry_limit
        ):
            if self._backup_pool.get(req.sensor):
                # The whole interior of the exhausted path is now suspect —
                # the head cannot tell which relay swallowed the packets.
                self._suspect_nodes.update(req.path[1:-1])
                req.mark_lost()
                if self._try_failover(
                    req.sensor, req.path, "retry-exhausted"
                ):
                    self._reinsert_active(req)
                    return
                # No viable backup: fall through to the original write-off.
                req.state = RequestState.DELETED
                self.failed.add(req.request_id)
                self._undelivered -= 1
                if self._tel_enabled:
                    self._tel_abandoned(req, "retry-exhausted")
            else:
                req.state = RequestState.DELETED
                self.failed.add(req.request_id)
                self._undelivered -= 1
                if self._tel_enabled:
                    self._tel_abandoned(req, "retry-exhausted")
        else:
            req.mark_lost()
            current = self._sensor_path.get(req.sensor)
            if current is not None and req.path != current:
                # The sensor switched paths while this request was in
                # flight; re-issue along the new path with its fresh budget.
                req.path = current
                self._retry_base[req.request_id] = req.attempts
            self._reinsert_active(req)
            if self._tel_enabled:
                self._tel.add_event(
                    self._req_spans.get(req.request_id),
                    self._tel_now(),
                    "retry",
                    attempts=req.attempts,
                )
                self._tel.metrics.counter("polling.retries").inc()
        self._note_miss(req.sensor, req.path)

    def _note_miss(
        self, sensor: int, path: RelayingPath | None = None
    ) -> None:
        """Count a consecutive missed arrival; declare the sensor dead at K.

        With backup routes, the K-th consecutive miss first tries an
        in-cycle path switch — only a sensor with no viable backup left is
        declared dead and blacklisted.
        """
        if self.dead_after_misses is None:
            return
        streak = self._miss_streak.get(sensor, 0) + 1
        self._miss_streak[sensor] = streak
        if streak >= self.dead_after_misses and sensor not in self.blacklist:
            if self._backup_pool.get(sensor):
                current = self._sensor_path.get(
                    sensor, path if path is not None else ()
                )
                self._suspect_nodes.update(current[1:-1])
                if self._try_failover(sensor, current, "miss-streak"):
                    return
            self._declare_dead(sensor)

    def _try_failover(
        self, sensor: int, old_path: RelayingPath, reason: str
    ) -> bool:
        """Switch *sensor* onto its next viable backup path, if any.

        Viability excludes backups routing through suspect or blacklisted
        relays.  On success every not-yet-scheduled request of the sensor is
        re-stamped with the new path and a fresh retry budget, the miss
        streak resets (the new path has shown no evidence either way), and
        the switch is logged as a :class:`FailoverEvent` at the next slot a
        re-poll can go out.  In-flight (IDLE) requests keep their old path —
        their transmissions are already reserved in the schedule.
        """
        pool = self._backup_pool.get(sensor)
        if not pool:
            return False
        avoid = self._suspect_nodes | self.blacklist
        new_path: RelayingPath | None = None
        while pool:
            candidate = pool.pop(0)
            if not (set(candidate[1:-1]) & avoid):
                new_path = candidate
                break
        if not pool:
            self._backup_pool.pop(sensor, None)
        if new_path is None:
            return False
        self._sensor_path[sensor] = new_path
        for req in self.pool.requests:
            if req.sensor == sensor and req.state is RequestState.ACTIVE:
                req.path = new_path
                self._retry_base[req.request_id] = req.attempts
        self._miss_streak.pop(sensor, None)
        self.failover_events.append(
            FailoverEvent(
                slot=self._slot_cursor,
                sensor=sensor,
                old_path=old_path,
                new_path=new_path,
                reason=reason,
            )
        )
        if self._tel_enabled:
            now = self._tel_now()
            self._tel.timeline_event(
                now,
                "failover",
                sensor=sensor,
                reason=reason,
                slot=self._slot_cursor,
                old_path=list(old_path),
                new_path=list(new_path),
            )
            for req in self.pool.requests:
                if req.sensor == sensor:
                    self._tel.add_event(
                        self._req_spans.get(req.request_id),
                        now,
                        "failover",
                        reason=reason,
                        new_path=list(new_path),
                    )
            self._tel.metrics.counter("polling.failovers").inc()
        return True

    def _declare_dead(self, sensor: int) -> None:
        """Blacklist *sensor* and abandon all its undelivered requests.

        The head has watched K consecutive expected-arrival slots pass in
        silence: continuing to re-poll would stall the duty cycle, so the
        sensor's remaining packets are written off and the sensor reported
        for route repair and exclusion from future cycles.
        """
        self.blacklist.add(sensor)
        if self._tel_enabled:
            self._tel.timeline_event(
                self._tel_now(),
                "blacklist",
                sensor=sensor,
                slot=self._slot_cursor,
                misses=self._miss_streak.get(sensor),
            )
            self._tel.metrics.counter("polling.blacklisted").inc()
        for req in self.pool.requests:
            if req.sensor == sensor and req.state is not RequestState.DELETED:
                req.state = RequestState.DELETED
                self.failed.add(req.request_id)
                self._undelivered -= 1
                if self._tel_enabled:
                    self._tel_abandoned(req, "blacklist")
        self._active_list = [r for r in self._active_list if r.sensor != sensor]
        self._in_flight = [r for r in self._in_flight if r.sensor != sensor]

    def _reinsert_active(self, req: PollRequest) -> None:
        """Put a reactivated request back into the scan list, keeping the
        predetermined order (insertion by scan index)."""
        import bisect

        keys = [self._scan_order[r.request_id] for r in self._active_list]
        pos = bisect.bisect_left(keys, self._scan_order[req.request_id])
        self._active_list.insert(pos, req)

    @property
    def all_done(self) -> bool:
        return self._undelivered == 0

    def expected_arrivals(self, t: int) -> list[PollRequest]:
        """Requests whose packet should reach the head during slot *t*."""
        return [r for r in self.pool.idle() if r.arrival_slot() == t]

    def _process_arrivals(self, t: int) -> None:
        """Resolve requests whose expected arrival slot has just completed."""
        self._slot_cursor = t
        due = self._take_arrivals(t - 1)
        for req in due:
            if self._attempt_ok_until[req.request_id] >= req.hop_count:
                req.mark_delivered()
                self.schedule.delivered[req.request_id] = t - 1
                self._undelivered -= 1
                self._miss_streak.pop(req.sensor, None)
                if self._tel_enabled:
                    self._tel_delivered(req)
        for req in due:
            if req.state is RequestState.IDLE:
                self._lose(req)

    def _take_arrivals(self, slot: int) -> list["PollRequest"]:
        """Pop in-flight requests whose expected arrival slot is *slot*."""
        due = [r for r in self._in_flight if r.arrival_slot() == slot]
        if due:
            due_ids = set(id(r) for r in due)
            self._in_flight = [r for r in self._in_flight if id(r) not in due_ids]
        return due

    def _fill_slot(self, t: int, draw_loss: bool = True) -> None:
        """Greedy insertion for slot *t* (the paper's inner while loop).

        The fit test is inlined with every attribute lookup hoisted out of
        the scan: this loop probes tens of requests per slot across tens of
        thousands of slots per sweep and dominates scheduler time.
        """
        oracle = self.oracle
        m = oracle.max_group_size
        slots = self.schedule.slots
        # Only this slot's hop-0 inserts grow group_at(t) during the scan,
        # so the size is tracked locally instead of re-queried per request.
        size = len(slots[t]) if t < len(slots) else 0
        if size >= m:
            return
        occupied = self._occupied
        memo = oracle._seq_memo
        inserted: list[PollRequest] | None = None
        # Per-offset context for the current scan epoch (between inserts the
        # schedule tail is frozen): the slot's occupied-node set, whether it
        # is already full, its group, and the memo's per-group verdict dict
        # mapping a candidate link to "may it join this group".  Rebuilding
        # this per *request* is what used to dominate sweep time.
        ctx: dict[int, tuple] = {}
        ctx_get = ctx.get
        for req in self._active_list:
            path = req.path
            fits = True
            for k in range(len(path) - 1):
                c = ctx_get(k)
                if c is None:
                    tk = t + k
                    occ = occupied.get(tk)
                    group = slots[tk] if tk < len(slots) else None
                    if group:
                        gkey = tuple((tx.sender, tx.receiver) for tx in group)
                        full = len(group) >= m
                    else:
                        gkey = ()
                        full = False
                    inner = memo.get(gkey)
                    if inner is None:
                        inner = memo[gkey] = {}
                    c = (occ, full, inner.get, inner, group)
                    ctx[k] = c
                occ, full, inner_get, inner, group = c
                if full:
                    fits = False
                    break
                # Pass 1: cheap structural checks (O(1) occupied-node sets).
                if occ is not None and (path[k] in occ or path[k + 1] in occ):
                    fits = False
                    break
                # Pass 2: radio compatibility of the extended group.  The
                # same few group shapes recur every slot of every phase, so
                # probes go through the oracle's group->link memo; only
                # genuinely new shapes pay for a real group query.
                link = (path[k], path[k + 1])
                res = inner_get(link)
                if res is None:
                    if group:
                        links = [tx.link for tx in group]
                        links.append(link)
                        res = oracle.compatible(links)
                    else:
                        res = oracle.compatible([link])
                    inner[link] = res
                if not res:
                    fits = False
                    break
            if not fits:
                continue
            self._insert(req, t, draw_loss=draw_loss)
            ctx.clear()  # the insert grew groups/occupied at t..t+hops
            if inserted is None:
                inserted = []
            inserted.append(req)
            size += 1
            if size >= m:
                break
        if inserted:
            taken = set(id(r) for r in inserted)
            self._active_list = [r for r in self._active_list if id(r) not in taken]

    def _insert(self, req: PollRequest, t: int, draw_loss: bool = True) -> None:
        req.mark_scheduled(t)
        self._in_flight.append(req)
        if self._tel_enabled:
            self._tel.add_event(
                self._tel_span(req),
                self._tel_now(),
                "attempt",
                slot=t,
                attempt=req.attempts,
            )
        # Draw loss lazily per hop now so progress is fixed for this attempt.
        ok_until = 0
        lost = False
        for k in range(req.hop_count):
            self.schedule.add(
                t + k,
                Transmission(
                    sender=req.path[k],
                    receiver=req.path[k + 1],
                    request_id=req.request_id,
                    hop_index=k,
                ),
            )
            occ = self._occupied.setdefault(t + k, set())
            occ.add(req.path[k])
            occ.add(req.path[k + 1])
            if draw_loss and not lost:
                if self.loss.fails(req, k, t + k):
                    lost = True
                else:
                    ok_until = k + 1
        if draw_loss:
            self._attempt_ok_until[req.request_id] = ok_until

    # -- convenience --------------------------------------------------------------

    @classmethod
    def poll(
        cls,
        plan: RoutingPlan,
        oracle: CompatibilityOracle,
        loss: LossModel | None = None,
        order: str = "index",
    ) -> OnlineResult:
        """One-shot: build a scheduler and run it."""
        return cls(plan, oracle, loss=loss, order=order).run()
