"""Dividing a cluster into sectors (paper Sec. IV).

Sectors wake and transmit in turn, so a sensor is awake only for its own
sector's polling instead of the whole cluster's — at the price of possibly
higher relaying loads.  The partition quality target is the maximum *pseudo
power consumption rate* over sensors,

    r'(v) = c1 * load(v) + c2 * n_sector(v),

the paper's proxy for the true rate r = c1*load + c2*T_polling (polling time
is roughly proportional to sector size).  Optimal partitioning is NP-hard
(Thm. 5, via Partition), so Sec. IV-B gives a heuristic:

1. **Flow merging** — make the min-max-load routing DAG a tree
   (:func:`repro.routing.tree.merge_flow_to_tree`).
2. Treat each **first-level branch** (a head-adjacent sensor plus its
   dependents) as a candidate sector.
3. **Pair up branches** under three rules: (1) the branches are linked, so
   traffic can shift toward the less-loaded first-level sensor; (2) big
   branches pair with small ones; (3) while one first-level sensor sends to
   the head the other can simultaneously receive from its branch — the
   two-root pipeline that keeps polling time low.
4. **Rebalance** paired sectors by re-attaching subtrees across the pair
   when that lowers the heavier root's load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..interference.base import CompatibilityOracle
from ..routing.minmax import FlowSolution
from ..routing.paths import RelayingPath, RoutingPlan
from ..routing.tree import RelayTree, merge_flow_to_tree
from ..topology.cluster import HEAD, Cluster

__all__ = ["Sector", "SectorPartition", "partition_into_sectors", "PairingRules"]


@dataclass(frozen=True)
class PairingRules:
    """Toggles for the three Sec. IV-B pairing rules (ablation knobs)."""

    require_link: bool = True  # rule 1
    big_with_small: bool = True  # rule 2
    require_pipeline_compat: bool = True  # rule 3


@dataclass
class Sector:
    """One sector: a sub-cluster with its own relay tree."""

    sensors: list[int]
    roots: list[int]  # first-level sensors of this sector (1 or 2)
    parent: dict[int, int]  # relay tree within the sector

    @property
    def size(self) -> int:
        return len(self.sensors)

    def path_from(self, sensor: int) -> RelayingPath:
        path = [sensor]
        node = sensor
        while node != HEAD:
            node = self.parent[node]
            path.append(node)
        return tuple(path)

    def routing_plan(self, cluster: Cluster) -> RoutingPlan:
        paths = {
            s: self.path_from(s)
            for s in self.sensors
            if cluster.packets[s] > 0
        }
        return RoutingPlan(cluster=cluster, paths=paths)

    def loads(self, cluster: Cluster) -> dict[int, int]:
        out = {s: 0 for s in self.sensors}
        for s in self.sensors:
            pk = int(cluster.packets[s])
            if pk == 0:
                continue
            node = s
            while node != HEAD:
                out[node] += pk
                node = self.parent[node]
        return out


@dataclass
class SectorPartition:
    """A full partition of the cluster's relaying sensors into sectors."""

    cluster: Cluster
    sectors: list[Sector]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for sec in self.sectors:
            overlap = seen & set(sec.sensors)
            if overlap:
                raise ValueError(f"sensors {sorted(overlap)} appear in two sectors")
            seen |= set(sec.sensors)

    @property
    def n_sectors(self) -> int:
        return len(self.sectors)

    def sector_of(self, sensor: int) -> int:
        for i, sec in enumerate(self.sectors):
            if sensor in sec.sensors:
                return i
        raise KeyError(f"sensor {sensor} is in no sector")

    def pseudo_rates(self, c1: float = 1.0, c2: float = 1.0) -> dict[int, float]:
        """r'(v) = c1*load(v) + c2*|sector(v)| for every sector member."""
        rates: dict[int, float] = {}
        for sec in self.sectors:
            loads = sec.loads(self.cluster)
            for s in sec.sensors:
                rates[s] = c1 * loads[s] + c2 * sec.size
        return rates

    def max_pseudo_rate(self, c1: float = 1.0, c2: float = 1.0) -> float:
        rates = self.pseudo_rates(c1, c2)
        return max(rates.values()) if rates else 0.0

    def describe(self) -> str:
        lines = []
        for i, sec in enumerate(self.sectors):
            roots = ",".join(f"s{r}" for r in sec.roots)
            members = ",".join(f"s{s}" for s in sorted(sec.sensors))
            lines.append(f"sector {i}: roots [{roots}] members [{members}]")
        return "\n".join(lines)


def partition_into_sectors(
    solution: FlowSolution,
    oracle: CompatibilityOracle | None = None,
    rules: PairingRules = PairingRules(),
) -> SectorPartition:
    """The Sec. IV-B heuristic: flow merge -> branches -> pair -> rebalance."""
    tree = merge_flow_to_tree(solution)
    return partition_tree_into_sectors(tree, oracle=oracle, rules=rules)


def partition_tree_into_sectors(
    tree: RelayTree,
    oracle: CompatibilityOracle | None = None,
    rules: PairingRules = PairingRules(),
) -> SectorPartition:
    """Pair first-level branches of an existing relay tree into sectors."""
    cluster = tree.cluster
    branches = tree.branches()  # root -> [root, *dependents]
    roots = sorted(branches)
    branch_weight = {
        r: int(sum(cluster.packets[s] for s in branches[r])) for r in roots
    }

    def linked(a: int, b: int) -> bool:
        """Rule 1: any hearing link between the two branches."""
        for x in branches[a]:
            for y in branches[b]:
                if cluster.hears[x, y] or cluster.hears[y, x]:
                    return True
        return False

    def pipeline_ok(a: int, b: int) -> bool:
        """Rule 3: root A->head can overlap a receive at root B, both ways."""
        if oracle is None:
            return True

        def one_way(sending_root: int, recv_root: int) -> bool:
            kids = [s for s in branches[recv_root] if tree.parent.get(s) == recv_root]
            if not kids:
                return True  # nothing to receive; pipelining trivially fine
            return any(
                oracle.compatible([(sending_root, HEAD), (k, recv_root)])
                for k in kids
            )

        return one_way(a, b) and one_way(b, a)

    # -- pairing ---------------------------------------------------------------
    order = sorted(roots, key=lambda r: (-len(branches[r]), r))
    if not rules.big_with_small:
        order = sorted(roots)
    unpaired = set(roots)
    pairs: list[tuple[int, int | None]] = []
    for r in order:
        if r not in unpaired:
            continue
        unpaired.discard(r)
        candidates = [
            q
            for q in sorted(unpaired, key=lambda q: (len(branches[q]), q))
            if (not rules.require_link or linked(r, q))
            and (not rules.require_pipeline_compat or pipeline_ok(r, q))
        ]
        if candidates:
            partner = candidates[0]
            unpaired.discard(partner)
            pairs.append((r, partner))
        else:
            pairs.append((r, None))

    # -- build sectors with rebalancing ------------------------------------------
    sectors: list[Sector] = []
    for r, partner in pairs:
        if partner is None:
            members = list(branches[r])
            parent = {s: tree.parent[s] for s in members}
            sectors.append(Sector(sensors=sorted(members), roots=[r], parent=parent))
            continue
        members = list(branches[r]) + list(branches[partner])
        parent = {s: tree.parent[s] for s in members}
        parent = _rebalance_pair(cluster, parent, r, partner, members)
        sectors.append(
            Sector(sensors=sorted(members), roots=sorted([r, partner]), parent=parent)
        )
    return SectorPartition(cluster=cluster, sectors=sectors)


def _rebalance_pair(
    cluster: Cluster,
    parent: dict[int, int],
    root_a: int,
    root_b: int,
    members: list[int],
) -> dict[int, int]:
    """Shift subtrees between the pair's branches to balance root loads.

    Root load = total packets routed through that root = total packets in
    its branch, so balancing means moving subtree weight from the heavy
    branch to the light one over an existing hearing link (rule 1's purpose).
    """
    member_set = set(members)

    def branch_root(s: int) -> int:
        node = s
        while parent[node] != HEAD:
            node = parent[node]
        return node

    def subtree_of(v: int) -> list[int]:
        out = [v]
        frontier = [v]
        while frontier:
            nxt = [s for s in members if parent.get(s) in frontier]
            out.extend(nxt)
            frontier = nxt
        return out

    for _ in range(len(members)):  # each iteration strictly improves; bounded
        weight = {root_a: 0, root_b: 0}
        for s in members:
            weight[branch_root(s)] += int(cluster.packets[s])
        heavy, light = (
            (root_a, root_b) if weight[root_a] >= weight[root_b] else (root_b, root_a)
        )
        gap = weight[heavy] - weight[light]
        if gap <= 1:
            break
        # Best move: a non-root subtree in the heavy branch, attachable to a
        # node of the light branch, with weight strictly under the gap.
        best: tuple[int, int, int] | None = None  # (subtree weight, v, new_parent)
        for v in members:
            if v in (root_a, root_b) or branch_root(v) != heavy:
                continue
            sub = subtree_of(v)
            w = int(sum(cluster.packets[s] for s in sub))
            if w == 0 or w >= gap:
                continue
            # New parent candidates: light-branch nodes (not in v's subtree)
            # that can hear v.
            attach = [
                u
                for u in members
                if u not in sub
                and branch_root(u) == light
                and cluster.hears[u, v]
            ]
            if not attach:
                continue
            cand = (w, v, min(attach))
            if best is None or cand > best:
                best = cand
        if best is None:
            break
        _, v, new_parent = best
        parent[v] = new_parent
    return parent
