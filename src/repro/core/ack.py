"""Acknowledgment collection at duty-cycle start (paper Sec. V-F).

After the head's wake-up inquiry broadcast, every sensor must acknowledge
(and piggyback its packet count).  Polling each sensor individually wastes
time: sensors along one relaying path can *merge* their acks — a relay adds
its own ack to the packet it forwards — so only the sensor at the *start* of
each path needs to be polled.

The head therefore (1) chooses, among candidate paths, a set covering all
sensors with minimum total hop count — the Weighted Set Cover problem,
solved greedily by minimum covering cost = cost / newly-covered; and
(2) polls the chosen path heads with the ordinary multi-hop polling
algorithm.

Candidates default to the cycle's relaying paths plus, as a fallback, each
sensor's BFS shortest path (so coverage is guaranteed even for sensors that
appear on no data path this cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interference.base import CompatibilityOracle
from ..routing.paths import RelayingPath, RoutingPlan
from ..topology.cluster import HEAD, Cluster
from .online import OnlinePollingScheduler, OnlineResult

__all__ = [
    "greedy_weighted_set_cover",
    "AckPlan",
    "plan_ack_collection",
    "run_ack_collection",
    "bfs_path_to_head",
]


def greedy_weighted_set_cover(
    universe: set[int],
    subsets: list[tuple[frozenset[int], float]],
) -> list[int]:
    """Classic greedy WSC: repeatedly take the subset with minimum
    cost / newly-covered.  Returns chosen subset indices (input order ties
    broken low).  Raises if the union cannot cover the universe.
    """
    union: set[int] = set()
    for s, _ in subsets:
        union |= s
    if not universe <= union:
        missing = sorted(universe - union)
        raise ValueError(f"subsets cannot cover elements {missing}")
    uncovered = set(universe)
    chosen: list[int] = []
    while uncovered:
        best_idx = -1
        best_key: tuple[float, int] | None = None
        for idx, (members, cost) in enumerate(subsets):
            gain = len(members & uncovered)
            if gain == 0:
                continue
            # Minimum covering cost; ties prefer the larger subset (fewer
            # polls for the same cost), then input order.
            key = (cost / gain, -gain)
            if best_key is None:
                better = True
            elif key[0] < best_key[0] - 1e-12:
                better = True
            elif abs(key[0] - best_key[0]) <= 1e-12 and key[1] < best_key[1]:
                better = True
            else:
                better = False
            if better:
                best_key = key
                best_idx = idx
        assert best_idx >= 0  # guaranteed by the cover pre-check
        chosen.append(best_idx)
        uncovered -= subsets[best_idx][0]
    return chosen


def bfs_path_to_head(cluster: Cluster, sensor: int) -> RelayingPath:
    """A minimum-hop relaying path for *sensor* (deterministic BFS)."""
    if cluster.head_hears[sensor]:
        return (sensor, HEAD)
    n = cluster.n_sensors
    # BFS backward from the head: dist[i] = hops from i to head.
    dist = np.full(n, -1, dtype=np.int64)
    first_level = [int(i) for i in np.flatnonzero(cluster.head_hears)]
    for i in first_level:
        dist[i] = 1
    frontier = first_level
    while frontier:
        nxt: list[int] = []
        for i in frontier:
            # j can forward to i if i hears j.
            for j in np.flatnonzero(cluster.hears[i, :]):
                j = int(j)
                if dist[j] == -1:
                    dist[j] = dist[i] + 1
                    nxt.append(j)
        frontier = sorted(nxt)
    if dist[sensor] == -1:
        raise ValueError(f"sensor {sensor} cannot reach the head")
    # Walk downhill from sensor choosing the lowest-id next hop.
    path = [sensor]
    node = sensor
    while dist[node] > 1:
        candidates = [
            int(j)
            for j in np.flatnonzero(cluster.hears[:, node])
            if dist[int(j)] == dist[node] - 1
        ]
        node = min(candidates)
        path.append(node)
    path.append(HEAD)
    return tuple(path)


@dataclass
class AckPlan:
    """The chosen covering paths and their aggregate cost."""

    paths: list[RelayingPath]
    total_hop_count: int
    covered: set[int]

    @property
    def n_polls(self) -> int:
        """Only the first sensor of each chosen path gets polled."""
        return len(self.paths)


def plan_ack_collection(
    cluster: Cluster,
    plan: RoutingPlan | None = None,
    extra_candidates: list[RelayingPath] | None = None,
) -> AckPlan:
    """Pick covering paths by greedy weighted set cover.

    Candidates: the routing plan's paths (if given), any extras, and BFS
    fallbacks for each sensor (ensuring feasibility).  Subset = the sensors
    on a path; cost = the path's hop count.
    """
    n = cluster.n_sensors
    candidates: list[RelayingPath] = []
    if plan is not None:
        candidates.extend(plan.paths.values())
    if extra_candidates:
        candidates.extend(tuple(p) for p in extra_candidates)
    covered_by_candidates: set[int] = set()
    for p in candidates:
        covered_by_candidates |= set(p[:-1])
    hops = cluster.min_hop_counts()
    reachable = {s for s in range(n) if np.isfinite(hops[s])}
    for sensor in sorted(reachable):
        if sensor not in covered_by_candidates:
            candidates.append(bfs_path_to_head(cluster, sensor))
    # Dedupe preserving order.
    seen: set[RelayingPath] = set()
    unique: list[RelayingPath] = []
    for p in candidates:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    subsets = [(frozenset(p[:-1]), float(len(p) - 1)) for p in unique]
    chosen_idx = greedy_weighted_set_cover(reachable, subsets)
    chosen = [unique[i] for i in chosen_idx]
    covered: set[int] = set()
    for p in chosen:
        covered |= set(p[:-1])
    return AckPlan(
        paths=chosen,
        total_hop_count=sum(len(p) - 1 for p in chosen),
        covered=covered,
    )


def run_ack_collection(
    cluster: Cluster,
    ack_plan: AckPlan,
    oracle: CompatibilityOracle,
) -> OnlineResult:
    """Schedule the ack sweep: poll each chosen path's head sensor once.

    Modeled as a one-packet polling run whose requests originate at the
    chosen paths' first sensors — merging acks along the way means exactly
    one packet per path (Sec. V-F).
    """
    packets = np.zeros(cluster.n_sensors, dtype=np.int64)
    paths: dict[int, RelayingPath] = {}
    for p in ack_plan.paths:
        start = p[0]
        if start in paths:
            # Two chosen paths share a start sensor; keep the longer (more
            # coverage) and let set-cover's other path be collected by it.
            if len(p) <= len(paths[start]):
                continue
        paths[start] = p
        packets[start] = 1
    ack_cluster = cluster.with_packets(packets)
    ack_routing = RoutingPlan(cluster=ack_cluster, paths=paths)
    return OnlinePollingScheduler.poll(ack_routing, oracle)
