"""Exact solvers for the Partition problem (source of the CPAR reduction).

Partition: split positive integers a_1..a_k into two subsets of equal sum.
Solved exactly by subset-sum DP over bitsets — fast far beyond gadget sizes.
"""

from __future__ import annotations

__all__ = ["has_partition", "find_partition", "is_partition"]


def find_partition(values: list[int]) -> tuple[list[int], list[int]] | None:
    """Index sets of an equal-sum 2-partition, or None.

    Returns ``(left_indices, right_indices)`` partitioning ``range(len(values))``.
    """
    if any(v <= 0 for v in values):
        raise ValueError("Partition instances use positive integers")
    total = sum(values)
    if total % 2 == 1:
        return None
    target = total // 2
    # reachable bitset with choice tracking: choice[i] = bitset of sums
    # reachable after considering items 0..i.
    n = len(values)
    masks: list[int] = []
    reach = 1  # bit s set <=> sum s reachable
    for v in values:
        masks.append(reach)
        reach |= reach << v
    if not (reach >> target) & 1:
        return None
    # Backtrack.
    left: list[int] = []
    s = target
    for i in range(n - 1, -1, -1):
        before = masks[i]
        if (before >> s) & 1:
            continue  # sum s reachable without item i -> leave it out
        left.append(i)
        s -= values[i]
    assert s == 0
    left.reverse()
    right = [i for i in range(n) if i not in set(left)]
    return left, right


def has_partition(values: list[int]) -> bool:
    return find_partition(values) is not None


def is_partition(values: list[int], left: list[int], right: list[int]) -> bool:
    """Certificate check for a claimed equal-sum 2-partition."""
    if sorted(list(left) + list(right)) != list(range(len(values))):
        return False
    return sum(values[i] for i in left) == sum(values[i] for i in right)
