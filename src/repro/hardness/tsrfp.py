"""The TSRFP <-> Hamiltonian Path reduction, executable (paper Lemma 1).

Given any undirected graph G on vertices v_1..v_n, build a TSRF with one
branch per vertex and the interference pattern:

* transmissions ``s'_i -> s_i`` and ``s_j -> t`` are compatible **iff**
  G has the edge (v_i, v_j);
* two second-level transmissions are never compatible;
* (two first-level relays to the head share the receiver t and are
  structurally impossible anyway).

Then a collision-free polling schedule finishing by T = n+1 slots exists
iff G has a Hamiltonian path, and the two certificates convert into each
other mechanically — both directions are implemented and property-tested.

The module also *realizes* any such interference pattern with the additive
SINR physical model (arbitrary per-pair received powers, as the paper
argues is physically legitimate per ref. [1]), demonstrating the pattern is
not an artifact of tabulated oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interference.base import Link, TabulatedOracle
from ..interference.physical import PhysicalModelOracle
from ..core.requests import RequestPool
from ..core.schedule import PollingSchedule
from ..core.transmissions import Transmission
from ..routing.paths import RoutingPlan
from ..topology.cluster import HEAD
from ..topology.tsrf import Tsrf, build_tsrf
from .hamiltonian import _validate_adjacency

__all__ = [
    "TsrfpInstance",
    "tsrfp_from_graph",
    "schedule_from_hamiltonian_path",
    "hamiltonian_path_from_schedule",
    "physical_oracle_for_graph",
]


@dataclass
class TsrfpInstance:
    """A TSRFP decision instance: the TSRF, its oracle, and the deadline."""

    tsrf: Tsrf
    oracle: TabulatedOracle
    deadline: int  # T = n + 1 slots
    adjacency: np.ndarray

    @property
    def n_branches(self) -> int:
        return self.tsrf.n_branches

    def routing_plan(self) -> RoutingPlan:
        """The forced relaying paths (one per branch's second-level sensor)."""
        paths = {
            self.tsrf.second_level(b): self.tsrf.relaying_path(b)
            for b in range(self.n_branches)
        }
        return RoutingPlan(cluster=self.tsrf.cluster, paths=paths)


def _gadget_links(tsrf: Tsrf) -> tuple[list[Link], list[Link]]:
    """(A, B) where A[i] = s'_i -> s_i and B[i] = s_i -> t."""
    a = [(tsrf.second_level(i), tsrf.first_level(i)) for i in range(tsrf.n_branches)]
    b = [(tsrf.first_level(i), HEAD) for i in range(tsrf.n_branches)]
    return a, b


def tsrfp_from_graph(adj: np.ndarray) -> TsrfpInstance:
    """Construct the TSRFP instance for a Hamiltonian-path instance."""
    adj = _validate_adjacency(adj)
    n = adj.shape[0]
    if n < 1:
        raise ValueError("graph must have at least one vertex")
    tsrf = build_tsrf(n)
    a_links, b_links = _gadget_links(tsrf)
    pairs = []
    for i in range(n):
        for j in range(n):
            if i != j and adj[i, j]:
                pairs.append((a_links[i], b_links[j]))
    oracle = TabulatedOracle(
        compatible_pairs=pairs,
        valid_links=a_links + b_links,
        max_group_size=2,
    )
    return TsrfpInstance(tsrf=tsrf, oracle=oracle, deadline=n + 1, adjacency=adj)


def schedule_from_hamiltonian_path(
    inst: TsrfpInstance, path: list[int]
) -> PollingSchedule:
    """Certificate conversion HP -> schedule (the Fig. 4(c) construction).

    Slot k (0-based): branch ``path[k]``'s second-level sensor sends, while
    branch ``path[k-1]``'s relay forwards to the head; slot n delivers the
    last packet.  Request ids follow :class:`RequestPool` numbering (one
    request per second-level sensor, in sensor order).
    """
    n = inst.n_branches
    if sorted(path) != list(range(n)):
        raise ValueError(f"path must be a permutation of branches, got {path}")
    tsrf = inst.tsrf
    pool = RequestPool(inst.routing_plan())
    rid_of_branch = {
        req.sensor - n: req.request_id for req in pool  # sensor k+i -> branch i
    }
    schedule = PollingSchedule()
    for k, branch in enumerate(path):
        rid = rid_of_branch[branch]
        schedule.add(
            k,
            Transmission(
                sender=tsrf.second_level(branch),
                receiver=tsrf.first_level(branch),
                request_id=rid,
                hop_index=0,
            ),
        )
        schedule.add(
            k + 1,
            Transmission(
                sender=tsrf.first_level(branch),
                receiver=HEAD,
                request_id=rid,
                hop_index=1,
            ),
        )
        schedule.delivered[rid] = k + 1
    return schedule


def hamiltonian_path_from_schedule(
    inst: TsrfpInstance, schedule: PollingSchedule
) -> list[int]:
    """Certificate conversion schedule (makespan <= n+1) -> HP.

    The branch start order *is* the Hamiltonian path: consecutive starts
    k, k+1 overlap as {s'_(v_{k+1}) -> s_(v_{k+1}), s_(v_k) -> t}, whose
    compatibility encodes the edge (v_k, v_{k+1}).
    """
    n = inst.n_branches
    if schedule.makespan() > inst.deadline:
        raise ValueError(
            f"schedule takes {schedule.makespan()} slots > deadline {inst.deadline}; "
            "no Hamiltonian path can be extracted"
        )
    starts: list[tuple[int, int]] = []  # (slot, branch)
    for t in range(schedule.n_slots):
        for tx in schedule.group_at(t):
            if tx.hop_index == 0:
                starts.append((t, inst.tsrf.branch_of(tx.sender)))
    starts.sort()
    path = [branch for _, branch in starts]
    if sorted(path) != list(range(n)):
        raise ValueError("schedule does not start every branch exactly once")
    return path


def physical_oracle_for_graph(
    adj: np.ndarray,
    signal: float = 1.0,
    weak: float = 1e-3,
    strong: float = 1.0,
    noise: float = 1e-6,
    beta: float = 10.0,
) -> PhysicalModelOracle:
    """Realize the gadget's interference with arbitrary received powers.

    Power assignment (S = signal, eps = weak, X = strong):

    * wanted links: ``P_{s_i}(s'_i) = P_t(s_i) = S``  (decode alone);
    * second-level cross powers: ``P_{s_i}(s'_j) = X`` for i != j, so two
      second-level transmissions always jam each other;
    * relay-at-receiver powers: ``P_{s_i}(s_j) = eps`` if (v_i, v_j) is an
      edge else ``X`` — the edge set decides A_i/B_j compatibility;
    * ``P_t(s'_i) = eps`` always (the head side never vetoes an edge pair).

    With S/(noise + eps) >= beta > S/(noise + X), the resulting SINR oracle
    answers *exactly* like the tabulated gadget oracle (asserted in tests).
    """
    adj = _validate_adjacency(adj)
    n = adj.shape[0]
    if not (signal / (noise + weak) >= beta > signal / (noise + strong)):
        raise ValueError(
            "parameters must satisfy S/(N+eps) >= beta > S/(N+X) "
            f"(got S={signal}, eps={weak}, X={strong}, N={noise}, beta={beta})"
        )
    size = 2 * n + 1  # s_0..s_{n-1}, s'_0..s'_{n-1}, head
    power = np.zeros((size, size))
    head = 2 * n
    for i in range(n):
        s_i, sp_i = i, n + i
        power[s_i, sp_i] = signal  # wanted: s'_i at s_i
        power[head, s_i] = signal  # wanted: s_i at t
        power[head, sp_i] = weak  # s'_i barely reaches the head
        for j in range(n):
            if j == i:
                continue
            sp_j, s_j = n + j, j
            power[s_i, sp_j] = strong  # other second-levels jam s_i
            power[s_i, s_j] = weak if adj[i, j] else strong
    return PhysicalModelOracle(power, beta=beta, noise=noise, max_group_size=2)
