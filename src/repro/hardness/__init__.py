"""Executable NP-hardness reductions (Lemma 1, Thms. 1-5)."""

from .cpar import (
    CparInstance,
    brute_force_min_pseudo_rate,
    cpar_from_partition,
    cpar_threshold,
    sectors_from_subsets,
    subsets_from_sectors,
)
from .hamiltonian import (
    find_hamiltonian_path,
    has_hamiltonian_path,
    is_hamiltonian_path,
    random_graph,
)
from .partition import find_partition, has_partition, is_partition
from .tsrfp import (
    TsrfpInstance,
    hamiltonian_path_from_schedule,
    physical_oracle_for_graph,
    schedule_from_hamiltonian_path,
    tsrfp_from_graph,
)
from .x1mhp import (
    X1mhpInstance,
    canonical_x1mhp_schedule,
    x1mhp_deadline,
    x1mhp_from_graph,
)

__all__ = [
    "has_hamiltonian_path",
    "find_hamiltonian_path",
    "is_hamiltonian_path",
    "random_graph",
    "has_partition",
    "find_partition",
    "is_partition",
    "TsrfpInstance",
    "tsrfp_from_graph",
    "schedule_from_hamiltonian_path",
    "hamiltonian_path_from_schedule",
    "physical_oracle_for_graph",
    "X1mhpInstance",
    "x1mhp_from_graph",
    "x1mhp_deadline",
    "canonical_x1mhp_schedule",
    "CparInstance",
    "cpar_from_partition",
    "cpar_threshold",
    "sectors_from_subsets",
    "subsets_from_sectors",
    "brute_force_min_pseudo_rate",
]
