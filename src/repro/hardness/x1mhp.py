"""The X1MHP gadget (paper Thm. 3): one packet per sensor.

TSRFP instances give first-level sensors zero packets; the Exact-One-Packet
MHP reduction pads each branch with an *auxiliary branch* of four sensors
(u, u', u'', u''') so every sensor owns exactly one packet, while an
exchange argument is supposed to show any optimal schedule can be
rearranged into a canonical two-part form: first a fixed 7-slot block per
branch delivering the auxiliary packets and the first-level sensor's own
packet, then a pure TSRFP schedule for the second-level packets.

**Reproduction finding (negative).**  Under link-level compatibility
semantics — compatibility is a property of the (sender, receiver) pairs,
which is how both the protocol and physical models behave — the published
exchange argument has a leak: the pairing ``(u''_i -> u'_i, s_i -> t)`` can
be exploited *twice* per branch, because the link ``s_i -> t`` carries two
packet instances (s_i's own packet and the relayed s'_i packet), and
likewise first-level *own* arrivals can host graph-edge pairings that the
proof implicitly reserves for relay arrivals.  Our exact solver exhibits
schedules meeting the deadline ``8k + 1`` on graphs with **no** Hamiltonian
path (see ``tests/hardness/test_x1mhp.py``), so the construction as
published does not decide HP at that threshold.  The *forward* direction is
intact and implemented (:func:`canonical_x1mhp_schedule` builds and
validates an ``8k + 1`` schedule from any Hamiltonian path), and X1MHP's
NP-hardness itself is not in doubt — only this particular gadget's
bookkeeping.  We keep the construction faithful and pin the observed
behavior in tests rather than silently "fixing" the theorem.

Node numbering for k branches: ``s_i = i``, ``s'_i = k+i`` (the TSRF part),
auxiliary ``u_i = 2k+4i``, ``u'_i = 2k+4i+1``, ``u''_i = 2k+4i+2``,
``u'''_i = 2k+4i+3``.  Total 6k sensors / 6k packets.

Relaying paths: ``u''' -> u'' -> u' -> t``; ``u'' -> u' -> t``; ``u'`` and
``u`` send directly to t; plus the TSRF paths.  The only compatibilities:
the original TSRFP pairs, and ``(u''_i -> u'_i)`` with ``(s_i -> t)`` —
exactly one pairing opportunity per block, which is what pins the canonical
form.

A schedule finishing by ``deadline = 8k + 1`` exists iff the underlying
graph has a Hamiltonian path (verified against the exact solver in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.requests import RequestPool
from ..core.schedule import PollingSchedule
from ..core.transmissions import Transmission
from ..interference.base import Link, TabulatedOracle
from ..routing.paths import RelayingPath, RoutingPlan
from ..topology.cluster import HEAD, Cluster
from .hamiltonian import _validate_adjacency

__all__ = ["X1mhpInstance", "x1mhp_from_graph", "x1mhp_deadline", "canonical_x1mhp_schedule"]


def x1mhp_deadline(n_branches: int) -> int:
    """Slots of the canonical optimal schedule: 7 per block + (k+1) TSRFP."""
    return 8 * n_branches + 1


@dataclass
class X1mhpInstance:
    cluster: Cluster
    oracle: TabulatedOracle
    n_branches: int
    adjacency: np.ndarray
    deadline: int

    # -- node helpers ------------------------------------------------------------

    def s(self, i: int) -> int:
        return i

    def sp(self, i: int) -> int:
        return self.n_branches + i

    def u(self, i: int) -> int:
        return 2 * self.n_branches + 4 * i

    def up(self, i: int) -> int:
        return 2 * self.n_branches + 4 * i + 1

    def upp(self, i: int) -> int:
        return 2 * self.n_branches + 4 * i + 2

    def uppp(self, i: int) -> int:
        return 2 * self.n_branches + 4 * i + 3

    def routing_plan(self) -> RoutingPlan:
        paths: dict[int, RelayingPath] = {}
        for i in range(self.n_branches):
            paths[self.s(i)] = (self.s(i), HEAD)
            paths[self.sp(i)] = (self.sp(i), self.s(i), HEAD)
            paths[self.u(i)] = (self.u(i), HEAD)
            paths[self.up(i)] = (self.up(i), HEAD)
            paths[self.upp(i)] = (self.upp(i), self.up(i), HEAD)
            paths[self.uppp(i)] = (self.uppp(i), self.upp(i), self.up(i), HEAD)
        return RoutingPlan(cluster=self.cluster, paths=paths)


def x1mhp_from_graph(adj: np.ndarray) -> X1mhpInstance:
    """Build the Thm. 3 instance from a Hamiltonian-path graph."""
    adj = _validate_adjacency(adj)
    k = adj.shape[0]
    if k < 1:
        raise ValueError("graph must have at least one vertex")
    n = 6 * k
    hears = np.zeros((n, n), dtype=bool)
    head_hears = np.zeros(n, dtype=bool)

    def link(a: int, b: int) -> None:
        hears[a, b] = hears[b, a] = True

    inst = X1mhpInstance(
        cluster=None,  # type: ignore[arg-type]  # filled below
        oracle=None,  # type: ignore[arg-type]
        n_branches=k,
        adjacency=adj,
        deadline=x1mhp_deadline(k),
    )
    for i in range(k):
        link(inst.s(i), inst.sp(i))
        link(inst.up(i), inst.upp(i))
        link(inst.upp(i), inst.uppp(i))
        head_hears[inst.s(i)] = True
        head_hears[inst.u(i)] = True
        head_hears[inst.up(i)] = True
    cluster = Cluster(
        hears=hears,
        head_hears=head_hears,
        packets=np.ones(n, dtype=np.int64),
    )
    # Compatible pairs: the TSRFP pattern plus one pairing link per block.
    pairs: list[tuple[Link, Link]] = []
    for i in range(k):
        for j in range(k):
            if i != j and adj[i, j]:
                pairs.append(
                    ((inst.sp(i), inst.s(i)), (inst.s(j), HEAD))
                )
        pairs.append(((inst.upp(i), inst.up(i)), (inst.s(i), HEAD)))
    valid: list[Link] = []
    for i in range(k):
        valid.extend(
            [
                (inst.s(i), HEAD),
                (inst.sp(i), inst.s(i)),
                (inst.u(i), HEAD),
                (inst.up(i), HEAD),
                (inst.upp(i), inst.up(i)),
                (inst.uppp(i), inst.upp(i)),
            ]
        )
    oracle = TabulatedOracle(
        compatible_pairs=pairs, valid_links=valid, max_group_size=2
    )
    inst.cluster = cluster
    inst.oracle = oracle
    return inst


def canonical_x1mhp_schedule(
    inst: X1mhpInstance, ham_path: list[int]
) -> PollingSchedule:
    """The two-part canonical schedule for a Hamiltonian path certificate.

    Blocks run in branch order 0..k-1 (block contents are branch-local, so
    order is free); the TSRFP part follows in Hamiltonian-path order.
    """
    k = inst.n_branches
    if sorted(ham_path) != list(range(k)):
        raise ValueError(f"ham_path must be a permutation of branches, got {ham_path}")
    pool = RequestPool(inst.routing_plan())
    rid: dict[int, int] = {req.sensor: req.request_id for req in pool}
    sched = PollingSchedule()

    def put(t: int, sender: int, receiver: int, owner: int, hop: int) -> None:
        sched.add(
            t,
            Transmission(
                sender=sender, receiver=receiver, request_id=rid[owner], hop_index=hop
            ),
        )

    for b in range(k):
        o = 7 * b
        s, sp = inst.s(b), inst.sp(b)
        u, up, upp, uppp = inst.u(b), inst.up(b), inst.upp(b), inst.uppp(b)
        put(o + 0, uppp, upp, uppp, 0)
        put(o + 1, upp, up, uppp, 1)
        put(o + 1, s, HEAD, s, 0)
        sched.delivered[rid[s]] = o + 1
        put(o + 2, up, HEAD, uppp, 2)
        sched.delivered[rid[uppp]] = o + 2
        put(o + 3, upp, up, upp, 0)
        put(o + 4, up, HEAD, upp, 1)
        sched.delivered[rid[upp]] = o + 4
        put(o + 5, up, HEAD, up, 0)
        sched.delivered[rid[up]] = o + 5
        put(o + 6, u, HEAD, u, 0)
        sched.delivered[rid[u]] = o + 6
    base = 7 * k
    for pos, branch in enumerate(ham_path):
        sp, s = inst.sp(branch), inst.s(branch)
        put(base + pos, sp, s, sp, 0)
        put(base + pos + 1, s, HEAD, sp, 1)
        sched.delivered[rid[sp]] = base + pos + 1
    return sched
