"""The CPAR gadget (paper Thm. 5, Fig. 6): Partition -> cluster partition.

Given positive integers a_1..a_m, build a cluster with two head-adjacent
sensors S1, S2 and, per integer a_i, a chain ("branch") of a_i sensors
whose first element connects to *both* S1 and S2.  Every sensor has one
packet.  Since only S1 and S2 reach the head, at most two sectors exist and
each must contain one of them; a sector {S1} + branches of total weight W
gives S1 load 1+W and sector size 1+W, hence (with c1 = c2 = 1) pseudo rate
2(1+W).  Therefore max pseudo rate <= B := A + 2 (A = sum a_i) is
achievable **iff** the integers split into two equal-sum halves — the
Partition problem.

Both certificate directions are implemented: an equal-sum split becomes a
two-sector partition meeting the threshold, and any sector partition
meeting the threshold yields an equal-sum split.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..core.sectors import Sector, SectorPartition
from ..topology.cluster import HEAD, Cluster

__all__ = [
    "CparInstance",
    "cpar_from_partition",
    "cpar_threshold",
    "sectors_from_subsets",
    "subsets_from_sectors",
    "brute_force_min_pseudo_rate",
]


def cpar_threshold(values: list[int]) -> float:
    """B = A + 2: the max pseudo rate of a perfectly balanced split."""
    return float(sum(values) + 2)


@dataclass
class CparInstance:
    cluster: Cluster
    values: list[int]
    branch_nodes: list[list[int]]  # chain node ids, b_1 first (head-most)
    threshold: float

    @property
    def s1(self) -> int:
        return 0

    @property
    def s2(self) -> int:
        return 1


def cpar_from_partition(values: list[int]) -> CparInstance:
    """Build the Fig. 6 cluster for a Partition instance."""
    if not values:
        raise ValueError("Partition instance must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("Partition instances use positive integers")
    total = 2 + sum(values)
    hears = np.zeros((total, total), dtype=bool)
    head_hears = np.zeros(total, dtype=bool)
    head_hears[0] = head_hears[1] = True
    branch_nodes: list[list[int]] = []
    nxt = 2
    for a in values:
        chain = list(range(nxt, nxt + a))
        nxt += a
        branch_nodes.append(chain)
        b1 = chain[0]
        hears[0, b1] = hears[b1, 0] = True  # b_1 <-> S1
        hears[1, b1] = hears[b1, 1] = True  # b_1 <-> S2
        for a_node, b_node in zip(chain, chain[1:]):
            hears[a_node, b_node] = hears[b_node, a_node] = True
    cluster = Cluster(
        hears=hears, head_hears=head_hears, packets=np.ones(total, dtype=np.int64)
    )
    return CparInstance(
        cluster=cluster,
        values=list(values),
        branch_nodes=branch_nodes,
        threshold=cpar_threshold(values),
    )


def _sector_for(inst: CparInstance, root: int, branch_idx: list[int]) -> Sector:
    """Sector = one head-adjacent sensor + whole branches routed through it."""
    parent: dict[int, int] = {root: HEAD}
    sensors = [root]
    for bi in branch_idx:
        chain = inst.branch_nodes[bi]
        parent[chain[0]] = root
        for up, down in zip(chain, chain[1:]):
            parent[down] = up
        sensors.extend(chain)
    return Sector(sensors=sorted(sensors), roots=[root], parent=parent)


def sectors_from_subsets(
    inst: CparInstance, left: list[int], right: list[int]
) -> SectorPartition:
    """Certificate: equal-sum split -> the corresponding 2-sector partition."""
    if sorted(list(left) + list(right)) != list(range(len(inst.values))):
        raise ValueError("left/right must partition the branch indices")
    return SectorPartition(
        cluster=inst.cluster,
        sectors=[
            _sector_for(inst, inst.s1, sorted(left)),
            _sector_for(inst, inst.s2, sorted(right)),
        ],
    )


def subsets_from_sectors(
    inst: CparInstance, partition: SectorPartition
) -> tuple[list[int], list[int]]:
    """Certificate: a sector partition -> branch index subsets by sector.

    Branches are atomic here (a chain's only way out is through its b_1), so
    each branch lies wholly in the sector of whichever of S1/S2 it routes
    through.
    """
    if partition.n_sectors != 2:
        raise ValueError("CPAR gadget partitions have exactly two sectors")
    left: list[int] = []
    right: list[int] = []
    s1_sector = partition.sector_of(inst.s1)
    for bi, chain in enumerate(inst.branch_nodes):
        sec = partition.sector_of(chain[0])
        members = set(partition.sectors[sec].sensors)
        if not set(chain) <= members:
            raise ValueError(f"branch {bi} is split across sectors")
        (left if sec == s1_sector else right).append(bi)
    return left, right


def brute_force_min_pseudo_rate(
    inst: CparInstance, c1: float = 1.0, c2: float = 1.0
) -> tuple[float, SectorPartition]:
    """Try every branch->{S1,S2} assignment; return the best partition.

    Exponential (2^m) — gadget sizes only.  Tests assert the minimum equals
    the threshold iff the Partition instance is a yes-instance.
    """
    m = len(inst.values)
    best_rate = float("inf")
    best: SectorPartition | None = None
    for assignment in product((0, 1), repeat=m):
        left = [i for i in range(m) if assignment[i] == 0]
        right = [i for i in range(m) if assignment[i] == 1]
        partition = sectors_from_subsets(inst, left, right)
        rate = partition.max_pseudo_rate(c1, c2)
        if rate < best_rate:
            best_rate = rate
            best = partition
    assert best is not None
    return best_rate, best
