"""Exact Hamiltonian-path machinery (the reduction's source problem).

Bitmask dynamic programming: ``reach[mask][v]`` = can the vertex set *mask*
be traversed by a simple path ending at *v*.  O(2^n * n^2) time — exact for
the gadget sizes the tests use (n <= ~16).
"""

from __future__ import annotations

import numpy as np

__all__ = ["has_hamiltonian_path", "find_hamiltonian_path", "is_hamiltonian_path", "random_graph"]


def _validate_adjacency(adj: np.ndarray) -> np.ndarray:
    adj = np.asarray(adj, dtype=bool)
    n = adj.shape[0]
    if adj.shape != (n, n):
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    if not np.array_equal(adj, adj.T):
        raise ValueError("Hamiltonian-path instances here are undirected; adjacency must be symmetric")
    if np.diagonal(adj).any():
        raise ValueError("no self-loops allowed")
    return adj


def find_hamiltonian_path(adj: np.ndarray) -> list[int] | None:
    """A Hamiltonian path (any endpoints) as a vertex list, or None."""
    adj = _validate_adjacency(adj)
    n = adj.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]
    full = (1 << n) - 1
    # parent[mask][v] = predecessor of v on some path covering mask, or -2 if
    # v starts the path, or -1 if unreachable.
    parent = [[-1] * n for _ in range(1 << n)]
    for v in range(n):
        parent[1 << v][v] = -2
    for mask in range(1 << n):
        for v in range(n):
            if parent[mask][v] == -1 or not (mask >> v) & 1:
                continue
            for w in range(n):
                if (mask >> w) & 1 or not adj[v, w]:
                    continue
                nxt = mask | (1 << w)
                if parent[nxt][w] == -1:
                    parent[nxt][w] = v
    for end in range(n):
        if parent[full][end] != -1:
            path = [end]
            mask, v = full, end
            while parent[mask][v] != -2:
                p = parent[mask][v]
                path.append(p)
                mask ^= 1 << v
                v = p
            path.reverse()
            return path
    return None


def has_hamiltonian_path(adj: np.ndarray) -> bool:
    """Does the undirected graph contain a Hamiltonian path?"""
    return find_hamiltonian_path(adj) is not None


def is_hamiltonian_path(adj: np.ndarray, path: list[int]) -> bool:
    """Verify a claimed Hamiltonian path (certificate check)."""
    adj = _validate_adjacency(adj)
    n = adj.shape[0]
    if sorted(path) != list(range(n)):
        return False
    return all(adj[a, b] for a, b in zip(path, path[1:]))


def random_graph(n: int, edge_prob: float, seed: int = 0) -> np.ndarray:
    """A random undirected graph for reduction round-trip tests."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge probability must be in [0,1], got {edge_prob}")
    rng = np.random.default_rng(seed)
    upper = rng.random((n, n)) < edge_prob
    adj = np.triu(upper, k=1)
    return adj | adj.T
