"""Throughput accounting helpers (the Fig. 7b metric).

"Throughput ... is defined as the average number of packets received by the
cluster head in a given time period."  We express it in bytes/second
(matching the paper's Bps axes) and provide warmup-windowed counting so the
reported figure reflects steady state, like the paper's 100 s warmup.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThroughputWindow", "throughput_bps", "delivery_ratio"]


def throughput_bps(packets_delivered: int, packet_bytes: int, elapsed_s: float) -> float:
    """Delivered bytes per second over a window."""
    if elapsed_s <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_s}")
    if packets_delivered < 0 or packet_bytes <= 0:
        raise ValueError("packet counts must be non-negative and sizes positive")
    return packets_delivered * packet_bytes / elapsed_s


def delivery_ratio(delivered: int, offered: int) -> float:
    """Fraction of offered packets that reached the head (1.0 when idle)."""
    if delivered < 0 or offered < 0:
        raise ValueError("counts must be non-negative")
    if offered == 0:
        return 1.0
    return delivered / offered


@dataclass
class ThroughputWindow:
    """Counts deliveries inside a measurement window (post-warmup)."""

    start: float
    end: float
    packet_bytes: int = 80
    delivered: int = 0

    def record(self, created_at: float, delivered_at: float) -> bool:
        """Count a delivery if its packet was created inside the window."""
        if self.start <= created_at <= self.end:
            self.delivered += 1
            return True
        return False

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def bps(self) -> float:
        return throughput_bps(self.delivered, self.packet_bytes, self.span)
