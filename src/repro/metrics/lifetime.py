"""Sensor lifetime under the paper's power-rate model (the Fig. 7c engine).

Sec. III-E: a sensor's life is inversely proportional to its power
consumption rate  r(v) = c1 * load(v) + c2 * T,  where load(v) is its
transmit load per duty cycle and T is the time it must stay awake (the
polling time of its cluster — or, with sectors, of its *sector*).

We ground c1 and c2 in the radio energy model rather than picking numbers:
staying awake for one slot costs ``idle_w * slot_time``; transmitting one
packet costs ``(tx_w - idle_w) * data_airtime`` *extra*; so

    r(v) = (tx_w - idle_w) * airtime * load(v)  +  idle_w * slot_time * T_slots

in joules per duty cycle.  Lifetime(v) = battery / (r(v) * cycles per
second); the *cluster* lifetime is set by its worst sensor (first death).

Fig. 7(c) compares max-rate with sectors (each sensor awake only for its
sector's polling) against without (everyone awake for the whole cluster's
polling), at 100% throughput in both cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.online import OnlinePollingScheduler
from ..core.sectors import PairingRules, SectorPartition, partition_into_sectors
from ..interference.base import CompatibilityOracle
from ..mac.base import MacTimings, geometric_oracle
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES, FrameSizes
from ..routing.minmax import solve_min_max_load
from ..routing.tree import merge_flow_to_tree
from ..sim.units import transmission_time
from ..topology.cluster import Cluster
from ..topology.deployment import uniform_square

__all__ = [
    "LifetimeResult",
    "cycles_to_first_death",
    "EnergyRateModel",
    "evaluate_lifetime_ratio",
]


@dataclass(frozen=True)
class EnergyRateModel:
    """Translates (load, awake slots) into joules per duty cycle."""

    energy: EnergyParams = EnergyParams()
    bitrate: float = 200_000.0
    sizes: FrameSizes = DEFAULT_SIZES
    timings: MacTimings = MacTimings()

    # Sensors wake a little early to absorb clock drift; with sectors they
    # rendezvous twice per cycle (the cluster-wide ack phase and their
    # sector's turn), so margins are charged per wake event.
    wake_margin_slots: float = 3.0

    @property
    def slot_time(self) -> float:
        return self.timings.poll_slot_time(self.bitrate, self.sizes, self.sizes.data)

    @property
    def ack_slot_time(self) -> float:
        return self.timings.poll_slot_time(self.bitrate, self.sizes, self.sizes.ack_report)

    @property
    def data_airtime(self) -> float:
        return transmission_time(self.sizes.data, self.bitrate)

    @property
    def c1(self) -> float:
        """Extra joules per transmitted packet (tx above idle)."""
        return (self.energy.tx_w - self.energy.idle_w) * self.data_airtime

    @property
    def c2(self) -> float:
        """Joules per slot spent awake."""
        return self.energy.idle_w * self.slot_time

    def rate(
        self,
        load: float,
        awake_slots: float,
        ack_slots: float = 0.0,
        wake_events: int = 1,
    ) -> float:
        """Joules consumed per duty cycle.

        ``awake_slots`` counts data-phase slots the sensor stays up for;
        ``ack_slots`` the cluster-wide acknowledgment phase (everyone is
        awake for it — Sec. V-F runs before data transmission regardless of
        sectoring); ``wake_events`` charges the clock-drift margin once per
        rendezvous.
        """
        return (
            self.c1 * load
            + self.c2 * (awake_slots + wake_events * self.wake_margin_slots)
            + self.energy.idle_w * self.ack_slot_time * ack_slots
        )

    def lifetime_cycles(self, load: float, awake_slots: float) -> float:
        r = self.rate(load, awake_slots)
        if r <= 0:
            return float("inf")
        return self.energy.battery_j / r


@dataclass
class LifetimeResult:
    """Max power rates and the headline ratio for one cluster."""

    n_sensors: int
    unsectored_polling_slots: int
    sector_polling_slots: list[int]
    max_rate_unsectored: float
    max_rate_sectored: float
    partition: SectorPartition

    @property
    def lifetime_ratio(self) -> float:
        """Sectored lifetime / unsectored lifetime (Fig. 7c y-value)."""
        if self.max_rate_sectored <= 0:
            return float("inf")
        return self.max_rate_unsectored / self.max_rate_sectored

    @property
    def n_sectors(self) -> int:
        return self.partition.n_sectors


def cycles_to_first_death(
    cluster: Cluster,
    oracle: CompatibilityOracle,
    model: EnergyRateModel = EnergyRateModel(),
    sectored: bool = False,
    rules: PairingRules = PairingRules(),
) -> tuple[float, int]:
    """Duty cycles until the first sensor battery dies, and which sensor.

    Deterministic: per-cycle consumption is the rate model evaluated on the
    fixed routing (loads and awake slots don't change cycle to cycle in the
    one-packet-per-sensor setting), so first death = battery / worst rate.
    Returns ``(cycles, sensor)``.
    """
    from ..core.ack import plan_ack_collection
    from ..routing.paths import RoutingPlan

    solution = solve_min_max_load(cluster)
    ack = plan_ack_collection(cluster, solution.routing_plan())
    ack_paths = {p[0]: p for p in ack.paths}
    ack_packets = np.zeros(cluster.n_sensors, dtype=np.int64)
    for s in ack_paths:
        ack_packets[s] = 1
    ack_plan = RoutingPlan(cluster=cluster.with_packets(ack_packets), paths=ack_paths)
    ack_slots = OnlinePollingScheduler.poll(ack_plan, oracle).slots_elapsed

    rates: dict[int, float] = {}
    if not sectored:
        tree = merge_flow_to_tree(solution)
        plan = tree.routing_plan()
        t = OnlinePollingScheduler.poll(plan, oracle).slots_elapsed
        loads = plan.loads()
        for s in range(cluster.n_sensors):
            rates[s] = model.rate(float(loads[s]), float(t), ack_slots=ack_slots)
    else:
        partition = partition_into_sectors(solution, oracle=oracle, rules=rules)
        for sec in partition.sectors:
            sec_plan = sec.routing_plan(cluster)
            t = (
                OnlinePollingScheduler.poll(sec_plan, oracle).slots_elapsed
                if sec_plan.paths
                else 0
            )
            sec_loads = sec.loads(cluster)
            for s in sec.sensors:
                rates[s] = model.rate(
                    float(sec_loads[s]), float(t), ack_slots=ack_slots, wake_events=2
                )
    worst_sensor = max(rates, key=lambda s: rates[s])
    worst = rates[worst_sensor]
    cycles = model.energy.battery_j / worst if worst > 0 else float("inf")
    return cycles, worst_sensor


def evaluate_lifetime_ratio(
    n_sensors: int = 30,
    seed: int = 0,
    side_m: float = 200.0,
    sensor_range_m: float = 55.0,
    model: EnergyRateModel = EnergyRateModel(),
    rules: PairingRules = PairingRules(),
    max_group_size: int = 2,
) -> LifetimeResult:
    """Build a cluster, poll it whole and by sectors, compare worst rates.

    Every sensor has one packet per cycle (the Sec. IV setting).  With
    sectors, a sensor is awake for its own sector's polling plus the fixed
    duty overhead; without, for the whole cluster's polling.
    """
    dep = uniform_square(n_sensors, seed=seed, side=side_m, comm_range=sensor_range_m)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(
        geo, sensor_range_m=sensor_range_m, max_group_size=max_group_size
    )
    return evaluate_lifetime_ratio_for_cluster(cluster, oracle, model=model, rules=rules)


def evaluate_lifetime_ratio_for_cluster(
    cluster: Cluster,
    oracle: CompatibilityOracle,
    model: EnergyRateModel = EnergyRateModel(),
    rules: PairingRules = PairingRules(),
) -> LifetimeResult:
    """The Fig. 7c computation on an explicit cluster + oracle."""
    from ..core.ack import plan_ack_collection
    from ..routing.paths import RoutingPlan

    solution = solve_min_max_load(cluster)
    tree = merge_flow_to_tree(solution)

    # Cluster-wide ack phase (everyone awake for it, sectored or not).
    ack = plan_ack_collection(cluster, solution.routing_plan())
    ack_paths = {p[0]: p for p in ack.paths}
    ack_packets = np.zeros(cluster.n_sensors, dtype=np.int64)
    for s in ack_paths:
        ack_packets[s] = 1
    ack_plan = RoutingPlan(cluster=cluster.with_packets(ack_packets), paths=ack_paths)
    ack_slots = OnlinePollingScheduler.poll(ack_plan, oracle).slots_elapsed

    # --- unsectored: whole-cluster polling, everyone awake throughout.
    plan = tree.routing_plan()
    whole = OnlinePollingScheduler.poll(plan, oracle)
    t_whole = whole.slots_elapsed
    loads_whole = plan.loads()
    rates_unsect = [
        model.rate(
            float(loads_whole[s]), float(t_whole), ack_slots=ack_slots, wake_events=1
        )
        for s in range(cluster.n_sensors)
    ]
    max_unsect = max(rates_unsect) if rates_unsect else 0.0

    # --- sectored: same tree, paired branches; awake for the cluster-wide
    # ack phase plus only their own sector's polling turn (two rendezvous).
    partition = partition_into_sectors(solution, oracle=oracle, rules=rules)
    sector_slots: list[int] = []
    max_sect = 0.0
    for sec in partition.sectors:
        sec_plan = sec.routing_plan(cluster)
        if sec_plan.paths:
            result = OnlinePollingScheduler.poll(sec_plan, oracle)
            t_sec = result.slots_elapsed
        else:
            t_sec = 0
        sector_slots.append(t_sec)
        sec_loads = sec.loads(cluster)
        for s in sec.sensors:
            max_sect = max(
                max_sect,
                model.rate(
                    float(sec_loads[s]), float(t_sec), ack_slots=ack_slots, wake_events=2
                ),
            )
    return LifetimeResult(
        n_sensors=cluster.n_sensors,
        unsectored_polling_slots=t_whole,
        sector_polling_slots=sector_slots,
        max_rate_unsectored=max_unsect,
        max_rate_sectored=max_sect,
        partition=partition,
    )
