"""Measurement layer: active time, throughput, lifetime, energy, degradation."""

from .activetime import ActiveTimeConfig, ActiveTimeResult, CycleRecord, simulate_active_time
from .availability import AvailabilityReport, FaultRecovery, availability_report
from .degradation import DegradationReport, degradation_report, reconcile_dropped_demand
from .energy import EnergyReport, energy_report
from .staleness import StalenessReport, staleness_report
from .lifetime import (
    EnergyRateModel,
    LifetimeResult,
    evaluate_lifetime_ratio,
    evaluate_lifetime_ratio_for_cluster,
)
from .throughput import ThroughputWindow, delivery_ratio, throughput_bps

__all__ = [
    "ActiveTimeConfig",
    "ActiveTimeResult",
    "CycleRecord",
    "simulate_active_time",
    "AvailabilityReport",
    "FaultRecovery",
    "availability_report",
    "DegradationReport",
    "degradation_report",
    "reconcile_dropped_demand",
    "EnergyRateModel",
    "LifetimeResult",
    "evaluate_lifetime_ratio",
    "evaluate_lifetime_ratio_for_cluster",
    "ThroughputWindow",
    "throughput_bps",
    "delivery_ratio",
    "EnergyReport",
    "energy_report",
    "StalenessReport",
    "staleness_report",
]
