"""Availability metrics for faulted runs: recovery latency and continuity.

Degradation metrics (:mod:`repro.metrics.degradation`) answer *how much* a
faulted run lost; this module answers *how fast* it came back.  Recovery
work — in-cycle failover onto backup paths, boundary route repair, head
takeover — all cashes out as the same observable: the head resumes taking
delivery of data packets.  So each fault's **time-to-recover** is measured
from its injection time to the first data delivery after it, and **delivery
continuity** is the fraction of duty cycles with offered traffic in which at
least one packet actually arrived.  Both come straight from the MAC's
append-only delivery log, which costs nothing to record and exists whether
or not any survivability feature is armed — making reactive-vs-proactive
comparisons (``backup_k=0`` vs ``k>=1``) apples to apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..mac.pollmac import PollingClusterMac

__all__ = ["FaultRecovery", "AvailabilityReport", "availability_report"]

_FAULT_KINDS = ("crash", "stun", "battery-death")


def _affected_origins(
    mac: "PollingClusterMac", node: int, at: float
) -> set[int]:
    """Origins whose routing (in force at time *at*) relied on *node*.

    Any rotation alternative counts — the rotator may pick any of a
    sensor's flow paths each cycle.  The faulted node's own traffic is
    excluded: a crashed or depleted sensor cannot recover, and counting it
    would turn every fatal fault into infinite downtime by definition.
    """
    solution = None
    for t, sol in mac.route_history:
        if t <= at:
            solution = sol
        else:
            break
    if solution is None:
        return set()
    return {
        sensor
        for sensor, bundles in solution.flow_paths.items()
        if sensor != node
        and any(node in path[1:-1] for path, _ in bundles)
    }


@dataclass(frozen=True)
class FaultRecovery:
    """One fault and the delivery that proved its victims had recovered.

    ``affected`` are the origins whose relay paths (any rotation
    alternative in the routing in force at injection time) ran through the
    faulted node — the flows the fault could actually disturb.  Recovery is
    the first post-fault delivery *from an affected origin*; deliveries of
    untouched sensors prove nothing about the fault.  A fault nobody routed
    through recovers instantly (downtime 0).
    """

    node: int
    kind: str  # "crash" | "stun" | "battery-death"
    at: float  # injection time
    affected: tuple[int, ...]  # origins routed through the faulted node
    recovered_at: float | None  # first affected-origin delivery after it
    """``None`` when no affected origin ever delivered again — the fault's
    victims stayed dark for the rest of the run."""

    @property
    def downtime(self) -> float:
        """Seconds from the fault to its victims' next delivery.  0.0 when
        the fault disturbed no flow; inf when the victims never recovered."""
        if not self.affected:
            return 0.0
        if self.recovered_at is None:
            return math.inf
        return self.recovered_at - self.at


@dataclass(frozen=True)
class AvailabilityReport:
    """How quickly and how continuously one run delivered under faults."""

    cycle_length: float
    recoveries: tuple[FaultRecovery, ...]
    in_cycle_failovers: int  # backup-path switches the schedulers performed
    route_repairs: int  # boundary re-solves
    cycles_offered: int  # duty cycles that had traffic to deliver
    cycles_delivering: int  # of those, cycles with >= 1 delivery

    @property
    def continuity(self) -> float:
        """Fraction of traffic-bearing cycles that delivered something."""
        if self.cycles_offered == 0:
            return 1.0
        return self.cycles_delivering / self.cycles_offered

    @property
    def median_time_to_recover(self) -> float:
        """Median seconds from a fault to the next delivery (0.0 if no
        faults; inf when most faults were never recovered from)."""
        times = sorted(r.downtime for r in self.recoveries)
        if not times:
            return 0.0
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2.0

    @property
    def median_ttr_cycles(self) -> float:
        """Median time-to-recover in units of the polling cycle length."""
        if self.cycle_length <= 0:
            return math.inf
        return self.median_time_to_recover / self.cycle_length

    @property
    def total_downtime(self) -> float:
        """Summed per-fault downtime (inf if any fault never recovered)."""
        return sum(r.downtime for r in self.recoveries)

    @property
    def unrecovered(self) -> int:
        return sum(1 for r in self.recoveries if r.recovered_at is None)


def availability_report(
    mac: "PollingClusterMac",
    injector: "FaultInjector | None" = None,
    cycle_length: float | None = None,
) -> AvailabilityReport:
    """Build the availability report from a finished run's MAC.

    Each injector fault (crash, stun, battery death — recoveries are the
    remedy, not a fault) is matched against the head's delivery log: the
    first data packet accepted strictly after the fault's injection time
    marks the recovery.  Without an injector the report still carries the
    failover/repair counters and continuity — useful for head-takeover runs
    where the fault is injected outside the FaultPlan machinery.
    """
    if cycle_length is None:
        cycle_length = mac.cycle_length
    recoveries: list[FaultRecovery] = []
    if injector is not None:
        for event in injector.events:
            if event.kind not in _FAULT_KINDS:
                continue
            affected = _affected_origins(mac, event.node, event.time)
            recovered = None
            if affected:
                recovered = next(
                    (
                        t
                        for t, origin in mac.delivery_times
                        if t > event.time and origin in affected
                    ),
                    None,
                )
            recoveries.append(
                FaultRecovery(
                    node=event.node,
                    kind=event.kind,
                    at=event.time,
                    affected=tuple(sorted(affected)),
                    recovered_at=recovered,
                )
            )
    offered = [s for s in mac.cycle_stats if s.packets_offered > 0]
    delivering = [s for s in offered if s.packets_delivered > 0]
    return AvailabilityReport(
        cycle_length=cycle_length,
        recoveries=tuple(recoveries),
        in_cycle_failovers=mac.in_cycle_failovers,
        route_repairs=mac.route_repairs,
        cycles_offered=len(offered),
        cycles_delivering=len(delivering),
    )
