"""Energy reporting across a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import validate as _validate
from ..mac.base import ClusterPhy
from ..radio.energy import RadioState

__all__ = ["EnergyReport", "energy_report"]


@dataclass
class EnergyReport:
    """Per-sensor and aggregate energy figures from a finished run."""

    consumed_j: np.ndarray  # per sensor
    active_s: np.ndarray
    sleep_s: np.ndarray
    tx_s: np.ndarray
    rx_s: np.ndarray
    head_consumed_j: float

    @property
    def total_sensor_energy_j(self) -> float:
        return float(self.consumed_j.sum())

    @property
    def max_sensor_energy_j(self) -> float:
        return float(self.consumed_j.max()) if self.consumed_j.size else 0.0

    @property
    def mean_active_fraction(self) -> float:
        total = self.active_s + self.sleep_s
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(total > 0, self.active_s / total, 0.0)
        return float(frac.mean()) if frac.size else 0.0

    def per_sensor_table(self) -> list[dict]:
        return [
            {
                "sensor": i,
                "consumed_j": float(self.consumed_j[i]),
                "active_s": float(self.active_s[i]),
                "sleep_s": float(self.sleep_s[i]),
                "tx_s": float(self.tx_s[i]),
                "rx_s": float(self.rx_s[i]),
            }
            for i in range(self.consumed_j.shape[0])
        ]


def energy_report(phy: ClusterPhy) -> EnergyReport:
    """Snapshot energy accounting from a cluster's transceivers.

    Call after ``phy.finalize()`` so dwell times integrate to ``sim.now``.
    """
    n = phy.n_sensors
    consumed = np.zeros(n)
    active = np.zeros(n)
    sleep = np.zeros(n)
    tx = np.zeros(n)
    rx = np.zeros(n)
    for i in range(n):
        meter = phy.transceivers[i].meter
        consumed[i] = meter.consumed_j
        active[i] = meter.active_time_s()
        sleep[i] = meter.dwell_s[RadioState.SLEEP]
        tx[i] = meter.dwell_s[RadioState.TX]
        rx[i] = meter.dwell_s[RadioState.RX]
    report = EnergyReport(
        consumed_j=consumed,
        active_s=active,
        sleep_s=sleep,
        tx_s=tx,
        rx_s=rx,
        head_consumed_j=phy.transceivers[phy.head_index].meter.consumed_j,
    )
    # Monotone-drain / non-negative-residual invariants (DESIGN.md §8).
    # Dwell sums are only compared against the clock once meters have been
    # finalized to sim.now; over-accounting is a bug at any point.
    _validate.check_energy_report(
        report, elapsed=phy.sim.now, hint=f"energy_report(n={n}, t={phy.sim.now:.3f})"
    )
    return report
