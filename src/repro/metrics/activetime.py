"""Schedule-level active-time model (the Fig. 7a engine).

Runs the real protocol logic — ack set-cover, the Table-1 scheduler, path
rotation, per-cycle CBR packet arithmetic, backlog carry-over and
saturation — at slot granularity without PHY events, which makes full
parameter sweeps (cluster size x data rate) take seconds instead of hours.
The event-driven MAC (:mod:`repro.net.cluster_sim`) implements the same
protocol; tests assert the two agree on duty time for common configs.

Saturation semantics: if a duty cycle's work exceeds the cycle length the
next cycle simply starts late (the head cannot compress physics), so the
effective period stretches, the active fraction approaches 1, and backlog
grows without bound — the paper's "above this threshold, packets will be
lost" cliff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ack import plan_ack_collection
from ..core.online import BernoulliLoss, LossModel, OnlinePollingScheduler
from ..mac.base import MacTimings, geometric_oracle
from ..radio.packet import DEFAULT_SIZES, FrameSizes
from ..routing.minmax import solve_min_max_load
from ..routing.paths import RoutingPlan
from ..routing.rotation import PathRotator
from ..sim.units import transmission_time
from ..topology.cluster import Cluster
from ..topology.deployment import uniform_square

__all__ = ["ActiveTimeConfig", "CycleRecord", "ActiveTimeResult", "simulate_active_time"]


@dataclass(frozen=True)
class ActiveTimeConfig:
    n_sensors: int = 30
    rate_bps: float = 20.0
    cycle_length: float = 10.0
    n_cycles: int = 50
    warmup_cycles: int = 5
    seed: int = 0
    side_m: float = 200.0
    sensor_range_m: float = 55.0
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    max_group_size: int = 2
    loss_rate: float = 0.0
    sizes: FrameSizes = DEFAULT_SIZES
    timings: MacTimings = MacTimings()


@dataclass
class CycleRecord:
    start: float
    duty_time: float
    period: float  # max(cycle_length, duty_time): saturation stretches it
    ack_slots: int
    data_slots: int
    packets: int


@dataclass
class ActiveTimeResult:
    config: ActiveTimeConfig
    cycles: list[CycleRecord]
    saturated: bool
    backlog_end: float

    @property
    def active_fraction(self) -> float:
        """Mean duty-time share after warmup (the Fig. 7a y-value)."""
        recs = self.cycles[self.config.warmup_cycles :] or self.cycles
        if not recs:
            return 0.0
        total_duty = sum(r.duty_time for r in recs)
        total_span = sum(r.period for r in recs)
        return min(1.0, total_duty / total_span) if total_span > 0 else 1.0

    @property
    def mean_data_slots(self) -> float:
        recs = self.cycles[self.config.warmup_cycles :] or self.cycles
        return float(np.mean([r.data_slots for r in recs])) if recs else 0.0


def simulate_active_time(config: ActiveTimeConfig = ActiveTimeConfig()) -> ActiveTimeResult:
    """Run the slot-level protocol model for *n_cycles* duty cycles."""
    dep = uniform_square(
        config.n_sensors,
        seed=config.seed,
        side=config.side_m,
        comm_range=config.sensor_range_m,
    )
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(
        geo,
        sensor_range_m=config.sensor_range_m,
        max_group_size=config.max_group_size,
    )
    n = cluster.n_sensors
    # Routing from average traffic (>= 1 packet so every sensor has a path).
    planning = cluster.with_packets(np.ones(n, dtype=np.int64))
    routing = solve_min_max_load(planning)
    rotator = PathRotator(routing)
    ack_plan = plan_ack_collection(cluster, routing.routing_plan())
    ack_paths = {p[0]: p for p in ack_plan.paths}
    ack_packets = np.zeros(n, dtype=np.int64)
    for s in ack_paths:
        ack_packets[s] = 1
    ack_routing = RoutingPlan(
        cluster=cluster.with_packets(ack_packets), paths=ack_paths
    )

    bitrate = config.bitrate
    sizes = config.sizes
    ack_slot = config.timings.poll_slot_time(bitrate, sizes, sizes.ack_report)
    data_slot = config.timings.poll_slot_time(bitrate, sizes, sizes.data)
    overhead = (
        transmission_time(sizes.wakeup, bitrate)
        + config.timings.turnaround
        + transmission_time(sizes.sleep, bitrate)
    )

    # Fractional per-sensor packet accumulators (deterministic CBR).
    accrual = np.zeros(n)
    backlog = np.zeros(n, dtype=np.int64)
    per_cycle_packets = config.rate_bps * config.cycle_length / config.packet_bytes

    cycles: list[CycleRecord] = []
    now = 0.0
    loss: LossModel | None = (
        BernoulliLoss(config.loss_rate, seed=config.seed) if config.loss_rate else None
    )
    for c in range(config.n_cycles):
        # Packets generated since the previous wakeup (period may stretch).
        period = cycles[-1].period if cycles else config.cycle_length
        accrual += config.rate_bps * period / config.packet_bytes
        new_pkts = np.floor(accrual).astype(np.int64)
        accrual -= new_pkts
        backlog += new_pkts

        ack_result = OnlinePollingScheduler.poll(ack_routing, oracle, loss=loss)
        data_slots = 0
        total_packets = int(backlog.sum())
        if total_packets > 0:
            base_plan = rotator.next_cycle()
            paths = {
                s: base_plan.paths[s]
                for s in range(n)
                if backlog[s] > 0 and s in base_plan.paths
            }
            data_plan = RoutingPlan(
                cluster=cluster.with_packets(backlog.copy()), paths=paths
            )
            data_result = OnlinePollingScheduler.poll(data_plan, oracle, loss=loss)
            data_slots = data_result.slots_elapsed
            backlog[:] = 0  # all delivered (re-polling guarantees delivery)
        duty = overhead + ack_result.slots_elapsed * ack_slot + data_slots * data_slot
        cycles.append(
            CycleRecord(
                start=now,
                duty_time=duty,
                period=max(config.cycle_length, duty),
                ack_slots=ack_result.slots_elapsed,
                data_slots=data_slots,
                packets=total_packets,
            )
        )
        now += max(config.cycle_length, duty)

    # Saturated when duty cycles (post-warmup) keep exceeding the period.
    tail = cycles[config.warmup_cycles :] or cycles
    saturated = all(r.duty_time >= config.cycle_length for r in tail[-3:])
    return ActiveTimeResult(
        config=config,
        cycles=cycles,
        saturated=saturated,
        backlog_end=float(backlog.sum()),
    )
