"""Degradation accounting under dynamic networks (DESIGN.md §11).

Static-fault metrics (:mod:`.degradation`, :mod:`.availability`) answer
"who died and how fast did we route around them".  Under churn and mobility
the interesting quantities are different: how *old* was the plan each cycle
ran on, what did keeping it fresh cost (re-form announcements on the air,
re-forms themselves), and what fraction of the members that were actually
present ended up served.  :func:`staleness_report` derives all of it from
the MAC's existing bookkeeping (``route_history``, ``recluster_log``,
``cycle_stats``) and the injector's ground truth — pure post-processing,
no simulation-time hooks, so computing the report can never perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StalenessReport", "staleness_report"]


@dataclass(frozen=True)
class StalenessReport:
    """Plan staleness, re-cluster cost, and coverage under churn."""

    n_cycles: int
    reclusters: int
    """Re-form passes the head executed (`recluster_log` entries)."""
    recluster_reasons: dict[str, int] = field(default_factory=dict)
    """Re-forms by trigger reason ("membership" / "repairs" / ...)."""
    route_repairs: int = 0
    """Boundary route repairs (includes those folded into re-forms)."""
    mean_plan_age_cycles: float = 0.0
    """Average, over cycles, of how many cycles old the routing plan was
    when the cycle started (0 = planned at this boundary)."""
    max_plan_age_cycles: int = 0
    reform_announce_bytes: int = 0
    """Roster/schedule re-announcement bytes charged to wakeup broadcasts."""
    reform_airtime_s: float = 0.0
    """Air time those announcement bytes cost at the PHY bitrate."""
    joins_planned: int = 0
    """Joins the fault plan scheduled."""
    joins_powered: int = 0
    """Joiners whose radios actually came up during the run."""
    joins_admitted: int = 0
    """Joiners admitted into routing by a re-form (served from then on)."""
    leaves: int = 0
    """Announced departures executed."""
    mobility_epochs: int = 0
    drift_epochs: int = 0
    total_displacement_m: float = 0.0
    """Ground-truth distance all mobile nodes drifted, summed."""
    present_final: int = 0
    """Members physically present and alive at the end of the run."""
    served_final: int = 0
    """Present members with a live route (not unreachable/blacklisted)."""

    @property
    def coverage_final(self) -> float:
        """Served / present at the end of the run (1.0 when nobody is
        present — an empty cluster degrades to trivially full coverage)."""
        if self.present_final == 0:
            return 1.0
        return self.served_final / self.present_final


def staleness_report(mac, injector=None, cycle_length: float | None = None) -> StalenessReport:
    """Build the dynamic-network report from a finished run's state.

    *mac* is the :class:`~repro.mac.pollmac.PollingClusterMac`; *injector*
    (optional) supplies ground truth — true deaths, churn outcomes, mobility
    displacement.  *cycle_length* defaults to the MAC's.
    """
    cycle_length = float(cycle_length or mac.cycle_length)
    stats = mac.cycle_stats
    history = mac.route_history

    # Plan age per executed cycle: full cycles between the newest plan in
    # force at the cycle's start and the cycle itself.
    ages: list[int] = []
    for s in stats:
        plan_time = max(
            (t for t, _ in history if t <= s.started_at), default=0.0
        )
        ages.append(int(round((s.started_at - plan_time) / cycle_length)))
    reasons: dict[str, int] = {}
    announce_bytes = 0
    for entry in mac.recluster_log:
        reasons[entry["reason"]] = reasons.get(entry["reason"], 0) + 1
        announce_bytes += int(entry.get("roster_bytes", 0))
    bitrate = float(mac.phy.medium.bitrate)

    n = mac.phy.n_sensors
    dead_true = frozenset(injector.dead) if injector is not None else frozenset(mac.blacklisted)
    departed = set(mac.departed)
    if injector is not None:
        departed |= set(injector.departed)
    present = {
        i
        for i in range(n)
        if i not in mac.absent and i not in departed and i not in dead_true
    }
    served = {
        i
        for i in present
        if i not in mac.unreachable and i not in mac.blacklisted
    }

    joins_planned = joins_powered = 0
    leaves = 0
    mobility_epochs = drift_epochs = 0
    displacement = 0.0
    if injector is not None:
        joins_planned = len(injector.joined) + len(injector.pending_joiners)
        joins_powered = len(injector.joined)
        leaves = len(injector.departed)
        mobility_epochs = injector.mobility_epochs
        drift_epochs = injector.drift_epochs
        displacement = injector.total_displacement_m
    joins_admitted = sum(
        1
        for i in (injector.joined if injector is not None else ())
        if i not in mac.absent
    )

    return StalenessReport(
        n_cycles=len(stats),
        reclusters=mac.reclusters,
        recluster_reasons=reasons,
        route_repairs=mac.route_repairs,
        mean_plan_age_cycles=(sum(ages) / len(ages)) if ages else 0.0,
        max_plan_age_cycles=max(ages, default=0),
        reform_announce_bytes=announce_bytes,
        reform_airtime_s=announce_bytes * 8.0 / bitrate if bitrate > 0 else 0.0,
        joins_planned=joins_planned,
        joins_powered=joins_powered,
        joins_admitted=joins_admitted,
        leaves=leaves,
        mobility_epochs=mobility_epochs,
        drift_epochs=drift_epochs,
        total_displacement_m=displacement,
        present_final=len(present),
        served_final=len(served),
    )
