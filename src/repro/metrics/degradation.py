"""Graceful-degradation metrics for faulted runs.

When sensors die mid-run the paper's throughput/active-time metrics stop
telling the whole story: packets strand inside dead relays, survivors lose
their last route, and the head's blacklist may not match ground truth.
:func:`degradation_report` cross-references the MAC's recovery state with the
fault injector's ground truth (when one ran) into a single report the
evaluation benches and the fault-ablation experiment print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..mac.pollmac import PollingClusterMac

__all__ = [
    "DegradationReport",
    "degradation_report",
    "reconcile_dropped_demand",
]


def reconcile_dropped_demand(repair_log: list[dict]) -> dict[int, int]:
    """Per-sensor pending packets dropped by route repair, counted once.

    The MAC's ``repair_log`` records each repair's cut-off sensors; because
    pruning only grows, a sensor stranded before repair N is still stranded
    at repair N+1, and summing the raw per-repair dicts would bill the same
    pending packets to every later repair.  Attribution is therefore to the
    *first* repair that dropped the sensor — later entries (present in logs
    written before ``dropped_pending`` switched to newly-unreachable keys)
    never add to it.
    """
    merged: dict[int, int] = {}
    for entry in repair_log:
        for sensor, pending in entry.get("dropped_pending", {}).items():
            if sensor not in merged:
                merged[sensor] = pending
    return merged


@dataclass(frozen=True)
class DegradationReport:
    """How gracefully one run degraded under faults."""

    n_sensors: int
    delivered: int  # data packets that reached the head
    failed: int  # requests that exhausted their retry budget
    dead_true: frozenset[int]  # ground truth from the injector ({} if none ran)
    blacklisted: frozenset[int]  # the head's belief (declared dead)
    unreachable: frozenset[int]  # survivors the repair left without a route
    stranded_packets: int  # packets stuck inside dead nodes' buffers
    purged_packets: int  # dead-origin packets relays refused to carry
    route_repairs: int  # times the head re-solved routing mid-run
    undeliverable_pending: int = 0  # packets queued at unreachable survivors
    """Packets sitting at live-but-routeless sensors when the run ended —
    the demand route repair explicitly planned away (per-sensor detail in
    ``mac.repair_log``).  Together with ``stranded_packets`` this closes the
    conservation ledger: every generated packet is delivered, failed,
    stranded in a dead node, undeliverable at a cut-off survivor, or still
    queued awaiting its next polling opportunity."""

    @property
    def delivery_ratio(self) -> float:
        """Delivered / (delivered + retry-exhausted).  1.0 when nothing
        was eligible — an idle run did not *lose* anything."""
        eligible = self.delivered + self.failed
        if eligible == 0:
            return 1.0
        return self.delivered / eligible

    @property
    def surviving_coverage(self) -> float:
        """Fraction of sensors the head can still serve: alive (by both
        ground truth and the head's belief) and reachable."""
        if self.n_sensors == 0:
            return 1.0
        lost = self.dead_true | self.blacklisted | self.unreachable
        return 1.0 - len(lost) / self.n_sensors

    @property
    def false_positives(self) -> frozenset[int]:
        """Live sensors the head wrongly declared dead (the cost of the
        conservative suspect heuristic when evidence can't separate a dead
        relay from the live sensors routed behind it)."""
        return self.blacklisted - self.dead_true

    @property
    def missed_deaths(self) -> frozenset[int]:
        """Actually-dead sensors the head has not (yet) declared."""
        return self.dead_true - self.blacklisted


def degradation_report(
    mac: PollingClusterMac,
    injector: FaultInjector | None = None,
) -> DegradationReport:
    """Build the report from a finished run's MAC (and optional injector).

    Stranded packets are counted from the ground-truth dead nodes' buffers
    (own queue + relay buffer) — the data that physically cannot reach the
    head any more.  Without an injector the head's blacklist stands in for
    ground truth, so the metric degrades to "packets at blacklisted nodes".
    """
    dead_true = frozenset(injector.dead) if injector is not None else frozenset()
    counting_dead = dead_true if injector is not None else frozenset(mac.blacklisted)
    # Announced departures strand their buffers exactly like deaths; the
    # attribute check keeps pre-churn injectors (and stand-ins) working.
    counting_dead = counting_dead | frozenset(getattr(injector, "departed", ()) or ())
    counting_dead = counting_dead | frozenset(getattr(mac, "departed", ()) or ())
    stranded = 0
    purged = 0
    undeliverable = 0
    for agent in mac.sensors:
        purged += agent.packets_purged
        if agent.sensor in counting_dead:
            stranded += len(agent.own_queue) + len(agent.relay_buffer)
        elif agent.sensor in mac.unreachable:
            undeliverable += len(agent.own_queue) + len(agent.relay_buffer)
    return DegradationReport(
        n_sensors=mac.phy.n_sensors,
        delivered=mac.packets_delivered,
        failed=mac.packets_failed,
        dead_true=dead_true,
        blacklisted=frozenset(mac.blacklisted),
        unreachable=frozenset(mac.unreachable),
        stranded_packets=stranded,
        purged_packets=purged,
        route_repairs=mac.route_repairs,
        undeliverable_pending=undeliverable,
    )
