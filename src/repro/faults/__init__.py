"""Fault injection & recovery: node deaths, bursty links, ground-truth logs.

The paper's online polling algorithm is built to survive packet loss
(Sec. III-D re-polling); this package supplies the *faults* that exercise it
at every layer — declarative :class:`FaultPlan` descriptions, a
Gilbert–Elliott bursty-loss process pluggable into both the abstract
scheduler and the DES radio, and a :class:`FaultInjector` that executes a
plan against a live PHY.  Head-side recovery (retry budgets, dead-sensor
blacklisting, route repair) lives with the components it hardens:
:mod:`repro.core.online`, :mod:`repro.mac.pollmac`,
:mod:`repro.routing.repair`, and :mod:`repro.metrics.degradation`.
"""

from .gilbert import GilbertElliottLoss, LinkChainState
from .injector import FaultEvent, FaultInjector
from .plan import (
    BatteryDepletion,
    BurstyLinks,
    ChannelDrift,
    FaultPlan,
    Mobility,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    TransientStun,
)

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "TransientStun",
    "BatteryDepletion",
    "BurstyLinks",
    "NodeJoin",
    "NodeLeave",
    "Mobility",
    "ChannelDrift",
    "GilbertElliottLoss",
    "LinkChainState",
    "FaultInjector",
    "FaultEvent",
]
