"""Gilbert–Elliott bursty link loss.

The classic two-state Markov channel: a link is either GOOD or BAD; each
step it may flip state (``p_gb`` good→bad, ``p_bg`` bad→good) and each frame
is dropped i.i.d. at the current state's loss rate.  Unlike the repo's
:class:`~repro.core.online.BernoulliLoss`, losses are *correlated in time* —
a link that just dropped a frame is likely to drop the retransmission too,
which is exactly the regime that stresses re-polling and retry budgets.

One :class:`GilbertElliottLoss` instance serves both consumers:

* the abstract scheduler, through the :class:`~repro.core.online.LossModel`
  protocol (``fails(request, hop_index, slot)`` — the chain steps once per
  schedule slot);
* the DES PHY, through the :class:`~repro.radio.channel.RadioMedium`
  ``link_loss`` hook (``frame_fails(receiver, sender, now)`` — the chain
  steps once per elapsed coherence interval).

Each directed link owns an independent chain whose generator is derived from
``(seed, "faults", "link", rx, tx)`` on the dedicated fault stream, so the
order in which links are queried cannot leak randomness between them and
enabling the model never perturbs any other stream of a seeded run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.online import LossModel
from ..sim.rng import fault_rng

__all__ = ["GilbertElliottLoss", "LinkChainState"]

_GOOD, _BAD = 0, 1


@dataclass
class LinkChainState:
    """One directed link's chain: current state and step bookkeeping."""

    rng: np.random.Generator
    state: int = _GOOD
    steps_taken: int = 0
    last_time: float | None = None
    frames_seen: int = 0
    frames_lost: int = 0


class GilbertElliottLoss(LossModel):
    """Per-link two-state bursty loss (see module docstring).

    Parameters mirror :class:`repro.faults.plan.BurstyLinks`; ``seed`` is the
    base seed whose fault stream all link chains derive from.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.30,
        loss_good: float = 0.0,
        loss_bad: float = 0.6,
        coherence_s: float = 0.02,
        seed: int = 0,
    ):
        for name, v in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if coherence_s <= 0:
            raise ValueError(f"coherence must be > 0 s, got {coherence_s}")
        self.p_gb = float(p_good_to_bad)
        self.p_bg = float(p_bad_to_good)
        self.loss = (float(loss_good), float(loss_bad))
        self.coherence_s = float(coherence_s)
        self.seed = int(seed)
        self._chains: dict[tuple[int, int], LinkChainState] = {}

    def reparameterize(
        self,
        p_good_to_bad: float | None = None,
        p_bad_to_good: float | None = None,
        loss_good: float | None = None,
        loss_bad: float | None = None,
    ) -> None:
        """Swap chain parameters mid-run (slow channel drift, DESIGN.md §11).

        Per-link chain *state* (good/bad, step counters, RNG positions) is
        preserved — only the transition/loss probabilities change, so a link
        mid-burst stays mid-burst under the new fade depth.  Each chain's
        RNG is private and per-link, so a drift epoch cannot leak randomness
        into any other link or stream.
        """
        p_gb = self.p_gb if p_good_to_bad is None else float(p_good_to_bad)
        p_bg = self.p_bg if p_bad_to_good is None else float(p_bad_to_good)
        l_good = self.loss[0] if loss_good is None else float(loss_good)
        l_bad = self.loss[1] if loss_bad is None else float(loss_bad)
        for name, v in (
            ("p_good_to_bad", p_gb),
            ("p_bad_to_good", p_bg),
            ("loss_good", l_good),
            ("loss_bad", l_bad),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss = (l_good, l_bad)

    # -- chain mechanics ----------------------------------------------------------

    def _chain(self, receiver: int, sender: int) -> LinkChainState:
        key = (int(receiver), int(sender))
        chain = self._chains.get(key)
        if chain is None:
            chain = LinkChainState(rng=fault_rng(self.seed, "link", *key))
            self._chains[key] = chain
        return chain

    def _step(self, chain: LinkChainState, n_steps: int) -> None:
        for _ in range(n_steps):
            flip = self.p_gb if chain.state == _GOOD else self.p_bg
            if flip > 0.0 and chain.rng.random() < flip:
                chain.state = _BAD if chain.state == _GOOD else _GOOD
            chain.steps_taken += 1

    def _draw_loss(self, chain: LinkChainState) -> bool:
        chain.frames_seen += 1
        p = self.loss[chain.state]
        lost = p > 0.0 and bool(chain.rng.random() < p)
        if lost:
            chain.frames_lost += 1
        return lost

    # -- LossModel protocol (abstract scheduler) -------------------------------------

    def fails(self, request, hop_index: int, slot: int) -> bool:
        """Slot-driven use: advance the hop's link chain to *slot* and draw."""
        receiver = request.path[hop_index + 1]
        sender = request.path[hop_index]
        chain = self._chain(receiver, sender)
        # One chain step per elapsed schedule slot (monotone per link).
        target = max(slot, chain.steps_taken)
        self._step(chain, target - chain.steps_taken)
        return self._draw_loss(chain)

    # -- RadioMedium hook (DES decode path) ------------------------------------------

    def frame_fails(self, receiver: int, sender: int, now: float) -> bool:
        """Time-driven use: advance by elapsed coherence intervals and draw."""
        chain = self._chain(receiver, sender)
        if chain.last_time is None:
            chain.last_time = now
        elapsed = now - chain.last_time
        steps = int(elapsed / self.coherence_s)
        if steps > 0:
            self._step(chain, steps)
            chain.last_time += steps * self.coherence_s
        return self._draw_loss(chain)

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> dict[tuple[int, int], tuple[int, int]]:
        """Per-link ``(frames_seen, frames_lost)`` counters."""
        return {
            key: (c.frames_seen, c.frames_lost) for key, c in self._chains.items()
        }
