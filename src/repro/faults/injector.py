"""Binds a :class:`~repro.faults.plan.FaultPlan` to a running PHY stack.

The injector is the only component allowed to touch simulator state on the
plan's behalf: it schedules crash/stun events, samples energy meters for
battery deaths, installs the bursty-link process on the medium, executes
churn (join/leave) and mobility epochs, and re-parameterizes the channel
under drift.  It also keeps the ground-truth fault log that degradation
metrics compare the head's *inferred* blacklist against.

Everything here is deterministic given ``(plan, base_seed)``: fault times are
plan constants, battery checks run on a fixed sampling clock, and the only
randomness lives on dedicated streams — Gilbert–Elliott transitions on the
fault stream, per-node drift steps on the mobility stream — so a faulted run
is exactly repeatable, and an empty plan schedules nothing at all.

Dynamic-network event ordering (DESIGN.md §11): mobility and channel-drift
epochs fire at duty-cycle boundaries ``k * cycle_length``.  They are
scheduled at construction time, before the MAC schedules anything, so the
kernel's FIFO tie-break guarantees they execute *before* the head's wakeup
at the same timestamp — a cycle always runs against the geometry and channel
parameters in force at its start, and slot-level PHY inside the cycle stays
exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..mac.base import ClusterPhy
from ..sim.kernel import Simulator
from ..sim.rng import mobility_rng
from .gilbert import GilbertElliottLoss
from .plan import FaultPlan

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the ground-truth fault log."""

    time: float
    kind: str  # "crash" | "stun" | "recover" | "battery-death" | "join" | "leave"
    node: int


class FaultInjector:
    """Executes a fault plan against one cluster's PHY.

    Parameters
    ----------
    sim, phy:
        the simulator and the cluster PHY whose sensors the plan names
        (local sensor indices ``0..n-1``).
    plan:
        the declarative fault description.
    base_seed:
        seeds the fault RNG stream (bursty links) and the mobility stream;
        crash/stun/churn times come straight from the plan.
    cycle_length, n_cycles:
        the duty-cycle geometry — required only when the plan carries
        mobility or channel drift, whose epochs fire at cycle boundaries.
    joiner_ids:
        local sensor ids pre-allocated for the plan's joins, in plan order
        (the harness extends the deployment before building the PHY).
        Required when ``plan.joins`` is non-empty; the injector puts those
        radios to sleep at construction and wakes each at its join time.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: ClusterPhy,
        plan: FaultPlan,
        base_seed: int = 0,
        cycle_length: float | None = None,
        n_cycles: int | None = None,
        joiner_ids: list[int] | None = None,
    ):
        self.sim = sim
        self.phy = phy
        self.plan = plan
        self.base_seed = int(base_seed)
        self.dead: set[int] = set()
        self.stunned: set[int] = set()
        self.departed: set[int] = set()
        self.joined: set[int] = set()
        self.events: list[FaultEvent] = []
        self.link_loss: GilbertElliottLoss | None = None
        # The membership layer (the head MAC) binds itself here after
        # construction; join/leave events call ``notify_join``/``notify_leave``
        # on it.  Events only fire inside ``sim.run``, which starts after the
        # MAC exists, so late binding is safe.
        self.membership_listener = None
        self.mobility_epochs = 0
        self.drift_epochs = 0
        self.total_displacement_m = 0.0
        n = phy.n_sensors
        for fault in plan.crashes:
            if fault.node >= n:
                raise ValueError(f"crash names sensor {fault.node}, cluster has {n}")
            sim.at(fault.at, self._crash, fault.node, "crash")
        for fault in plan.stuns:
            if fault.node >= n:
                raise ValueError(f"stun names sensor {fault.node}, cluster has {n}")
            sim.at(fault.at, self._stun, fault.node, fault.duration)
        for fault in plan.batteries:
            if fault.node >= n:
                raise ValueError(
                    f"battery fault names sensor {fault.node}, cluster has {n}"
                )
            sim.at(
                fault.check_interval,
                self._check_battery,
                fault.node,
                fault.capacity_j,
                fault.check_interval,
            )
        # -- churn ------------------------------------------------------------
        self.pending_joiners: set[int] = set()
        if plan.joins:
            if joiner_ids is None or len(joiner_ids) != len(plan.joins):
                raise ValueError(
                    f"plan has {len(plan.joins)} joins; the harness must "
                    "pre-allocate exactly that many joiner slots (joiner_ids)"
                )
            for join, node in zip(plan.joins, joiner_ids):
                if not 0 <= node < n:
                    raise ValueError(f"joiner id {node} out of range for n={n}")
                self.pending_joiners.add(node)
                phy.trx(node).sleep()  # dark until its join time
                sim.at(join.at, self._join, node)
        for leave in plan.leaves:
            if leave.node >= n:
                raise ValueError(f"leave names sensor {leave.node}, cluster has {n}")
            sim.at(leave.at, self._leave, leave.node)
        # -- cycle-boundary epochs (mobility, channel drift) -------------------
        needs_cycles = plan.mobility is not None or plan.channel_drift is not None
        if needs_cycles and (cycle_length is None or n_cycles is None):
            raise ValueError(
                "mobility/channel-drift epochs fire at duty-cycle boundaries; "
                "pass cycle_length and n_cycles to the injector"
            )
        self.cycle_length = cycle_length
        self._mob_rngs: dict[int, np.random.Generator] = {}
        if plan.mobility is not None:
            mob = plan.mobility
            mobile = (
                tuple(range(n)) if mob.nodes is None else tuple(mob.nodes)
            )
            for node in mobile:
                if node >= n:
                    raise ValueError(
                        f"mobility names sensor {node}, cluster has {n}"
                    )
            self._mobile_nodes = mobile
            for node in mobile:
                self._mob_rngs[node] = mobility_rng(self.base_seed, node)
            if mob.bounds is not None:
                self._bounds = mob.bounds
            else:
                pos = phy.medium.positions
                self._bounds = (
                    float(pos[:, 0].min()),
                    float(pos[:, 0].max()),
                    float(pos[:, 1].min()),
                    float(pos[:, 1].max()),
                )
            for k in range(1, int(n_cycles)):
                sim.at(k * cycle_length, self._mobility_epoch)
        if plan.bursty_links is not None:
            ge = plan.bursty_links
            self.link_loss = GilbertElliottLoss(
                p_good_to_bad=ge.p_good_to_bad,
                p_bad_to_good=ge.p_bad_to_good,
                loss_good=ge.loss_good,
                loss_bad=ge.loss_bad,
                coherence_s=ge.coherence_s,
                seed=self.base_seed,
            )
            phy.medium.link_loss = self.link_loss
        if plan.channel_drift is not None:
            for k in range(1, int(n_cycles)):
                sim.at(k * cycle_length, self._drift_epoch)

    # -- fault executors ----------------------------------------------------------

    def _crash(self, node: int, kind: str) -> None:
        if node in self.dead or node in self.departed:
            return
        self.phy.trx(node).fail()
        self.dead.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind=kind, node=node))

    def _stun(self, node: int, duration: float) -> None:
        if node in self.dead or node in self.departed:
            return
        self.phy.trx(node).stun(duration)
        self.stunned.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind="stun", node=node))
        self.sim.schedule(duration, self._record_recovery, node)

    def _record_recovery(self, node: int) -> None:
        self.stunned.discard(node)
        if node not in self.dead and node not in self.departed:
            self.events.append(
                FaultEvent(time=self.sim.now, kind="recover", node=node)
            )

    def _check_battery(self, node: int, capacity_j: float, interval: float) -> None:
        if node in self.dead or node in self.departed:
            return
        meter = self.phy.trx(node).meter
        # Include the in-progress dwell so death can't lag a busy period.
        pending = meter.params.power(meter.state) * (self.sim.now - meter.last_change)
        if meter.consumed_j + pending >= capacity_j:
            self._crash(node, "battery-death")
            return
        self.sim.schedule(interval, self._check_battery, node, capacity_j, interval)

    # -- churn executors -----------------------------------------------------------

    def _join(self, node: int) -> None:
        if node in self.dead or node in self.departed:
            return
        self.pending_joiners.discard(node)
        self.phy.trx(node).wake()
        self.joined.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind="join", node=node))
        if self.membership_listener is not None:
            self.membership_listener.notify_join(node)

    def _leave(self, node: int) -> None:
        if node in self.dead or node in self.departed:
            return
        # Announced departure: physically identical to fail-stop (the radio
        # never speaks again), but the membership layer learns it directly
        # instead of burning detection cycles on inference.
        self.phy.trx(node).fail()
        self.departed.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind="leave", node=node))
        if self.membership_listener is not None:
            self.membership_listener.notify_leave(node)

    # -- cycle-boundary epochs -------------------------------------------------------

    @staticmethod
    def _reflect(v: float, lo: float, hi: float) -> float:
        """Reflect *v* back into [lo, hi] (bounded drift, no edge pile-up)."""
        span = hi - lo
        if span <= 0:
            return lo
        t = (v - lo) % (2.0 * span)
        return lo + (span - abs(t - span))

    def _mobility_epoch(self) -> None:
        """One bounded-drift step per mobile node, then refresh the medium.

        Runs at a duty-cycle boundary (scheduled before the MAC's events at
        the same timestamp), so no frame is in the air: the whole cycle that
        follows sees one consistent geometry.  Each node draws from its own
        mobility substream — skipping dead/departed/not-yet-joined nodes
        cannot perturb any other node's trajectory.
        """
        mob = self.plan.mobility
        step_max = mob.speed_mps * float(self.cycle_length)
        xmin, xmax, ymin, ymax = self._bounds
        positions = self.phy.medium.positions.copy()
        moved = False
        for node in self._mobile_nodes:
            if (
                node in self.dead
                or node in self.departed
                or node in self.pending_joiners
            ):
                continue
            rng = self._mob_rngs[node]
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            dist = float(rng.uniform(0.0, step_max))
            x = self._reflect(
                positions[node, 0] + dist * math.cos(angle), xmin, xmax
            )
            y = self._reflect(
                positions[node, 1] + dist * math.sin(angle), ymin, ymax
            )
            dx = x - positions[node, 0]
            dy = y - positions[node, 1]
            self.total_displacement_m += math.hypot(dx, dy)
            positions[node, 0] = x
            positions[node, 1] = y
            moved = True
        if moved:
            self.phy.medium.update_positions(positions)
        self.mobility_epochs += 1

    def _drift_epoch(self) -> None:
        """Re-parameterize the Gilbert–Elliott process for the next cycle."""
        drift = self.plan.channel_drift
        ge = self.plan.bursty_links
        s = math.sin(2.0 * math.pi * self.sim.now / drift.period_s + drift.phase)
        loss_bad = min(1.0, max(0.0, ge.loss_bad + drift.loss_bad_amplitude * s))
        p_gb = min(1.0, max(0.0, ge.p_good_to_bad + drift.p_gb_amplitude * s))
        self.link_loss.reparameterize(p_good_to_bad=p_gb, loss_bad=loss_bad)
        self.drift_epochs += 1

    # -- queries ------------------------------------------------------------------

    def is_dead(self, node: int) -> bool:
        return node in self.dead

    def death_times(self) -> dict[int, float]:
        """node -> time of permanent death (crash or battery)."""
        return {
            e.node: e.time
            for e in self.events
            if e.kind in ("crash", "battery-death")
        }

    def churn_times(self) -> dict[int, tuple[str, float]]:
        """node -> ("join" | "leave", time) for every churn event."""
        return {
            e.node: (e.kind, e.time)
            for e in self.events
            if e.kind in ("join", "leave")
        }
