"""Binds a :class:`~repro.faults.plan.FaultPlan` to a running PHY stack.

The injector is the only component allowed to touch simulator state on the
plan's behalf: it schedules crash/stun events, samples energy meters for
battery deaths, and installs the bursty-link process on the medium.  It also
keeps the ground-truth fault log that degradation metrics compare the head's
*inferred* blacklist against.

Everything here is deterministic given ``(plan, base_seed)``: fault times are
plan constants, battery checks run on a fixed sampling clock, and the only
randomness (Gilbert–Elliott transitions) lives on the dedicated fault RNG
stream — so a faulted run is exactly repeatable, and an empty plan schedules
nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mac.base import ClusterPhy
from ..sim.kernel import Simulator
from .gilbert import GilbertElliottLoss
from .plan import FaultPlan

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the ground-truth fault log."""

    time: float
    kind: str  # "crash" | "stun" | "recover" | "battery-death"
    node: int


class FaultInjector:
    """Executes a fault plan against one cluster's PHY.

    Parameters
    ----------
    sim, phy:
        the simulator and the cluster PHY whose sensors the plan names
        (local sensor indices ``0..n-1``).
    plan:
        the declarative fault description.
    base_seed:
        seeds the fault RNG stream (bursty links); crash/stun times come
        straight from the plan.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: ClusterPhy,
        plan: FaultPlan,
        base_seed: int = 0,
    ):
        self.sim = sim
        self.phy = phy
        self.plan = plan
        self.base_seed = int(base_seed)
        self.dead: set[int] = set()
        self.stunned: set[int] = set()
        self.events: list[FaultEvent] = []
        self.link_loss: GilbertElliottLoss | None = None
        n = phy.n_sensors
        for fault in plan.crashes:
            if fault.node >= n:
                raise ValueError(f"crash names sensor {fault.node}, cluster has {n}")
            sim.at(fault.at, self._crash, fault.node, "crash")
        for fault in plan.stuns:
            if fault.node >= n:
                raise ValueError(f"stun names sensor {fault.node}, cluster has {n}")
            sim.at(fault.at, self._stun, fault.node, fault.duration)
        for fault in plan.batteries:
            if fault.node >= n:
                raise ValueError(
                    f"battery fault names sensor {fault.node}, cluster has {n}"
                )
            sim.at(
                fault.check_interval,
                self._check_battery,
                fault.node,
                fault.capacity_j,
                fault.check_interval,
            )
        if plan.bursty_links is not None:
            ge = plan.bursty_links
            self.link_loss = GilbertElliottLoss(
                p_good_to_bad=ge.p_good_to_bad,
                p_bad_to_good=ge.p_bad_to_good,
                loss_good=ge.loss_good,
                loss_bad=ge.loss_bad,
                coherence_s=ge.coherence_s,
                seed=self.base_seed,
            )
            phy.medium.link_loss = self.link_loss

    # -- fault executors ----------------------------------------------------------

    def _crash(self, node: int, kind: str) -> None:
        if node in self.dead:
            return
        self.phy.trx(node).fail()
        self.dead.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind=kind, node=node))

    def _stun(self, node: int, duration: float) -> None:
        if node in self.dead:
            return
        self.phy.trx(node).stun(duration)
        self.stunned.add(node)
        self.events.append(FaultEvent(time=self.sim.now, kind="stun", node=node))
        self.sim.schedule(duration, self._record_recovery, node)

    def _record_recovery(self, node: int) -> None:
        self.stunned.discard(node)
        if node not in self.dead:
            self.events.append(
                FaultEvent(time=self.sim.now, kind="recover", node=node)
            )

    def _check_battery(self, node: int, capacity_j: float, interval: float) -> None:
        if node in self.dead:
            return
        meter = self.phy.trx(node).meter
        # Include the in-progress dwell so death can't lag a busy period.
        pending = meter.params.power(meter.state) * (self.sim.now - meter.last_change)
        if meter.consumed_j + pending >= capacity_j:
            self._crash(node, "battery-death")
            return
        self.sim.schedule(interval, self._check_battery, node, capacity_j, interval)

    # -- queries ------------------------------------------------------------------

    def is_dead(self, node: int) -> bool:
        return node in self.dead

    def death_times(self) -> dict[int, float]:
        """node -> time of permanent death (crash or battery)."""
        return {
            e.node: e.time
            for e in self.events
            if e.kind in ("crash", "battery-death")
        }
