"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is pure data — it names the faults a run should suffer
without touching any simulator state.  The :mod:`repro.faults.injector` binds
a plan to a live PHY stack; :mod:`repro.faults.gilbert` supplies the bursty
link-loss process a plan can request.  Keeping the description separate from
the mechanism lets experiments sweep plans declaratively and lets tests assert
that the *empty* plan leaves a run bit-for-bit untouched.

Fault taxonomy (cf. layered re-clustering under node death in LMEEC and
duty-cycle energy-depletion dynamics):

* :class:`NodeCrash` — fail-stop death of a basic sensor at a known time.
* :class:`TransientStun` — the node goes dark for a window and then recovers
  (brown-out, reboot, temporary obstruction).
* :class:`BatteryDepletion` — death driven by the *existing* energy model:
  the node dies the moment its :class:`~repro.radio.energy.EnergyMeter` has
  burned through the given capacity.
* :class:`BurstyLinks` — a Gilbert–Elliott loss process applied to every
  link, replacing the i.i.d. Bernoulli abstraction with correlated fades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.cluster import HEAD

__all__ = [
    "NodeCrash",
    "TransientStun",
    "BatteryDepletion",
    "BurstyLinks",
    "FaultPlan",
]


def _check_sensor(node: int) -> None:
    if node == HEAD:
        raise ValueError(
            "the cluster head cannot be faulted (the paper's heads are "
            "powerful, externally powered nodes; head failover is a "
            "different subsystem)"
        )
    if node < 0:
        raise ValueError(f"sensor id must be >= 0, got {node}")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop: sensor *node* dies at simulation time *at* and stays dead."""

    node: int
    at: float

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class TransientStun:
    """Sensor *node* goes dark at *at* for *duration* seconds, then recovers.

    While stunned the radio neither transmits nor receives (it looks exactly
    like a dead node to the head); at the end of the window it wakes into
    listening and resumes answering polls.
    """

    node: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.at < 0:
            raise ValueError(f"stun time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"stun duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class BatteryDepletion:
    """Sensor *node* dies once its energy meter has consumed *capacity_j*.

    The consumption comes from the existing per-state radio energy model, so
    chatty relays die first — the depletion dynamics the min-max-load routing
    exists to postpone.  ``check_interval`` is how often the injector samples
    the meter (a deterministic polling clock, not an event hook, so adding a
    battery fault cannot reorder unrelated simulator events).
    """

    node: int
    capacity_j: float
    check_interval: float = 0.25

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.capacity_j <= 0:
            raise ValueError(f"capacity must be > 0 J, got {self.capacity_j}")
        if self.check_interval <= 0:
            raise ValueError(
                f"check interval must be > 0 s, got {self.check_interval}"
            )


@dataclass(frozen=True)
class BurstyLinks:
    """Gilbert–Elliott bursty loss on every link (see :mod:`.gilbert`).

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-step transition
    probabilities of the two-state chain; each state drops frames i.i.d. at
    its own rate.  ``coherence_s`` is the real-time length of one chain step
    when the model is driven from the continuous-time PHY decode path
    (slot-driven users step the chain once per slot instead).
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.30
    loss_good: float = 0.0
    loss_bad: float = 0.6
    coherence_s: float = 0.02

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.loss_bad >= 1.0 and self.p_bad_to_good == 0.0:
            raise ValueError(
                "loss_bad=1 with p_bad_to_good=0 makes links fail forever"
            )
        if self.coherence_s <= 0:
            raise ValueError(f"coherence must be > 0 s, got {self.coherence_s}")


@dataclass(frozen=True)
class FaultPlan:
    """The full fault description of one run.

    An empty plan (the default) is the contract for backward compatibility:
    a simulation given ``FaultPlan()`` must produce results identical to one
    given no plan at all — no RNG draws, no extra events, nothing.
    """

    crashes: tuple[NodeCrash, ...] = ()
    stuns: tuple[TransientStun, ...] = ()
    batteries: tuple[BatteryDepletion, ...] = ()
    bursty_links: BurstyLinks | None = None

    def __post_init__(self) -> None:
        # Accept lists for ergonomic literals; normalize to tuples.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stuns", tuple(self.stuns))
        object.__setattr__(self, "batteries", tuple(self.batteries))
        crashed = [c.node for c in self.crashes]
        if len(set(crashed)) != len(crashed):
            raise ValueError(f"duplicate crash entries for nodes {crashed}")

    @property
    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.stuns
            and not self.batteries
            and self.bursty_links is None
        )

    def faulted_nodes(self) -> set[int]:
        """Every sensor the plan can possibly kill or stun."""
        return (
            {c.node for c in self.crashes}
            | {s.node for s in self.stuns}
            | {b.node for b in self.batteries}
        )
