"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is pure data — it names the faults a run should suffer
without touching any simulator state.  The :mod:`repro.faults.injector` binds
a plan to a live PHY stack; :mod:`repro.faults.gilbert` supplies the bursty
link-loss process a plan can request.  Keeping the description separate from
the mechanism lets experiments sweep plans declaratively and lets tests assert
that the *empty* plan leaves a run bit-for-bit untouched.

Fault taxonomy (cf. layered re-clustering under node death in LMEEC and
duty-cycle energy-depletion dynamics):

* :class:`NodeCrash` — fail-stop death of a basic sensor at a known time.
* :class:`TransientStun` — the node goes dark for a window and then recovers
  (brown-out, reboot, temporary obstruction).
* :class:`BatteryDepletion` — death driven by the *existing* energy model:
  the node dies the moment its :class:`~repro.radio.energy.EnergyMeter` has
  burned through the given capacity.
* :class:`BurstyLinks` — a Gilbert–Elliott loss process applied to every
  link, replacing the i.i.d. Bernoulli abstraction with correlated fades.

Dynamic-network events (DESIGN.md §11) extend the same taxonomy — the graph
itself changes, not just its health:

* :class:`NodeLeave` — an *announced* departure (battery swap, maintenance
  pull): the radio goes dark like a crash, but the membership layer is told,
  so no detection cycles are burned inferring it.
* :class:`NodeJoin` — a new sensor powers up at a position at a time; it is
  admitted into routing at the next re-cluster pass.
* :class:`Mobility` — bounded random drift applied to node positions at
  duty-cycle boundaries (slot-level PHY stays exact within a cycle).
* :class:`ChannelDrift` — slow deterministic modulation of the Gilbert–
  Elliott parameters mid-run (diurnal fading, weather), requires
  ``bursty_links`` to be armed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.cluster import HEAD

__all__ = [
    "NodeCrash",
    "TransientStun",
    "BatteryDepletion",
    "BurstyLinks",
    "NodeJoin",
    "NodeLeave",
    "Mobility",
    "ChannelDrift",
    "FaultPlan",
]


def _check_sensor(node: int) -> None:
    if node == HEAD:
        raise ValueError(
            "the cluster head cannot be faulted (the paper's heads are "
            "powerful, externally powered nodes; head failover is a "
            "different subsystem)"
        )
    if node < 0:
        raise ValueError(f"sensor id must be >= 0, got {node}")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop: sensor *node* dies at simulation time *at* and stays dead."""

    node: int
    at: float

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.at < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class TransientStun:
    """Sensor *node* goes dark at *at* for *duration* seconds, then recovers.

    While stunned the radio neither transmits nor receives (it looks exactly
    like a dead node to the head); at the end of the window it wakes into
    listening and resumes answering polls.
    """

    node: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.at < 0:
            raise ValueError(f"stun time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"stun duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class BatteryDepletion:
    """Sensor *node* dies once its energy meter has consumed *capacity_j*.

    The consumption comes from the existing per-state radio energy model, so
    chatty relays die first — the depletion dynamics the min-max-load routing
    exists to postpone.  ``check_interval`` is how often the injector samples
    the meter (a deterministic polling clock, not an event hook, so adding a
    battery fault cannot reorder unrelated simulator events).
    """

    node: int
    capacity_j: float
    check_interval: float = 0.25

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.capacity_j <= 0:
            raise ValueError(f"capacity must be > 0 J, got {self.capacity_j}")
        if self.check_interval <= 0:
            raise ValueError(
                f"check interval must be > 0 s, got {self.check_interval}"
            )


@dataclass(frozen=True)
class BurstyLinks:
    """Gilbert–Elliott bursty loss on every link (see :mod:`.gilbert`).

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-step transition
    probabilities of the two-state chain; each state drops frames i.i.d. at
    its own rate.  ``coherence_s`` is the real-time length of one chain step
    when the model is driven from the continuous-time PHY decode path
    (slot-driven users step the chain once per slot instead).
    """

    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.30
    loss_good: float = 0.0
    loss_bad: float = 0.6
    coherence_s: float = 0.02

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.loss_bad >= 1.0 and self.p_bad_to_good == 0.0:
            raise ValueError(
                "loss_bad=1 with p_bad_to_good=0 makes links fail forever"
            )
        if self.coherence_s <= 0:
            raise ValueError(f"coherence must be > 0 s, got {self.coherence_s}")


@dataclass(frozen=True)
class NodeJoin:
    """A new sensor powers up at *position* at time *at*.

    Joins are named up front (the plan is pure data), so the harness can
    pre-allocate the joiner's PHY slot at construction; its sensor id is
    assigned in plan order after the existing sensors (the i-th join of a
    run with n deployed sensors becomes sensor ``n + i``).  The radio stays
    asleep and the sensor is excluded from all planning until *at*; a
    re-cluster pass after the join admits it into routing.
    """

    at: float
    position: tuple[float, float]

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"join time must be >= 0, got {self.at}")
        pos = tuple(float(c) for c in self.position)
        if len(pos) != 2:
            raise ValueError(f"position must be (x, y), got {self.position!r}")
        object.__setattr__(self, "position", pos)


@dataclass(frozen=True)
class NodeLeave:
    """Sensor *node* departs (announced) at time *at* and never returns.

    Unlike :class:`NodeCrash`, the departure is *known* to the membership
    layer the moment it happens — the head does not spend detection cycles
    inferring it — but physically the radio goes just as dark (fail-stop).
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        _check_sensor(self.node)
        if self.at < 0:
            raise ValueError(f"leave time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class Mobility:
    """Bounded random drift of node positions at duty-cycle boundaries.

    Each mobile node takes one independent step per cycle: a uniformly
    random direction and a uniform distance in ``[0, speed_mps * cycle]``,
    reflected back into the bounding box.  Draws come from the dedicated
    ``mobility`` RNG stream, sub-split per node, so enabling mobility can
    never perturb the fault stream (or any other stream) of a seeded run.

    ``nodes=None`` moves every basic sensor (the head is the powerful,
    mains-backed tier-2 node — it stays put).  ``bounds`` is the
    ``(xmin, xmax, ymin, ymax)`` box positions are kept inside; ``None``
    derives it from the initial deployment's bounding box.
    """

    speed_mps: float
    nodes: tuple[int, ...] | None = None
    bounds: tuple[float, float, float, float] | None = None

    def __post_init__(self) -> None:
        if self.speed_mps <= 0:
            raise ValueError(f"speed must be > 0 m/s, got {self.speed_mps}")
        if self.nodes is not None:
            nodes = tuple(int(n) for n in self.nodes)
            for n in nodes:
                _check_sensor(n)
            object.__setattr__(self, "nodes", nodes)
        if self.bounds is not None:
            b = tuple(float(v) for v in self.bounds)
            if len(b) != 4 or b[0] >= b[1] or b[2] >= b[3]:
                raise ValueError(
                    f"bounds must be (xmin, xmax, ymin, ymax) with min < max, "
                    f"got {self.bounds!r}"
                )
            object.__setattr__(self, "bounds", b)


@dataclass(frozen=True)
class ChannelDrift:
    """Slow sinusoidal modulation of the Gilbert–Elliott parameters.

    At every duty-cycle boundary the injector re-parameterizes the armed
    :class:`BurstyLinks` process around its base values::

        loss_bad(t) = clip(base + loss_bad_amplitude * sin(2*pi*t/period_s + phase), 0, 1)
        p_gb(t)     = clip(base + p_gb_amplitude    * sin(2*pi*t/period_s + phase), 0, 1)

    Deterministic by construction (no RNG draws), so a drifting channel
    perturbs nothing but the loss parameters themselves.  Requires
    ``bursty_links`` on the same plan — drift without a loss process has
    nothing to modulate.
    """

    period_s: float
    loss_bad_amplitude: float = 0.3
    p_gb_amplitude: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"drift period must be > 0 s, got {self.period_s}")
        for name in ("loss_bad_amplitude", "p_gb_amplitude"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")


@dataclass(frozen=True)
class FaultPlan:
    """The full fault description of one run.

    An empty plan (the default) is the contract for backward compatibility:
    a simulation given ``FaultPlan()`` must produce results identical to one
    given no plan at all — no RNG draws, no extra events, nothing.  The
    dynamic-network fields (joins/leaves/mobility/channel drift) honor the
    same contract: leaving them at their defaults adds zero events.
    """

    crashes: tuple[NodeCrash, ...] = ()
    stuns: tuple[TransientStun, ...] = ()
    batteries: tuple[BatteryDepletion, ...] = ()
    bursty_links: BurstyLinks | None = None
    joins: tuple[NodeJoin, ...] = ()
    leaves: tuple[NodeLeave, ...] = ()
    mobility: Mobility | None = None
    channel_drift: ChannelDrift | None = None

    def __post_init__(self) -> None:
        # Accept lists for ergonomic literals; normalize to tuples.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stuns", tuple(self.stuns))
        object.__setattr__(self, "batteries", tuple(self.batteries))
        object.__setattr__(self, "joins", tuple(self.joins))
        object.__setattr__(self, "leaves", tuple(self.leaves))
        crashed = [c.node for c in self.crashes]
        if len(set(crashed)) != len(crashed):
            raise ValueError(f"duplicate crash entries for nodes {crashed}")
        left = [l.node for l in self.leaves]
        if len(set(left)) != len(left):
            raise ValueError(f"duplicate leave entries for nodes {left}")
        if self.channel_drift is not None and self.bursty_links is None:
            raise ValueError(
                "channel_drift modulates the Gilbert-Elliott process; the "
                "plan must also arm bursty_links"
            )

    @property
    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.stuns
            and not self.batteries
            and self.bursty_links is None
            and not self.joins
            and not self.leaves
            and self.mobility is None
            and self.channel_drift is None
        )

    @property
    def is_dynamic(self) -> bool:
        """Does the plan change the network graph itself (churn/mobility)?"""
        return bool(self.joins or self.leaves or self.mobility is not None)

    def faulted_nodes(self) -> set[int]:
        """Every sensor the plan can possibly kill, stun, or remove."""
        return (
            {c.node for c in self.crashes}
            | {s.node for s in self.stuns}
            | {b.node for b in self.batteries}
            | {l.node for l in self.leaves}
        )
