"""Multi-cluster polling on one shared medium (Sec. V-G, executed).

Several cluster heads and their Voronoi-formed clusters share one physical
radio space.  Without coordination, boundary sensors of adjacent clusters
collide whenever their heads poll simultaneously — and the heads' own
high-power poll broadcasts jam each other across cluster borders.  The
paper offers two remedies, both runnable here:

* ``mode="uncoordinated"`` — everyone on one channel, cycles aligned: the
  failure case (inter-cluster collisions eat packets);
* ``mode="token"`` — one channel, but duty cycles staggered into windows
  (the head-to-head token of Sec. V-G; the second-layer token passing
  itself is out of band);
* ``mode="channels"`` — adjacent clusters on different radio channels via
  the <= 6-coloring; everyone polls concurrently.

All three run the full per-cluster polling MAC; the shared
:class:`~repro.radio.channel.RadioMedium` decides what actually decodes.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from .. import obs as _obs
from .. import validate as _validate
from ..core.online import OnlinePollingScheduler
from ..mac.base import (
    GROUND_SENSOR_PROPAGATION,
    ClusterPhy,
    MacTimings,
    sensor_power_for_range,
)
from ..mac.pollmac import PollingClusterMac, PollingSensorAgent, phy_truth_oracle
from ..radio.channel import RadioMedium
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES
from ..radio.transceiver import Transceiver
from ..routing.warmcache import SolverCache
from ..faults.injector import FaultInjector
from ..sim.kernel import Simulator
from ..sim.rng import RngStreams, mobility_rng
from ..sim.trace import Tracer
from ..topology.cluster import HEAD, Cluster
from ..topology.forming import FormedNetwork, form_clusters
from ..topology.handoff import (
    FieldReformPlan,
    FieldStalenessTracker,
    plan_field_reform,
    serving_staleness,
)
from ..topology.recluster import StalenessTrigger, assignment_staleness
from .cluster_sim import cluster_from_phy
from .coloring import six_color_planar
from ..topology.forming import cluster_adjacency
from ..traffic.cbr import CbrSource, attach_cbr_sources

__all__ = [
    "MultiClusterConfig",
    "MultiClusterResult",
    "AdoptionEvent",
    "FieldHandoffEvent",
    "HeadFailoverCoordinator",
    "FieldReformCoordinator",
    "run_multicluster_simulation",
]


@dataclass(frozen=True)
class MultiClusterConfig:
    n_sensors: int = 60
    n_heads: int = 3
    field_m: float = 360.0
    sensor_range_m: float = 55.0
    rate_bps: float = 20.0
    cycle_length: float = 6.0
    n_cycles: int = 5
    seed: int = 0
    mode: str = "channels"  # "channels" | "token" | "uncoordinated"
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    energy: EnergyParams = EnergyParams()
    # Head survivability.  All defaults off = the exact pre-failover code
    # path, bit for bit: no coordinator object, no scheduled events, no RNG
    # draws.  ``head_crashes`` injects fail-stop head crashes as (head,
    # time) pairs; ``head_failover`` arms the inter-cluster beacon watchdog
    # that detects them and hands the orphaned sensors to the nearest
    # surviving head (crashes without failover = the baseline where the
    # whole cluster simply goes dark).
    head_failover: bool = False
    head_crashes: tuple[tuple[int, float], ...] = ()
    beacon_interval: float = 1.0
    beacon_miss_limit: int = 3
    # Field-level mobility (DESIGN.md §11): every sensor drifts a bounded
    # random step at each duty-cycle boundary (speed * cycle_length max,
    # reflected into the field).  0 (the default) schedules nothing and
    # draws no RNG — the exact static code path, bit for bit.  The Voronoi
    # forming is *not* recomputed mid-run; ``final_assignment_staleness``
    # on the result quantifies how far the deploy-time forming drifted.
    mobility_speed_mps: float = 0.0
    # Telemetry (repro.obs): False is the exact untraced path, bit for bit
    # (an ambient obs.use(...) scope still traces); True attaches a
    # run-local collector to ``MultiClusterResult.telemetry``.
    telemetry: bool = False
    # Slot engine request (DESIGN.md §12).  Multi-cluster PHYs share one
    # medium through ``index_map``, which the batch engine's eligibility
    # gate rejects, so "vector" currently runs scalar slots here — the knob
    # exists so the config surface matches PollingSimConfig and single-
    # cluster fast paths engage automatically if that gate ever loosens.
    engine: str = "vector"
    # Field-level re-forming (DESIGN.md §13).  "off" (the default) arms
    # nothing: no coordinator, no scheduled events, no extra computation —
    # the exact pre-handoff code path, bit for bit, per-radio energy floats
    # included.  "staleness" re-runs the Voronoi forming over *live*
    # positions whenever the field-scope staleness trigger fires and hands
    # a bounded batch of sensors to their nearest live head; "periodic"
    # re-forms on a fixed cycle cadence regardless of drift.
    handoff: str = "off"  # "off" | "staleness" | "periodic"
    handoff_trigger: "StalenessTrigger | None" = None
    handoff_max_moves: int = 8  # handoffs per boundary (backlog defers)
    handoff_head_step_m: float = 0.0  # quantization placement step budget
    # The prepare->commit lead: moves are planned and radios retuned this
    # long before the boundary (inside the field-wide sleep tail), then
    # committed exactly at the boundary.  The window is the protocol's
    # crash-safety surface — a head dying inside it aborts its moves.
    handoff_commit_lead: float = 0.25
    # Per-cluster MAC passthroughs (all defaults = the exact current MAC
    # arguments, bit for bit): the PR 4 liveness machinery and PR 7 warm
    # solver cache, so handoff runs can exercise blacklist carryover and
    # backup-bundle rebuilds end to end.
    failure_detection: bool = False
    dead_after_misses: int = 2
    backup_k: int = 0
    use_solver_cache: bool = False


@dataclass(frozen=True)
class AdoptionEvent:
    """One head takeover: who died, who adopted, and which sensors moved."""

    time: float  # when the watchdog declared the head dead (detection time)
    dead_head: int
    adopter: int
    sensors: tuple[int, ...]  # global sensor ids that changed cluster


@dataclass(frozen=True)
class FieldHandoffEvent:
    """One cross-cluster sensor handoff attempt and how it ended.

    ``state`` is the protocol outcome: ``"committed"`` (the sensor now
    belongs to ``dst``), ``"aborted-src-dead"`` / ``"aborted-dst-dead"``
    (a head died inside the prepare->commit window; the radio was retuned
    back and, for a dead source, the sensor left to the failover adoption
    path), ``"deferred-busy"`` (an endpoint head was mid-cycle at prepare
    time — token-mode overrun — so the move waits for a later boundary),
    ``"deferred-src-empty"`` (the move would have emptied its source
    cluster's roster), ``"deferred-unreachable"`` (the sensor still has
    service at its source but no radio link into the destination roster)
    or ``"deferred-bridge"`` (the sensor is a cut vertex of its source
    cluster's hearing graph — removing it would strand covered members).
    """

    time: float
    sensor: int  # global sensor id
    src: int
    dst: int
    state: str


@dataclass
class MultiClusterResult:
    config: MultiClusterConfig
    net: FormedNetwork
    macs: list[PollingClusterMac]
    channels: np.ndarray
    elapsed: float
    packets_generated: int
    collisions: int
    coordinator: "HeadFailoverCoordinator | None" = None
    """Present only when head crashes or failover were armed; carries the
    crash/detection/adoption timeline for availability analysis."""
    mobility_epochs: int = 0
    """Cycle-boundary drift steps executed (0 for static runs)."""
    final_assignment_staleness: float = 0.0
    """Fraction of sensors whose nearest head at the end of the run differs
    from the assignment in force — the deploy-time Voronoi forming, or the
    handoff coordinator's live serving map when field re-forming is armed
    (0.0 for static runs)."""
    telemetry: "_obs.Telemetry | None" = None
    """The run's telemetry collector (``config.telemetry=True`` or an
    ambient ``obs.use(...)`` scope); ``None`` for untraced runs."""
    field_coordinator: "FieldReformCoordinator | None" = None
    """Present only when ``config.handoff != "off"``; carries the re-form/
    handoff timeline and the live serving map."""
    staleness_trajectory: tuple[float, ...] = ()
    """Assignment staleness sampled at every mobility epoch (duty-cycle
    boundary), not just at sim end — empty for static runs."""
    field_coverage: float = 1.0
    """Ground-truth fraction of sensors a live head can actually still
    reach at sim end (in-roster hearing with a finite hop path, exclusions
    removed) — the quantity handoff exists to defend under mobility."""

    @property
    def packets_delivered(self) -> int:
        return sum(mac.packets_delivered for mac in self.macs)

    @property
    def packets_failed(self) -> int:
        return sum(mac.packets_failed for mac in self.macs)

    @property
    def delivery_ratio(self) -> float:
        eligible = self.packets_delivered + self.packets_failed
        if eligible == 0:
            return 1.0
        return self.packets_delivered / eligible

    def per_cluster_delivery(self) -> list[tuple[int, int]]:
        return [(mac.cluster_id, mac.packets_delivered) for mac in self.macs]

    @property
    def handoff_events(self) -> list["FieldHandoffEvent"]:
        if self.field_coordinator is None:
            return []
        return list(self.field_coordinator.events)

    @property
    def field_reforms(self) -> int:
        return 0 if self.field_coordinator is None else self.field_coordinator.reforms

    @property
    def field_handoffs(self) -> int:
        """Committed cross-cluster sensor moves over the whole run."""
        if self.field_coordinator is None:
            return 0
        return self.field_coordinator.handoffs


def _head_layout(k: int, field: float, rng) -> np.ndarray:
    """Spread heads over the field deterministically (jittered grid)."""
    cols = int(np.ceil(np.sqrt(k)))
    rows = int(np.ceil(k / cols))
    xs = (np.arange(cols) + 0.5) * field / cols
    ys = (np.arange(rows) + 0.5) * field / rows
    pts = [(x, y) for y in ys for x in xs][:k]
    jitter = rng.uniform(-0.05 * field, 0.05 * field, size=(k, 2))
    return np.asarray(pts) + jitter


class _FieldMobility:
    """Bounded drift of every sensor over the shared field (DESIGN.md §11).

    The multi-cluster analogue of the per-cluster mobility fault: one step
    per sensor per duty-cycle boundary, each node on its own substream of
    the dedicated mobility RNG stream, positions reflected into the field.
    Epochs are scheduled at construction — before any MAC exists — so the
    kernel's FIFO tie-break runs them ahead of the heads' wakeups at the
    same timestamp and every cycle sees one consistent geometry.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: RadioMedium,
        n_sensors: int,
        speed_mps: float,
        cycle_length: float,
        n_cycles: int,
        field_m: float,
        base_seed: int,
    ):
        self.sim = sim
        self.medium = medium
        self.n_sensors = n_sensors
        self.step_max = speed_mps * cycle_length
        self.field = field_m
        self._rngs = [mobility_rng(base_seed, i) for i in range(n_sensors)]
        self.epochs = 0
        # Per-duty-cycle assignment staleness (satellite of DESIGN.md §13):
        # the probe is pure computation over the fresh positions — no RNG,
        # no events — so sampling it every epoch leaves mobility-only runs
        # bit-for-bit unchanged.  ``_run_multicluster`` wires it to either
        # the deploy-time assignment or the handoff coordinator's live
        # serving map.
        self.staleness_probe = None  # set after construction
        self.staleness_trajectory: list[float] = []
        for k in range(1, int(n_cycles)):
            sim.at(k * cycle_length, self._epoch)

    def _epoch(self) -> None:
        reflect = FaultInjector._reflect
        positions = self.medium.positions.copy()
        for i in range(self.n_sensors):
            rng = self._rngs[i]
            angle = float(rng.uniform(0.0, 2.0 * np.pi))
            dist = float(rng.uniform(0.0, self.step_max))
            positions[i, 0] = reflect(
                positions[i, 0] + dist * np.cos(angle), 0.0, self.field
            )
            positions[i, 1] = reflect(
                positions[i, 1] + dist * np.sin(angle), 0.0, self.field
            )
        self.medium.update_positions(positions)
        self.epochs += 1
        if self.staleness_probe is not None:
            value = float(self.staleness_probe())
            self.staleness_trajectory.append(value)
            tel = _obs.current()
            if tel.enabled:
                tel.metrics.gauge("field.assignment_staleness").set(value)
                tel.metrics.histogram(
                    "field.assignment_staleness.trajectory"
                ).observe(value)


class HeadFailoverCoordinator:
    """Second-layer survivability: detect dead heads, re-home their sensors.

    Cluster heads exchange periodic inter-cluster beacons (modeled out of
    band, like the Sec. V-G token passing itself — heads are wired/
    high-power nodes whose coordination traffic does not contend with the
    sensor channel).  A head that misses ``beacon_miss_limit`` consecutive
    beacons is declared dead by its peers; its orphaned sensors are then
    **adopted** by the nearest surviving head: their radios move to the
    adopter's channel, fresh sensor agents re-bind the existing
    transceivers into the adopter's cluster, queued application packets
    carry over, and the adopter merges the new demand into its routing via
    the standard boundary repair (blacklists preserved, out-of-reach
    orphans planned at zero — the partial-coverage contract).

    Crashes themselves are injected via ``config.head_crashes`` whether or
    not failover is armed, so the no-failover baseline (cluster goes dark,
    data stops) and the takeover run are directly comparable.
    """

    def __init__(
        self,
        sim: Simulator,
        config: MultiClusterConfig,
        net: FormedNetwork,
        medium: RadioMedium,
        macs: list[PollingClusterMac],
        channels: np.ndarray,
        sensor_positions: np.ndarray,
        head_positions: np.ndarray,
        source_by_global: dict[int, CbrSource],
    ):
        self.sim = sim
        self.config = config
        self.net = net
        self.medium = medium
        self.macs = macs
        self.channels = channels
        self.sensor_positions = sensor_positions
        self.head_positions = head_positions
        self.source_by_global = source_by_global
        self.crashed: list[tuple[int, float]] = []  # ground truth (head, time)
        self.adoption_events: list[AdoptionEvent] = []
        self._missed_beacons = {h: 0 for h in range(config.n_heads)}
        self._declared: set[int] = set()  # heads the watchdog already handled

    def arm(self) -> None:
        for h, t in self.config.head_crashes:
            self.sim.at(float(t), self.crash_head, int(h))
        if self.config.head_failover:
            self.sim.schedule(self.config.beacon_interval, self._beacon_tick)

    # -- fault injection ---------------------------------------------------------

    def crash_head(self, h: int) -> None:
        """Fail-stop crash of head *h*: radio dark, duty cycle killed."""
        mac = self.macs[h]
        if mac.halted:
            return
        self.crashed.append((h, self.sim.now))
        mac.halt()
        _obs.current().timeline_event(self.sim.now, "head-crash", head=h)

    # -- detection ---------------------------------------------------------------

    def _beacon_tick(self) -> None:
        """One beacon round: live heads beacon, peers count the silent ones."""
        for h, mac in enumerate(self.macs):
            if mac.halted:
                self._missed_beacons[h] += 1
            else:
                self._missed_beacons[h] = 0
        for h in range(self.config.n_heads):
            if h in self._declared:
                continue
            if self._missed_beacons[h] >= self.config.beacon_miss_limit:
                self._declared.add(h)
                self._declare_dead(h)
        self.sim.schedule(self.config.beacon_interval, self._beacon_tick)

    # -- takeover ----------------------------------------------------------------

    def _declare_dead(self, dead_head: int) -> None:
        dead_phy = self.macs[dead_head].phy
        assert dead_phy.index_map is not None
        orphans = [int(g) for g in dead_phy.index_map[:-1]]
        live = [
            a
            for a in range(self.config.n_heads)
            if a != dead_head and not self.macs[a].halted
        ]
        _obs.current().timeline_event(
            self.sim.now,
            "head-declared-dead",
            head=dead_head,
            orphans=len(orphans),
        )
        if not orphans or not live:
            return  # nothing to re-home / nobody left to take them
        groups: dict[int, list[int]] = {}
        for g in orphans:
            deltas = self.head_positions[live] - self.sensor_positions[g]
            adopter = live[int(np.argmin((deltas**2).sum(axis=1)))]
            groups.setdefault(adopter, []).append(g)
        for adopter in sorted(groups):
            self._adopt(adopter, groups[adopter], dead_head)

    def _adopt(self, adopter: int, orphan_globals: list[int], dead_head: int) -> None:
        mac = self.macs[adopter]
        old_phy = mac.phy
        dead_phy = self.macs[dead_head].phy
        assert old_phy.index_map is not None and dead_phy.index_map is not None
        old_sensor_globals = list(old_phy.index_map[:-1])
        head_global = old_phy.index_map[-1]
        dead_local = {g: i for i, g in enumerate(dead_phy.index_map[:-1])}
        # 1. Orphan radios retune to the adopter's channel *before* the
        #    in-cluster connectivity rediscovery below sees them.
        for g in orphan_globals:
            self.medium.set_channel(g, int(self.channels[adopter]))
        # 2. Extend the adopter's PHY: existing members keep their local
        #    ids (and transceivers), orphans append, head stays last.
        new_index_map = old_sensor_globals + orphan_globals + [head_global]
        transceivers = (
            list(old_phy.transceivers[:-1])
            + [dead_phy.transceivers[dead_local[g]] for g in orphan_globals]
            + [old_phy.transceivers[-1]]
        )
        old_cluster = old_phy.cluster
        dead_cluster = dead_phy.cluster
        n_new = len(new_index_map) - 1
        packets = np.concatenate(
            [
                old_cluster.packets,
                [dead_cluster.packets[dead_local[g]] for g in orphan_globals],
            ]
        ).astype(np.int64)
        energy = np.concatenate(
            [
                old_cluster.energy,
                [dead_cluster.energy[dead_local[g]] for g in orphan_globals],
            ]
        )
        base = Cluster(
            hears=np.zeros((n_new, n_new), dtype=bool),  # rediscovered below
            head_hears=np.zeros(n_new, dtype=bool),
            packets=packets,
            energy=energy,
            positions=self.sensor_positions[new_index_map[:-1]].copy(),
            head_position=self.head_positions[adopter].copy(),
        )
        new_phy = ClusterPhy(
            sim=self.sim,
            cluster=base,
            medium=self.medium,
            transceivers=transceivers,
            tracer=old_phy.tracer,
            index_map=new_index_map,
        )
        new_phy.cluster = _discover_local_cluster(new_phy)
        # 3. Fresh agents for the orphans' new local ids.  Constructing one
        #    re-binds the orphan radio's receive callback — that *is* the
        #    takeover: the dead cluster's agent never hears anything again.
        dead_agents = {
            dead_phy.index_map[a.sensor]: a for a in self.macs[dead_head].sensors
        }
        new_agents: list[PollingSensorAgent] = []
        for local, g in enumerate(orphan_globals, start=len(old_sensor_globals)):
            agent = PollingSensorAgent(
                new_phy, local, mac.sizes, mac.timings, cluster_id=adopter
            )
            old_agent = dead_agents[g]
            # Queued application data survives the takeover (relay buffers
            # and in-cycle assignments belonged to the dead head's schedule
            # and are unusable); re-stamp origins to the new local ids.
            for pkt in old_agent.own_queue:
                agent.own_queue.append(dataclasses.replace(pkt, origin=local))
            old_agent.own_queue.clear()
            # A sensor asleep on the dead head's schedule would miss the
            # adopter's polls until its old wake timer fires; wake it now.
            if agent.trx.is_sleeping:
                agent.trx.wake()
            self.source_by_global[g].deliver = agent.generate_packet
            new_agents.append(agent)
        mac.adopt_sensors(new_phy, new_agents)
        self.adoption_events.append(
            AdoptionEvent(
                time=self.sim.now,
                dead_head=dead_head,
                adopter=adopter,
                sensors=tuple(orphan_globals),
            )
        )
        _obs.current().timeline_event(
            self.sim.now,
            "head-adoption",
            head=dead_head,
            adopter=adopter,
            sensors=list(orphan_globals),
        )


class FieldReformCoordinator:
    """Field-level re-forming: cross-cluster handoff + head re-placement.

    PR 6 made the field dynamic but froze multi-cluster membership: sensors
    drift, ``final_assignment_staleness`` climbs, and boundary sensors end
    up physically closer to (and often only reachable by) a *different*
    head than the one still polling them.  This coordinator closes the
    loop with a two-event protocol per duty-cycle boundary:

    **prepare** (``boundary - handoff_commit_lead``, inside the field-wide
    sleep tail): feed the field-scope staleness tracker; when it fires,
    re-run the Voronoi forming over live positions (with one bounded
    quantization step of head re-placement folded in, DESIGN.md §13) and
    retune the planned movers' radios to their destination channels —
    sensors are asleep, so the retune is invisible to the MAC.

    **commit** (exactly at the boundary, scheduled at build time so the
    kernel's FIFO tie-break runs it after the mobility epoch but before
    any head's wakeup): re-check endpoint liveness — the prepare->commit
    window is the protocol's crash surface — then rebuild every affected
    cluster's PHY/agents with the new rosters.  Queued application packets
    ride along (re-stamped to new local ids), CBR sources re-target, and
    each affected head re-plans via the standard boundary repair (never a
    cold re-solve); blacklists, departed marks and suspect evidence follow
    the sensor across clusters.

    Crash safety: a source head dead at commit aborts its moves and leaves
    the orphans to :class:`HeadFailoverCoordinator` (one mover per sensor —
    that is the ``dynamic.no-dual-membership`` invariant); a dead
    destination aborts and retunes the movers home.  Either way no queue
    is stranded: packets sit untouched in the old agents until a commit or
    an adoption transplants them, and the ``dynamic.handoff-conservation``
    invariant checks the field-wide pending count across every commit.
    """

    def __init__(
        self,
        sim: Simulator,
        config: MultiClusterConfig,
        net: FormedNetwork,
        medium: RadioMedium,
        macs: list[PollingClusterMac],
        channels: np.ndarray,
        head_positions: np.ndarray,
        source_by_global: dict[int, CbrSource],
    ):
        self.sim = sim
        self.config = config
        self.medium = medium
        self.macs = macs
        self.channels = channels
        # The SAME array HeadFailoverCoordinator holds: head re-placement
        # mutates rows in place, so failover adoption groups orphans around
        # the heads' *current* positions automatically.
        self.head_positions = head_positions
        self.source_by_global = source_by_global
        self.serving = np.asarray(net.assignment, dtype=np.int64).copy()
        if config.handoff_trigger is not None:
            trigger = config.handoff_trigger
        elif config.handoff == "periodic":
            trigger = StalenessTrigger(
                membership_delta=0, repair_fallbacks=0, period_cycles=1
            )
        else:
            trigger = StalenessTrigger(membership_delta=3, repair_fallbacks=0)
        self.tracker = FieldStalenessTracker(trigger=trigger)
        self.events: list[FieldHandoffEvent] = []
        self.reform_log: list[dict] = []
        self.reforms = 0  # plans that reached commit
        self.handoffs = 0  # committed sensor moves
        self._pending: tuple[FieldReformPlan, list] | None = None
        lead = min(float(config.handoff_commit_lead), 0.5 * config.cycle_length)
        for k in range(1, int(config.n_cycles)):
            t = k * config.cycle_length
            sim.at(t - lead, self._prepare)
            sim.at(t, self._commit)

    # -- bookkeeping -------------------------------------------------------------

    def _live(self) -> list[int]:
        return [h for h in range(self.config.n_heads) if not self.macs[h].halted]

    def _refresh_serving(self) -> None:
        """Re-derive the serving map from the live rosters (ground truth).

        Failover adoptions re-home sensors outside this coordinator; the
        planner must see those sensors at their adopters, not at the dead
        head.  Unclaimed sensors (a dark cluster's unadopted orphans) keep
        their last serving head — the planner skips dead sources anyway.
        """
        for h, mac in enumerate(self.macs):
            if mac.halted or mac.phy.index_map is None:
                continue
            for g in mac.phy.index_map[:-1]:
                self.serving[int(g)] = h

    def _frozen_globals(self, live: list[int]) -> set[int]:
        """Sensors that must not move.

        Two classes: sensors *excluded* at their current head (a
        blacklisted or departed radio cannot be assumed to obey a retune;
        absent ones are administratively out — their evidence still
        carries over if the roster moves around them), and sensors
        currently carrying *relay flow* in their cluster's routing — a
        relay that walks out strands every sensor routing through it, so
        it only moves once a re-plan no longer leans on it.
        """
        frozen: set[int] = set()
        for h in live:
            mac = self.macs[h]
            im = mac.phy.index_map
            frozen |= {int(im[l]) for l in mac._excluded()}
            for alternatives in mac.routing.flow_paths.values():
                for path, units in alternatives:
                    if units <= 0:
                        continue
                    frozen |= {
                        int(im[l]) for l in path[1:] if l != HEAD
                    }
        return frozen

    def _field_pending(self) -> int:
        """Total queued application packets across every cluster's agents."""
        return sum(
            agent.pending_count for mac in self.macs for agent in mac.sensors
        )

    def _hears_into(self, g: int, dst: int) -> bool:
        """Whether sensor *g* has a bidirectional link into *dst*'s roster.

        Voronoi distance is the planning signal but radio reachability is
        the service: a sensor can be nearer to another head in meters yet
        only connected through its old cluster's relay chain.  One live
        link into the destination roster (member or head) is the cheap
        necessary condition the coordinator checks before moving a sensor
        that still has service where it is.
        """
        im = self.macs[dst].phy.index_map
        for t in im:
            t = int(t)
            if t != g and self.medium.hears(t, g) and self.medium.hears(g, t):
                return True
        return False

    def current_staleness(self) -> float:
        """Serving staleness against live heads and the live serving map."""
        self._refresh_serving()
        return serving_staleness(
            self.medium.positions[: self.config.n_sensors],
            self.head_positions,
            self.serving,
            self._live(),
        )

    # -- prepare -----------------------------------------------------------------

    def _prepare(self) -> None:
        self._refresh_serving()
        cfg = self.config
        live = self._live()
        positions = self.medium.positions[: cfg.n_sensors]
        frozen = self._frozen_globals(live)
        probe = plan_field_reform(
            positions,
            self.head_positions,
            self.serving,
            reason="probe",
            live_heads=live,
            max_moves=cfg.handoff_max_moves,
            head_step_m=0.0,
            frozen_sensors=frozen,
        )
        misassigned = probe.n_moves + len(probe.deferred)
        reason = self.tracker.observe_boundary(misassigned)
        if reason is None:
            return
        if cfg.handoff_head_step_m > 0.0:
            plan = plan_field_reform(
                positions,
                self.head_positions,
                self.serving,
                reason=reason,
                live_heads=live,
                max_moves=cfg.handoff_max_moves,
                head_step_m=cfg.handoff_head_step_m,
                frozen_sensors=frozen,
            )
        else:
            plan = dataclasses.replace(probe, reason=reason)
        staged = []
        roster_left = {
            h: len(self.macs[h].phy.index_map) - 1 for h in live
        }
        # Per-source masked hearing graphs for the bridge guard, updated
        # incrementally as moves are accepted so a batch never strands a
        # member through its combined removals.
        src_graph: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for m in plan.moves:
            if self.macs[m.src].halted or self.macs[m.dst].halted:
                continue  # planner already skips dead sources; stay safe
            if self.macs[m.src].mid_cycle or self.macs[m.dst].mid_cycle:
                # Token-mode overrun: an endpoint is inside a duty cycle.
                # Roster surgery only happens between cycles; wait.
                self.events.append(
                    FieldHandoffEvent(
                        self.sim.now, m.sensor, m.src, m.dst, "deferred-busy"
                    )
                )
                continue
            if roster_left[m.src] <= 1:
                # Never empty a cluster: a head with no members has no duty
                # cycle to announce the next re-form through.
                self.events.append(
                    FieldHandoffEvent(
                        self.sim.now, m.sensor, m.src, m.dst, "deferred-src-empty"
                    )
                )
                continue
            src_local = list(self.macs[m.src].phy.index_map[:-1]).index(m.sensor)
            covered_at_src = src_local not in self.macs[m.src].unreachable
            if covered_at_src and not self._hears_into(m.sensor, m.dst):
                # Nearer in meters, unreachable by radio: moving would trade
                # working multihop service for none.  A sensor already
                # uncovered at its source has nothing to lose and moves.
                self.events.append(
                    FieldHandoffEvent(
                        self.sim.now, m.sensor, m.src, m.dst, "deferred-unreachable"
                    )
                )
                continue
            if m.src not in src_graph:
                fresh = _discover_local_cluster(self.macs[m.src].phy)
                hears = fresh.hears.copy()
                head_hears = fresh.head_hears.copy()
                for l in self.macs[m.src]._excluded():
                    hears[l, :] = False
                    hears[:, l] = False
                    head_hears[l] = False
                src_graph[m.src] = (hears, head_hears)
            hears, head_hears = src_graph[m.src]
            cov_before = _covered_set(hears, head_hears)
            hears2 = hears.copy()
            head_hears2 = head_hears.copy()
            hears2[src_local, :] = False
            hears2[:, src_local] = False
            head_hears2[src_local] = False
            if (cov_before - {src_local}) - _covered_set(hears2, head_hears2):
                # The mover is a cut vertex: covered members route to the
                # head only through it.  The active-relay freeze catches
                # planned relays; this catches *potential* bridges in the
                # raw hearing graph.
                self.events.append(
                    FieldHandoffEvent(
                        self.sim.now, m.sensor, m.src, m.dst, "deferred-bridge"
                    )
                )
                continue
            src_graph[m.src] = (hears2, head_hears2)
            roster_left[m.src] -= 1
            roster_left[m.dst] += 1
            # PREPARE: retune while the field sleeps.  Commit re-checks
            # liveness; an abort retunes the radio back.
            self.medium.set_channel(m.sensor, int(self.channels[m.dst]))
            staged.append(m)
        self._pending = (plan, staged)
        _obs.current().timeline_event(
            self.sim.now,
            "field-reform-prepare",
            reason=reason,
            staleness=plan.staleness,
            staged=len(staged),
            deferred=len(plan.deferred),
        )

    # -- commit ------------------------------------------------------------------

    def _commit(self) -> None:
        if self._pending is None:
            return
        plan, staged = self._pending
        self._pending = None
        now = self.sim.now
        committable = []
        for m in staged:
            if self.macs[m.src].halted:
                # Source died inside the window: its sensors are a dead
                # head's orphans — the failover watchdog owns them (one
                # mover per sensor).  Retune home so its bookkeeping holds.
                self.medium.set_channel(m.sensor, int(self.channels[m.src]))
                self.events.append(
                    FieldHandoffEvent(now, m.sensor, m.src, m.dst, "aborted-src-dead")
                )
                continue
            if self.macs[m.dst].halted:
                self.medium.set_channel(m.sensor, int(self.channels[m.src]))
                self.events.append(
                    FieldHandoffEvent(now, m.sensor, m.src, m.dst, "aborted-dst-dead")
                )
                continue
            if self.macs[m.src].mid_cycle or self.macs[m.dst].mid_cycle:
                self.medium.set_channel(m.sensor, int(self.channels[m.src]))
                self.events.append(
                    FieldHandoffEvent(now, m.sensor, m.src, m.dst, "deferred-busy")
                )
                continue
            committable.append(m)
        if self.config.handoff_head_step_m > 0.0:
            self._apply_head_placement(plan)
        self.tracker.fired()
        self.reforms += 1
        if committable:
            self._execute(committable)
        self.reform_log.append(
            {
                "time": now,
                "reason": plan.reason,
                "staleness": plan.staleness,
                "committed": len(committable),
                "aborted": len(staged) - len(committable),
                "deferred": len(plan.deferred),
            }
        )
        _obs.current().timeline_event(
            now,
            "field-reform-commit",
            committed=len(committable),
            aborted=len(staged) - len(committable),
        )

    def _apply_head_placement(self, plan: FieldReformPlan) -> None:
        """Adopt the plan's quantization step: heads physically relocate."""
        all_pos = self.medium.positions.copy()
        moved = False
        for h in range(self.config.n_heads):
            if not np.array_equal(plan.head_positions[h], self.head_positions[h]):
                self.head_positions[h] = plan.head_positions[h]
                all_pos[self.config.n_sensors + h] = plan.head_positions[h]
                moved = True
        if moved:
            self.medium.update_positions(all_pos)

    def _execute(self, committable) -> None:
        cfg = self.config
        affected = sorted({m.src for m in committable} | {m.dst for m in committable})
        pending_before = self._field_pending()
        # Global views across the affected heads: agents, radios, demand
        # rows and the per-cluster liveness evidence (evidence follows the
        # sensor through the handoff — a blacklist is about the node, not
        # about who polls it).
        bl_g: set[int] = set()
        dep_g: set[int] = set()
        abs_g: set[int] = set()
        susp_g: dict[int, int] = {}
        agent_by_global: dict[int, PollingSensorAgent] = {}
        trx_by_global: dict[int, Transceiver] = {}
        row_by_global: dict[int, tuple[int, float]] = {}
        for h in affected:
            mac = self.macs[h]
            im = mac.phy.index_map
            bl_g |= {int(im[l]) for l in mac.blacklisted}
            dep_g |= {int(im[l]) for l in mac.departed}
            abs_g |= {int(im[l]) for l in mac.absent}
            for l, c in mac._suspect_misses.items():
                susp_g[int(im[l])] = c
            for l, g in enumerate(im[:-1]):
                agent_by_global[int(g)] = mac.sensors[l]
                trx_by_global[int(g)] = mac.phy.transceivers[l]
                row_by_global[int(g)] = (
                    int(mac.phy.cluster.packets[l]),
                    float(mac.phy.cluster.energy[l]),
                )
        moved_out: dict[int, set[int]] = {h: set() for h in affected}
        moved_in: dict[int, list[int]] = {h: [] for h in affected}
        for m in committable:
            moved_out[m.src].add(m.sensor)
            moved_in[m.dst].append(m.sensor)
            self.serving[m.sensor] = m.dst
        for h in affected:
            self._rebuild_head(
                h,
                moved_out[h],
                sorted(moved_in[h]),
                agent_by_global,
                trx_by_global,
                row_by_global,
                bl_g,
                dep_g,
                abs_g,
                susp_g,
            )
        pending_after = self._field_pending()
        hint = f"field re-form t={self.sim.now:g}"
        _validate.check_handoff_conservation(
            pending_before,
            pending_after,
            moved=len(committable),
            sim_time=self.sim.now,
            hint=hint,
        )
        live_rosters = {
            h: [int(g) for g in self.macs[h].phy.index_map[:-1]]
            for h in self._live()
        }
        _validate.check_single_membership(
            live_rosters, sim_time=self.sim.now, hint=hint
        )
        self.handoffs += len(committable)
        self.events.extend(
            FieldHandoffEvent(self.sim.now, m.sensor, m.src, m.dst, "committed")
            for m in committable
        )

    def _rebuild_head(
        self,
        h: int,
        out_set: set[int],
        incoming: list[int],
        agent_by_global: dict,
        trx_by_global: dict,
        row_by_global: dict,
        bl_g: set[int],
        dep_g: set[int],
        abs_g: set[int],
        susp_g: dict[int, int],
    ) -> None:
        mac = self.macs[h]
        old_phy = mac.phy
        assert old_phy.index_map is not None
        head_global = int(old_phy.index_map[-1])
        # Retained members keep their old relative order (stable local ids
        # for the common case); incoming append in global-id order.
        retained = [int(g) for g in old_phy.index_map[:-1] if int(g) not in out_set]
        roster = retained + incoming
        new_index_map = roster + [head_global]
        transceivers = [trx_by_global[g] for g in roster] + [old_phy.transceivers[-1]]
        n_new = len(roster)
        base = Cluster(
            hears=np.zeros((n_new, n_new), dtype=bool),  # rediscovered below
            head_hears=np.zeros(n_new, dtype=bool),
            packets=np.array([row_by_global[g][0] for g in roster], dtype=np.int64),
            energy=np.array([row_by_global[g][1] for g in roster], dtype=np.float64),
            positions=self.medium.positions[
                np.asarray(roster, dtype=np.int64)
            ].copy(),
            head_position=self.head_positions[h].copy(),
        )
        new_phy = ClusterPhy(
            sim=self.sim,
            cluster=base,
            medium=self.medium,
            transceivers=transceivers,
            tracer=old_phy.tracer,
            index_map=new_index_map,
        )
        new_phy.cluster = _discover_local_cluster(new_phy)
        incoming_set = set(incoming)
        bl_l: set[int] = set()
        dep_l: set[int] = set()
        abs_l: set[int] = set()
        susp_l: dict[int, int] = {}
        new_agents: list[PollingSensorAgent] = []
        for local, g in enumerate(roster):
            # Constructing the agent re-binds the radio's receive callback —
            # for a mover, that *is* the handoff.
            agent = PollingSensorAgent(
                new_phy, local, mac.sizes, mac.timings, cluster_id=h
            )
            old_agent = agent_by_global[g]
            # Queued application data survives (re-stamped to the new local
            # id); relay buffers and in-cycle assignments belonged to the
            # old schedule.  Any request in flight when the plan was made
            # re-issues from this queue at the new head — never dropped.
            for pkt in old_agent.own_queue:
                agent.own_queue.append(dataclasses.replace(pkt, origin=local))
            old_agent.own_queue.clear()
            # A mover asleep on its old head's schedule would miss the new
            # head's polls until the stale wake timer fires; wake it now.
            if g in incoming_set and agent.trx.is_sleeping:
                agent.trx.wake()
            self.source_by_global[g].deliver = agent.generate_packet
            if g in bl_g:
                bl_l.add(local)
            if g in dep_g:
                dep_l.add(local)
            if g in abs_g:
                abs_l.add(local)
            if g in susp_g:
                susp_l[local] = susp_g[g]
            new_agents.append(agent)
        mac.reform_membership(
            new_phy,
            new_agents,
            blacklisted=bl_l,
            departed=dep_l,
            absent=abs_l,
            suspect_misses=susp_l,
        )


def run_multicluster_simulation(
    config: MultiClusterConfig = MultiClusterConfig(),
    tracer: Tracer | None = None,
) -> MultiClusterResult:
    """Run the shared-medium multi-cluster stack.

    ``tracer`` lets callers subscribe to PHY trace events before the run;
    it is entered via :meth:`Tracer.run_scope`, which resets per-run
    counters/records so a tracer reused across trials never leaks counts
    from one run into the next (subscribers stay registered).
    """
    if config.mode not in ("channels", "token", "uncoordinated"):
        raise ValueError(f"unknown mode {config.mode!r}")
    if config.handoff not in ("off", "staleness", "periodic"):
        raise ValueError(f"unknown handoff policy {config.handoff!r}")
    if tracer is None:
        tracer = Tracer()
    own_tel = _obs.Telemetry() if config.telemetry else None
    scope = nullcontext() if own_tel is None else _obs.use(own_tel)
    with scope, tracer.run_scope():
        tel = _obs.current()
        run_span = None
        if tel.enabled:
            run_span = tel.begin(
                "run",
                "multicluster-sim",
                perf_counter(),
                clock="wall",
                seed=config.seed,
                n_heads=config.n_heads,
                mode=config.mode,
            )
            tel.root = run_span
        result = _run_multicluster(config, tracer, tel if tel.enabled else None)
        if tel.enabled:
            tel.finish(
                run_span,
                perf_counter(),
                sim_time=result.elapsed,
                delivered=result.packets_delivered,
                collisions=result.collisions,
            )
            result.telemetry = tel
        return result


def _run_multicluster(
    config: MultiClusterConfig, tracer: Tracer, tel: "_obs.Telemetry | None"
) -> MultiClusterResult:
    sim = Simulator()
    sim.telemetry = tel
    streams = RngStreams(config.seed)
    field_rng = streams.get("field")
    sensors = field_rng.uniform(0, config.field_m, size=(config.n_sensors, 2))
    heads = _head_layout(config.n_heads, config.field_m, streams.get("heads"))
    net = form_clusters(sensors, heads, comm_range=config.sensor_range_m)

    # --- one shared medium over every sensor and every head -------------------
    all_positions = np.vstack([sensors, heads])
    n_total = all_positions.shape[0]
    prop = GROUND_SENSOR_PROPAGATION
    sensor_power = sensor_power_for_range(prop, config.sensor_range_m, 1e-11)
    tx_power = np.full(n_total, sensor_power)
    for h in range(config.n_heads):
        members = net.members[h]
        if members.size:
            d = np.sqrt(((sensors[members] - heads[h]) ** 2).sum(axis=1)).max()
        else:
            d = config.sensor_range_m
        tx_power[config.n_sensors + h] = 4.0 * sensor_power_for_range(
            prop, max(float(d), config.sensor_range_m), 1e-11
        )
    medium = RadioMedium(
        sim=sim,
        positions=all_positions,
        tx_power_w=tx_power,
        propagation=prop,
        bitrate_bps=config.bitrate,
        tracer=tracer,
    )

    # --- field mobility (armed only when asked: bit-for-bit otherwise) -----------
    mobility: _FieldMobility | None = None
    if config.mobility_speed_mps > 0:
        mobility = _FieldMobility(
            sim=sim,
            medium=medium,
            n_sensors=config.n_sensors,
            speed_mps=config.mobility_speed_mps,
            cycle_length=config.cycle_length,
            n_cycles=config.n_cycles,
            field_m=config.field_m,
            base_seed=config.seed,
        )

    # --- channel assignment -----------------------------------------------------
    if config.mode == "channels":
        adj = cluster_adjacency(net, interference_range=2 * config.sensor_range_m)
        channels = six_color_planar(adj)
    else:
        channels = np.zeros(config.n_heads, dtype=np.int64)

    # --- per-cluster stacks on shared PHY -----------------------------------------
    # One warm solver cache across every head (opt-in): re-forms and
    # adoptions that revisit a topology reuse its routing/backup solves.
    solver_cache = SolverCache() if config.use_solver_cache else None
    macs: list[PollingClusterMac] = []
    all_agents = []
    duty_estimates: list[float] = []
    for h in range(config.n_heads):
        members = [int(m) for m in net.members[h]]
        index_map = members + [config.n_sensors + h]
        transceivers = [
            Transceiver(sim, medium, g, energy=config.energy) for g in index_map
        ]
        for g in index_map:
            medium.set_channel(g, int(channels[h]))
        phy = ClusterPhy(
            sim=sim,
            cluster=net.clusters[h],
            medium=medium,
            transceivers=transceivers,
            tracer=tracer,
            index_map=index_map,
        )
        # discover in-cluster connectivity from the shared radio
        local_cluster = _discover_local_cluster(phy)
        if not local_cluster.is_connected():
            # strays beyond reach transmit nothing this run
            hops = local_cluster.min_hop_counts()
            packets = np.where(np.isfinite(hops), 1, 0).astype(np.int64)
            local_cluster = local_cluster.with_packets(packets)
        phy.cluster = local_cluster
        mac = PollingClusterMac(
            phy, cycle_length=config.cycle_length, cluster_id=h,
            engine=config.engine,
            failure_detection=config.failure_detection,
            dead_after_misses=config.dead_after_misses,
            backup_k=config.backup_k,
            solver_cache=solver_cache,
        )
        macs.append(mac)
        all_agents.append(mac.sensors)
        # nominal duty estimate for token windows (planning-only run: keep
        # its phantom requests out of the live trace)
        plan = mac.routing.routing_plan()
        nominal_slots = OnlinePollingScheduler(
            plan, mac.oracle, telemetry=_obs.NULL_TELEMETRY
        ).run().slots_elapsed
        slot = MacTimings().poll_slot_time(
            config.bitrate, DEFAULT_SIZES, DEFAULT_SIZES.data
        )
        duty_estimates.append(nominal_slots * slot * 2.0 + 0.2)

    # --- traffic --------------------------------------------------------------------
    sources = []
    source_by_global: dict[int, CbrSource] = {}
    for h, agents in enumerate(all_agents):
        cluster_sources = attach_cbr_sources(
            sim,
            agents,
            rate_bps=config.rate_bps,
            packet_bytes=config.packet_bytes,
            seed=config.seed * 101 + h,
        )
        sources.extend(cluster_sources)
        for agent, src in zip(agents, cluster_sources):
            source_by_global[int(net.members[h][agent.sensor])] = src

    # --- head survivability (armed only when asked: bit-for-bit otherwise) ------------
    coordinator: HeadFailoverCoordinator | None = None
    if config.head_failover or config.head_crashes:
        coordinator = HeadFailoverCoordinator(
            sim=sim,
            config=config,
            net=net,
            medium=medium,
            macs=macs,
            channels=channels,
            sensor_positions=sensors,
            head_positions=heads,
            source_by_global=source_by_global,
        )
        coordinator.arm()

    # --- field-level re-forming (armed only when asked: bit-for-bit otherwise) --------
    field_coord: FieldReformCoordinator | None = None
    if config.handoff != "off":
        # Constructed after _FieldMobility on purpose: both schedule
        # boundary events at build time, so the kernel's FIFO tie-break
        # runs each epoch's position update before the commit that acts
        # on it — and both before any head's wakeup at the same instant.
        field_coord = FieldReformCoordinator(
            sim=sim,
            config=config,
            net=net,
            medium=medium,
            macs=macs,
            channels=channels,
            head_positions=heads,
            source_by_global=source_by_global,
        )
    if mobility is not None:
        if field_coord is not None:
            mobility.staleness_probe = field_coord.current_staleness
        else:
            mobility.staleness_probe = lambda: assignment_staleness(
                medium.positions[: config.n_sensors], heads, net.assignment
            )

    # --- start: aligned, staggered, or concurrent -------------------------------------
    if config.mode == "token":
        offset = 0.0
        for mac, est in zip(macs, duty_estimates):
            _start_delayed(sim, mac, config.n_cycles, offset)
            offset += est
    else:
        for mac in macs:
            mac.start(config.n_cycles)

    sim.run(until=config.n_cycles * config.cycle_length)
    seen_trx: set[int] = set()
    for mac in macs:
        # Adopted transceivers appear in two PHYs; finalize each radio once
        # (it would be harmless anyway — the meter integrates zero time on
        # the second call at the same instant — but keep the ledger obvious).
        for trx in mac.phy.transceivers:
            if id(trx) not in seen_trx:
                seen_trx.add(id(trx))
                trx.finalize()
    final_staleness = 0.0
    if mobility is not None:
        if field_coord is not None:
            # Measured against the assignment actually in force: the
            # coordinator's live serving map and (possibly re-placed) heads.
            final_staleness = field_coord.current_staleness()
        else:
            final_staleness = assignment_staleness(
                medium.positions[: config.n_sensors],
                heads,
                net.assignment,
            )
    return MultiClusterResult(
        config=config,
        net=net,
        macs=macs,
        channels=channels,
        elapsed=sim.now,
        packets_generated=sum(s.generated for s in sources),
        collisions=tracer.counts.get("phy_rx_collision", 0),
        coordinator=coordinator,
        mobility_epochs=mobility.epochs if mobility is not None else 0,
        final_assignment_staleness=final_staleness,
        field_coordinator=field_coord,
        staleness_trajectory=(
            () if mobility is None else tuple(mobility.staleness_trajectory)
        ),
        field_coverage=_field_coverage(macs, config.n_sensors),
    )


def _covered_set(hears: np.ndarray, head_hears: np.ndarray) -> set[int]:
    """Locals with some hop path to the head (BFS over the hearing graph)."""
    known = head_hears.copy()
    frontier = head_hears.copy()
    while frontier.any():
        newly = hears[frontier, :].any(axis=0) & ~known
        known |= newly
        frontier = newly
    return set(int(i) for i in np.flatnonzero(known))


def _field_coverage(macs: list[PollingClusterMac], n_sensors: int) -> float:
    """Ground-truth serviceable fraction of the field at this instant.

    A sensor counts as covered when some live head's roster contains it,
    it is not excluded (blacklisted / departed / absent), and the *current*
    radio geometry gives it a finite hop path to that head.  This is the
    quantity field re-forming defends: under mobility with handoff off,
    drifted boundary sensors stay on a stale roster that can no longer
    physically reach them, and coverage decays even though every head is
    alive.  Pure post-run measurement — no events, no RNG.
    """
    if n_sensors <= 0:
        return 1.0
    served: set[int] = set()
    for mac in macs:
        if mac.halted:
            continue
        phy = mac.phy
        if phy.index_map is None or phy.n_sensors == 0:
            continue
        fresh = _discover_local_cluster(phy)
        excluded = mac._excluded()
        hears = fresh.hears.copy()
        head_hears = fresh.head_hears.copy()
        for l in excluded:
            hears[l, :] = False
            hears[:, l] = False
            head_hears[l] = False
        hops = dataclasses.replace(
            fresh, hears=hears, head_hears=head_hears
        ).min_hop_counts()
        for l in range(phy.n_sensors):
            if l not in excluded and np.isfinite(hops[l]):
                served.add(int(phy.index_map[l]))
    return len(served) / n_sensors


def _discover_local_cluster(phy: ClusterPhy) -> Cluster:
    """In-cluster hearing from the shared medium, honoring channels."""
    medium = phy.medium
    n = phy.n_sensors
    hears = np.zeros((n, n), dtype=bool)
    head_hears = np.zeros(n, dtype=bool)
    for i in range(n):
        gi = phy.phy_index(i)
        head_hears[i] = medium.hears(phy.phy_index(-1), gi)
        for j in range(n):
            if i != j:
                hears[i, j] = medium.hears(gi, phy.phy_index(j))
    base = phy.cluster
    return Cluster(
        hears=hears,
        head_hears=head_hears,
        packets=base.packets.copy(),
        energy=base.energy.copy(),
        positions=None if base.positions is None else base.positions.copy(),
        head_position=None if base.head_position is None else base.head_position.copy(),
    )


def _start_delayed(sim: Simulator, mac: PollingClusterMac, n_cycles: int, delay: float) -> None:
    """Put the cluster to sleep until its token window, then run."""
    if delay <= 0:
        mac.start(n_cycles)
        return
    for agent in mac.sensors:
        agent.trx.sleep()
        sim.at(delay, agent.trx.wake)
    sim.at(delay, mac.start, n_cycles)
