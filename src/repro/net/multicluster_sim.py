"""Multi-cluster polling on one shared medium (Sec. V-G, executed).

Several cluster heads and their Voronoi-formed clusters share one physical
radio space.  Without coordination, boundary sensors of adjacent clusters
collide whenever their heads poll simultaneously — and the heads' own
high-power poll broadcasts jam each other across cluster borders.  The
paper offers two remedies, both runnable here:

* ``mode="uncoordinated"`` — everyone on one channel, cycles aligned: the
  failure case (inter-cluster collisions eat packets);
* ``mode="token"`` — one channel, but duty cycles staggered into windows
  (the head-to-head token of Sec. V-G; the second-layer token passing
  itself is out of band);
* ``mode="channels"`` — adjacent clusters on different radio channels via
  the <= 6-coloring; everyone polls concurrently.

All three run the full per-cluster polling MAC; the shared
:class:`~repro.radio.channel.RadioMedium` decides what actually decodes.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from .. import obs as _obs
from ..core.online import OnlinePollingScheduler
from ..mac.base import (
    GROUND_SENSOR_PROPAGATION,
    ClusterPhy,
    MacTimings,
    sensor_power_for_range,
)
from ..mac.pollmac import PollingClusterMac, PollingSensorAgent, phy_truth_oracle
from ..radio.channel import RadioMedium
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES
from ..radio.transceiver import Transceiver
from ..faults.injector import FaultInjector
from ..sim.kernel import Simulator
from ..sim.rng import RngStreams, mobility_rng
from ..sim.trace import Tracer
from ..topology.cluster import Cluster
from ..topology.forming import FormedNetwork, form_clusters
from ..topology.recluster import assignment_staleness
from .cluster_sim import cluster_from_phy
from .coloring import six_color_planar
from ..topology.forming import cluster_adjacency
from ..traffic.cbr import CbrSource, attach_cbr_sources

__all__ = [
    "MultiClusterConfig",
    "MultiClusterResult",
    "AdoptionEvent",
    "HeadFailoverCoordinator",
    "run_multicluster_simulation",
]


@dataclass(frozen=True)
class MultiClusterConfig:
    n_sensors: int = 60
    n_heads: int = 3
    field_m: float = 360.0
    sensor_range_m: float = 55.0
    rate_bps: float = 20.0
    cycle_length: float = 6.0
    n_cycles: int = 5
    seed: int = 0
    mode: str = "channels"  # "channels" | "token" | "uncoordinated"
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    energy: EnergyParams = EnergyParams()
    # Head survivability.  All defaults off = the exact pre-failover code
    # path, bit for bit: no coordinator object, no scheduled events, no RNG
    # draws.  ``head_crashes`` injects fail-stop head crashes as (head,
    # time) pairs; ``head_failover`` arms the inter-cluster beacon watchdog
    # that detects them and hands the orphaned sensors to the nearest
    # surviving head (crashes without failover = the baseline where the
    # whole cluster simply goes dark).
    head_failover: bool = False
    head_crashes: tuple[tuple[int, float], ...] = ()
    beacon_interval: float = 1.0
    beacon_miss_limit: int = 3
    # Field-level mobility (DESIGN.md §11): every sensor drifts a bounded
    # random step at each duty-cycle boundary (speed * cycle_length max,
    # reflected into the field).  0 (the default) schedules nothing and
    # draws no RNG — the exact static code path, bit for bit.  The Voronoi
    # forming is *not* recomputed mid-run; ``final_assignment_staleness``
    # on the result quantifies how far the deploy-time forming drifted.
    mobility_speed_mps: float = 0.0
    # Telemetry (repro.obs): False is the exact untraced path, bit for bit
    # (an ambient obs.use(...) scope still traces); True attaches a
    # run-local collector to ``MultiClusterResult.telemetry``.
    telemetry: bool = False
    # Slot engine request (DESIGN.md §12).  Multi-cluster PHYs share one
    # medium through ``index_map``, which the batch engine's eligibility
    # gate rejects, so "vector" currently runs scalar slots here — the knob
    # exists so the config surface matches PollingSimConfig and single-
    # cluster fast paths engage automatically if that gate ever loosens.
    engine: str = "vector"


@dataclass(frozen=True)
class AdoptionEvent:
    """One head takeover: who died, who adopted, and which sensors moved."""

    time: float  # when the watchdog declared the head dead (detection time)
    dead_head: int
    adopter: int
    sensors: tuple[int, ...]  # global sensor ids that changed cluster


@dataclass
class MultiClusterResult:
    config: MultiClusterConfig
    net: FormedNetwork
    macs: list[PollingClusterMac]
    channels: np.ndarray
    elapsed: float
    packets_generated: int
    collisions: int
    coordinator: "HeadFailoverCoordinator | None" = None
    """Present only when head crashes or failover were armed; carries the
    crash/detection/adoption timeline for availability analysis."""
    mobility_epochs: int = 0
    """Cycle-boundary drift steps executed (0 for static runs)."""
    final_assignment_staleness: float = 0.0
    """Fraction of sensors whose nearest head at the end of the run differs
    from the deploy-time Voronoi assignment — how stale the forming became
    under mobility (0.0 for static runs)."""
    telemetry: "_obs.Telemetry | None" = None
    """The run's telemetry collector (``config.telemetry=True`` or an
    ambient ``obs.use(...)`` scope); ``None`` for untraced runs."""

    @property
    def packets_delivered(self) -> int:
        return sum(mac.packets_delivered for mac in self.macs)

    @property
    def packets_failed(self) -> int:
        return sum(mac.packets_failed for mac in self.macs)

    @property
    def delivery_ratio(self) -> float:
        eligible = self.packets_delivered + self.packets_failed
        if eligible == 0:
            return 1.0
        return self.packets_delivered / eligible

    def per_cluster_delivery(self) -> list[tuple[int, int]]:
        return [(mac.cluster_id, mac.packets_delivered) for mac in self.macs]


def _head_layout(k: int, field: float, rng) -> np.ndarray:
    """Spread heads over the field deterministically (jittered grid)."""
    cols = int(np.ceil(np.sqrt(k)))
    rows = int(np.ceil(k / cols))
    xs = (np.arange(cols) + 0.5) * field / cols
    ys = (np.arange(rows) + 0.5) * field / rows
    pts = [(x, y) for y in ys for x in xs][:k]
    jitter = rng.uniform(-0.05 * field, 0.05 * field, size=(k, 2))
    return np.asarray(pts) + jitter


class _FieldMobility:
    """Bounded drift of every sensor over the shared field (DESIGN.md §11).

    The multi-cluster analogue of the per-cluster mobility fault: one step
    per sensor per duty-cycle boundary, each node on its own substream of
    the dedicated mobility RNG stream, positions reflected into the field.
    Epochs are scheduled at construction — before any MAC exists — so the
    kernel's FIFO tie-break runs them ahead of the heads' wakeups at the
    same timestamp and every cycle sees one consistent geometry.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: RadioMedium,
        n_sensors: int,
        speed_mps: float,
        cycle_length: float,
        n_cycles: int,
        field_m: float,
        base_seed: int,
    ):
        self.sim = sim
        self.medium = medium
        self.n_sensors = n_sensors
        self.step_max = speed_mps * cycle_length
        self.field = field_m
        self._rngs = [mobility_rng(base_seed, i) for i in range(n_sensors)]
        self.epochs = 0
        for k in range(1, int(n_cycles)):
            sim.at(k * cycle_length, self._epoch)

    def _epoch(self) -> None:
        reflect = FaultInjector._reflect
        positions = self.medium.positions.copy()
        for i in range(self.n_sensors):
            rng = self._rngs[i]
            angle = float(rng.uniform(0.0, 2.0 * np.pi))
            dist = float(rng.uniform(0.0, self.step_max))
            positions[i, 0] = reflect(
                positions[i, 0] + dist * np.cos(angle), 0.0, self.field
            )
            positions[i, 1] = reflect(
                positions[i, 1] + dist * np.sin(angle), 0.0, self.field
            )
        self.medium.update_positions(positions)
        self.epochs += 1


class HeadFailoverCoordinator:
    """Second-layer survivability: detect dead heads, re-home their sensors.

    Cluster heads exchange periodic inter-cluster beacons (modeled out of
    band, like the Sec. V-G token passing itself — heads are wired/
    high-power nodes whose coordination traffic does not contend with the
    sensor channel).  A head that misses ``beacon_miss_limit`` consecutive
    beacons is declared dead by its peers; its orphaned sensors are then
    **adopted** by the nearest surviving head: their radios move to the
    adopter's channel, fresh sensor agents re-bind the existing
    transceivers into the adopter's cluster, queued application packets
    carry over, and the adopter merges the new demand into its routing via
    the standard boundary repair (blacklists preserved, out-of-reach
    orphans planned at zero — the partial-coverage contract).

    Crashes themselves are injected via ``config.head_crashes`` whether or
    not failover is armed, so the no-failover baseline (cluster goes dark,
    data stops) and the takeover run are directly comparable.
    """

    def __init__(
        self,
        sim: Simulator,
        config: MultiClusterConfig,
        net: FormedNetwork,
        medium: RadioMedium,
        macs: list[PollingClusterMac],
        channels: np.ndarray,
        sensor_positions: np.ndarray,
        head_positions: np.ndarray,
        source_by_global: dict[int, CbrSource],
    ):
        self.sim = sim
        self.config = config
        self.net = net
        self.medium = medium
        self.macs = macs
        self.channels = channels
        self.sensor_positions = sensor_positions
        self.head_positions = head_positions
        self.source_by_global = source_by_global
        self.crashed: list[tuple[int, float]] = []  # ground truth (head, time)
        self.adoption_events: list[AdoptionEvent] = []
        self._missed_beacons = {h: 0 for h in range(config.n_heads)}
        self._declared: set[int] = set()  # heads the watchdog already handled

    def arm(self) -> None:
        for h, t in self.config.head_crashes:
            self.sim.at(float(t), self.crash_head, int(h))
        if self.config.head_failover:
            self.sim.schedule(self.config.beacon_interval, self._beacon_tick)

    # -- fault injection ---------------------------------------------------------

    def crash_head(self, h: int) -> None:
        """Fail-stop crash of head *h*: radio dark, duty cycle killed."""
        mac = self.macs[h]
        if mac.halted:
            return
        self.crashed.append((h, self.sim.now))
        mac.halt()
        _obs.current().timeline_event(self.sim.now, "head-crash", head=h)

    # -- detection ---------------------------------------------------------------

    def _beacon_tick(self) -> None:
        """One beacon round: live heads beacon, peers count the silent ones."""
        for h, mac in enumerate(self.macs):
            if mac.halted:
                self._missed_beacons[h] += 1
            else:
                self._missed_beacons[h] = 0
        for h in range(self.config.n_heads):
            if h in self._declared:
                continue
            if self._missed_beacons[h] >= self.config.beacon_miss_limit:
                self._declared.add(h)
                self._declare_dead(h)
        self.sim.schedule(self.config.beacon_interval, self._beacon_tick)

    # -- takeover ----------------------------------------------------------------

    def _declare_dead(self, dead_head: int) -> None:
        dead_phy = self.macs[dead_head].phy
        assert dead_phy.index_map is not None
        orphans = [int(g) for g in dead_phy.index_map[:-1]]
        live = [
            a
            for a in range(self.config.n_heads)
            if a != dead_head and not self.macs[a].halted
        ]
        _obs.current().timeline_event(
            self.sim.now,
            "head-declared-dead",
            head=dead_head,
            orphans=len(orphans),
        )
        if not orphans or not live:
            return  # nothing to re-home / nobody left to take them
        groups: dict[int, list[int]] = {}
        for g in orphans:
            deltas = self.head_positions[live] - self.sensor_positions[g]
            adopter = live[int(np.argmin((deltas**2).sum(axis=1)))]
            groups.setdefault(adopter, []).append(g)
        for adopter in sorted(groups):
            self._adopt(adopter, groups[adopter], dead_head)

    def _adopt(self, adopter: int, orphan_globals: list[int], dead_head: int) -> None:
        mac = self.macs[adopter]
        old_phy = mac.phy
        dead_phy = self.macs[dead_head].phy
        assert old_phy.index_map is not None and dead_phy.index_map is not None
        old_sensor_globals = list(old_phy.index_map[:-1])
        head_global = old_phy.index_map[-1]
        dead_local = {g: i for i, g in enumerate(dead_phy.index_map[:-1])}
        # 1. Orphan radios retune to the adopter's channel *before* the
        #    in-cluster connectivity rediscovery below sees them.
        for g in orphan_globals:
            self.medium.set_channel(g, int(self.channels[adopter]))
        # 2. Extend the adopter's PHY: existing members keep their local
        #    ids (and transceivers), orphans append, head stays last.
        new_index_map = old_sensor_globals + orphan_globals + [head_global]
        transceivers = (
            list(old_phy.transceivers[:-1])
            + [dead_phy.transceivers[dead_local[g]] for g in orphan_globals]
            + [old_phy.transceivers[-1]]
        )
        old_cluster = old_phy.cluster
        dead_cluster = dead_phy.cluster
        n_new = len(new_index_map) - 1
        packets = np.concatenate(
            [
                old_cluster.packets,
                [dead_cluster.packets[dead_local[g]] for g in orphan_globals],
            ]
        ).astype(np.int64)
        energy = np.concatenate(
            [
                old_cluster.energy,
                [dead_cluster.energy[dead_local[g]] for g in orphan_globals],
            ]
        )
        base = Cluster(
            hears=np.zeros((n_new, n_new), dtype=bool),  # rediscovered below
            head_hears=np.zeros(n_new, dtype=bool),
            packets=packets,
            energy=energy,
            positions=self.sensor_positions[new_index_map[:-1]].copy(),
            head_position=self.head_positions[adopter].copy(),
        )
        new_phy = ClusterPhy(
            sim=self.sim,
            cluster=base,
            medium=self.medium,
            transceivers=transceivers,
            tracer=old_phy.tracer,
            index_map=new_index_map,
        )
        new_phy.cluster = _discover_local_cluster(new_phy)
        # 3. Fresh agents for the orphans' new local ids.  Constructing one
        #    re-binds the orphan radio's receive callback — that *is* the
        #    takeover: the dead cluster's agent never hears anything again.
        dead_agents = {
            dead_phy.index_map[a.sensor]: a for a in self.macs[dead_head].sensors
        }
        new_agents: list[PollingSensorAgent] = []
        for local, g in enumerate(orphan_globals, start=len(old_sensor_globals)):
            agent = PollingSensorAgent(
                new_phy, local, mac.sizes, mac.timings, cluster_id=adopter
            )
            old_agent = dead_agents[g]
            # Queued application data survives the takeover (relay buffers
            # and in-cycle assignments belonged to the dead head's schedule
            # and are unusable); re-stamp origins to the new local ids.
            for pkt in old_agent.own_queue:
                agent.own_queue.append(dataclasses.replace(pkt, origin=local))
            old_agent.own_queue.clear()
            # A sensor asleep on the dead head's schedule would miss the
            # adopter's polls until its old wake timer fires; wake it now.
            if agent.trx.is_sleeping:
                agent.trx.wake()
            self.source_by_global[g].deliver = agent.generate_packet
            new_agents.append(agent)
        mac.adopt_sensors(new_phy, new_agents)
        self.adoption_events.append(
            AdoptionEvent(
                time=self.sim.now,
                dead_head=dead_head,
                adopter=adopter,
                sensors=tuple(orphan_globals),
            )
        )
        _obs.current().timeline_event(
            self.sim.now,
            "head-adoption",
            head=dead_head,
            adopter=adopter,
            sensors=list(orphan_globals),
        )


def run_multicluster_simulation(
    config: MultiClusterConfig = MultiClusterConfig(),
    tracer: Tracer | None = None,
) -> MultiClusterResult:
    """Run the shared-medium multi-cluster stack.

    ``tracer`` lets callers subscribe to PHY trace events before the run;
    it is entered via :meth:`Tracer.run_scope`, which resets per-run
    counters/records so a tracer reused across trials never leaks counts
    from one run into the next (subscribers stay registered).
    """
    if config.mode not in ("channels", "token", "uncoordinated"):
        raise ValueError(f"unknown mode {config.mode!r}")
    if tracer is None:
        tracer = Tracer()
    own_tel = _obs.Telemetry() if config.telemetry else None
    scope = nullcontext() if own_tel is None else _obs.use(own_tel)
    with scope, tracer.run_scope():
        tel = _obs.current()
        run_span = None
        if tel.enabled:
            run_span = tel.begin(
                "run",
                "multicluster-sim",
                perf_counter(),
                clock="wall",
                seed=config.seed,
                n_heads=config.n_heads,
                mode=config.mode,
            )
            tel.root = run_span
        result = _run_multicluster(config, tracer, tel if tel.enabled else None)
        if tel.enabled:
            tel.finish(
                run_span,
                perf_counter(),
                sim_time=result.elapsed,
                delivered=result.packets_delivered,
                collisions=result.collisions,
            )
            result.telemetry = tel
        return result


def _run_multicluster(
    config: MultiClusterConfig, tracer: Tracer, tel: "_obs.Telemetry | None"
) -> MultiClusterResult:
    sim = Simulator()
    sim.telemetry = tel
    streams = RngStreams(config.seed)
    field_rng = streams.get("field")
    sensors = field_rng.uniform(0, config.field_m, size=(config.n_sensors, 2))
    heads = _head_layout(config.n_heads, config.field_m, streams.get("heads"))
    net = form_clusters(sensors, heads, comm_range=config.sensor_range_m)

    # --- one shared medium over every sensor and every head -------------------
    all_positions = np.vstack([sensors, heads])
    n_total = all_positions.shape[0]
    prop = GROUND_SENSOR_PROPAGATION
    sensor_power = sensor_power_for_range(prop, config.sensor_range_m, 1e-11)
    tx_power = np.full(n_total, sensor_power)
    for h in range(config.n_heads):
        members = net.members[h]
        if members.size:
            d = np.sqrt(((sensors[members] - heads[h]) ** 2).sum(axis=1)).max()
        else:
            d = config.sensor_range_m
        tx_power[config.n_sensors + h] = 4.0 * sensor_power_for_range(
            prop, max(float(d), config.sensor_range_m), 1e-11
        )
    medium = RadioMedium(
        sim=sim,
        positions=all_positions,
        tx_power_w=tx_power,
        propagation=prop,
        bitrate_bps=config.bitrate,
        tracer=tracer,
    )

    # --- field mobility (armed only when asked: bit-for-bit otherwise) -----------
    mobility: _FieldMobility | None = None
    if config.mobility_speed_mps > 0:
        mobility = _FieldMobility(
            sim=sim,
            medium=medium,
            n_sensors=config.n_sensors,
            speed_mps=config.mobility_speed_mps,
            cycle_length=config.cycle_length,
            n_cycles=config.n_cycles,
            field_m=config.field_m,
            base_seed=config.seed,
        )

    # --- channel assignment -----------------------------------------------------
    if config.mode == "channels":
        adj = cluster_adjacency(net, interference_range=2 * config.sensor_range_m)
        channels = six_color_planar(adj)
    else:
        channels = np.zeros(config.n_heads, dtype=np.int64)

    # --- per-cluster stacks on shared PHY -----------------------------------------
    macs: list[PollingClusterMac] = []
    all_agents = []
    duty_estimates: list[float] = []
    for h in range(config.n_heads):
        members = [int(m) for m in net.members[h]]
        index_map = members + [config.n_sensors + h]
        transceivers = [
            Transceiver(sim, medium, g, energy=config.energy) for g in index_map
        ]
        for g in index_map:
            medium.set_channel(g, int(channels[h]))
        phy = ClusterPhy(
            sim=sim,
            cluster=net.clusters[h],
            medium=medium,
            transceivers=transceivers,
            tracer=tracer,
            index_map=index_map,
        )
        # discover in-cluster connectivity from the shared radio
        local_cluster = _discover_local_cluster(phy)
        if not local_cluster.is_connected():
            # strays beyond reach transmit nothing this run
            hops = local_cluster.min_hop_counts()
            packets = np.where(np.isfinite(hops), 1, 0).astype(np.int64)
            local_cluster = local_cluster.with_packets(packets)
        phy.cluster = local_cluster
        mac = PollingClusterMac(
            phy, cycle_length=config.cycle_length, cluster_id=h,
            engine=config.engine,
        )
        macs.append(mac)
        all_agents.append(mac.sensors)
        # nominal duty estimate for token windows (planning-only run: keep
        # its phantom requests out of the live trace)
        plan = mac.routing.routing_plan()
        nominal_slots = OnlinePollingScheduler(
            plan, mac.oracle, telemetry=_obs.NULL_TELEMETRY
        ).run().slots_elapsed
        slot = MacTimings().poll_slot_time(
            config.bitrate, DEFAULT_SIZES, DEFAULT_SIZES.data
        )
        duty_estimates.append(nominal_slots * slot * 2.0 + 0.2)

    # --- traffic --------------------------------------------------------------------
    sources = []
    source_by_global: dict[int, CbrSource] = {}
    for h, agents in enumerate(all_agents):
        cluster_sources = attach_cbr_sources(
            sim,
            agents,
            rate_bps=config.rate_bps,
            packet_bytes=config.packet_bytes,
            seed=config.seed * 101 + h,
        )
        sources.extend(cluster_sources)
        for agent, src in zip(agents, cluster_sources):
            source_by_global[int(net.members[h][agent.sensor])] = src

    # --- head survivability (armed only when asked: bit-for-bit otherwise) ------------
    coordinator: HeadFailoverCoordinator | None = None
    if config.head_failover or config.head_crashes:
        coordinator = HeadFailoverCoordinator(
            sim=sim,
            config=config,
            net=net,
            medium=medium,
            macs=macs,
            channels=channels,
            sensor_positions=sensors,
            head_positions=heads,
            source_by_global=source_by_global,
        )
        coordinator.arm()

    # --- start: aligned, staggered, or concurrent -------------------------------------
    if config.mode == "token":
        offset = 0.0
        for mac, est in zip(macs, duty_estimates):
            _start_delayed(sim, mac, config.n_cycles, offset)
            offset += est
    else:
        for mac in macs:
            mac.start(config.n_cycles)

    sim.run(until=config.n_cycles * config.cycle_length)
    seen_trx: set[int] = set()
    for mac in macs:
        # Adopted transceivers appear in two PHYs; finalize each radio once
        # (it would be harmless anyway — the meter integrates zero time on
        # the second call at the same instant — but keep the ledger obvious).
        for trx in mac.phy.transceivers:
            if id(trx) not in seen_trx:
                seen_trx.add(id(trx))
                trx.finalize()
    final_staleness = 0.0
    if mobility is not None:
        final_staleness = assignment_staleness(
            medium.positions[: config.n_sensors],
            heads,
            net.assignment,
        )
    return MultiClusterResult(
        config=config,
        net=net,
        macs=macs,
        channels=channels,
        elapsed=sim.now,
        packets_generated=sum(s.generated for s in sources),
        collisions=tracer.counts.get("phy_rx_collision", 0),
        coordinator=coordinator,
        mobility_epochs=mobility.epochs if mobility is not None else 0,
        final_assignment_staleness=final_staleness,
    )


def _discover_local_cluster(phy: ClusterPhy) -> Cluster:
    """In-cluster hearing from the shared medium, honoring channels."""
    medium = phy.medium
    n = phy.n_sensors
    hears = np.zeros((n, n), dtype=bool)
    head_hears = np.zeros(n, dtype=bool)
    for i in range(n):
        gi = phy.phy_index(i)
        head_hears[i] = medium.hears(phy.phy_index(-1), gi)
        for j in range(n):
            if i != j:
                hears[i, j] = medium.hears(gi, phy.phy_index(j))
    base = phy.cluster
    return Cluster(
        hears=hears,
        head_hears=head_hears,
        packets=base.packets.copy(),
        energy=base.energy.copy(),
        positions=None if base.positions is None else base.positions.copy(),
        head_position=None if base.head_position is None else base.head_position.copy(),
    )


def _start_delayed(sim: Simulator, mac: PollingClusterMac, n_cycles: int, delay: float) -> None:
    """Put the cluster to sleep until its token window, then run."""
    if delay <= 0:
        mac.start(n_cycles)
        return
    for agent in mac.sensors:
        agent.trx.sleep()
        sim.at(delay, agent.trx.wake)
    sim.at(delay, mac.start, n_cycles)
