"""Multi-cluster polling on one shared medium (Sec. V-G, executed).

Several cluster heads and their Voronoi-formed clusters share one physical
radio space.  Without coordination, boundary sensors of adjacent clusters
collide whenever their heads poll simultaneously — and the heads' own
high-power poll broadcasts jam each other across cluster borders.  The
paper offers two remedies, both runnable here:

* ``mode="uncoordinated"`` — everyone on one channel, cycles aligned: the
  failure case (inter-cluster collisions eat packets);
* ``mode="token"`` — one channel, but duty cycles staggered into windows
  (the head-to-head token of Sec. V-G; the second-layer token passing
  itself is out of band);
* ``mode="channels"`` — adjacent clusters on different radio channels via
  the <= 6-coloring; everyone polls concurrently.

All three run the full per-cluster polling MAC; the shared
:class:`~repro.radio.channel.RadioMedium` decides what actually decodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.online import OnlinePollingScheduler
from ..mac.base import (
    GROUND_SENSOR_PROPAGATION,
    ClusterPhy,
    MacTimings,
    sensor_power_for_range,
)
from ..mac.pollmac import PollingClusterMac, phy_truth_oracle
from ..radio.channel import RadioMedium
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES
from ..radio.transceiver import Transceiver
from ..sim.kernel import Simulator
from ..sim.rng import RngStreams
from ..sim.trace import Tracer
from ..topology.cluster import Cluster
from ..topology.forming import FormedNetwork, form_clusters
from .cluster_sim import cluster_from_phy
from .coloring import six_color_planar
from ..topology.forming import cluster_adjacency
from ..traffic.cbr import attach_cbr_sources

__all__ = ["MultiClusterConfig", "MultiClusterResult", "run_multicluster_simulation"]


@dataclass(frozen=True)
class MultiClusterConfig:
    n_sensors: int = 60
    n_heads: int = 3
    field_m: float = 360.0
    sensor_range_m: float = 55.0
    rate_bps: float = 20.0
    cycle_length: float = 6.0
    n_cycles: int = 5
    seed: int = 0
    mode: str = "channels"  # "channels" | "token" | "uncoordinated"
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    energy: EnergyParams = EnergyParams()


@dataclass
class MultiClusterResult:
    config: MultiClusterConfig
    net: FormedNetwork
    macs: list[PollingClusterMac]
    channels: np.ndarray
    elapsed: float
    packets_generated: int
    collisions: int

    @property
    def packets_delivered(self) -> int:
        return sum(mac.packets_delivered for mac in self.macs)

    @property
    def packets_failed(self) -> int:
        return sum(mac.packets_failed for mac in self.macs)

    @property
    def delivery_ratio(self) -> float:
        eligible = self.packets_delivered + self.packets_failed
        if eligible == 0:
            return 1.0
        return self.packets_delivered / eligible

    def per_cluster_delivery(self) -> list[tuple[int, int]]:
        return [(mac.cluster_id, mac.packets_delivered) for mac in self.macs]


def _head_layout(k: int, field: float, rng) -> np.ndarray:
    """Spread heads over the field deterministically (jittered grid)."""
    cols = int(np.ceil(np.sqrt(k)))
    rows = int(np.ceil(k / cols))
    xs = (np.arange(cols) + 0.5) * field / cols
    ys = (np.arange(rows) + 0.5) * field / rows
    pts = [(x, y) for y in ys for x in xs][:k]
    jitter = rng.uniform(-0.05 * field, 0.05 * field, size=(k, 2))
    return np.asarray(pts) + jitter


def run_multicluster_simulation(
    config: MultiClusterConfig = MultiClusterConfig(),
) -> MultiClusterResult:
    if config.mode not in ("channels", "token", "uncoordinated"):
        raise ValueError(f"unknown mode {config.mode!r}")
    sim = Simulator()
    streams = RngStreams(config.seed)
    field_rng = streams.get("field")
    sensors = field_rng.uniform(0, config.field_m, size=(config.n_sensors, 2))
    heads = _head_layout(config.n_heads, config.field_m, streams.get("heads"))
    net = form_clusters(sensors, heads, comm_range=config.sensor_range_m)

    # --- one shared medium over every sensor and every head -------------------
    tracer = Tracer()
    all_positions = np.vstack([sensors, heads])
    n_total = all_positions.shape[0]
    prop = GROUND_SENSOR_PROPAGATION
    sensor_power = sensor_power_for_range(prop, config.sensor_range_m, 1e-11)
    tx_power = np.full(n_total, sensor_power)
    for h in range(config.n_heads):
        members = net.members[h]
        if members.size:
            d = np.sqrt(((sensors[members] - heads[h]) ** 2).sum(axis=1)).max()
        else:
            d = config.sensor_range_m
        tx_power[config.n_sensors + h] = 4.0 * sensor_power_for_range(
            prop, max(float(d), config.sensor_range_m), 1e-11
        )
    medium = RadioMedium(
        sim=sim,
        positions=all_positions,
        tx_power_w=tx_power,
        propagation=prop,
        bitrate_bps=config.bitrate,
        tracer=tracer,
    )

    # --- channel assignment -----------------------------------------------------
    if config.mode == "channels":
        adj = cluster_adjacency(net, interference_range=2 * config.sensor_range_m)
        channels = six_color_planar(adj)
    else:
        channels = np.zeros(config.n_heads, dtype=np.int64)

    # --- per-cluster stacks on shared PHY -----------------------------------------
    macs: list[PollingClusterMac] = []
    all_agents = []
    duty_estimates: list[float] = []
    for h in range(config.n_heads):
        members = [int(m) for m in net.members[h]]
        index_map = members + [config.n_sensors + h]
        transceivers = [
            Transceiver(sim, medium, g, energy=config.energy) for g in index_map
        ]
        for g in index_map:
            medium.set_channel(g, int(channels[h]))
        phy = ClusterPhy(
            sim=sim,
            cluster=net.clusters[h],
            medium=medium,
            transceivers=transceivers,
            tracer=tracer,
            index_map=index_map,
        )
        # discover in-cluster connectivity from the shared radio
        local_cluster = _discover_local_cluster(phy)
        if not local_cluster.is_connected():
            # strays beyond reach transmit nothing this run
            hops = local_cluster.min_hop_counts()
            packets = np.where(np.isfinite(hops), 1, 0).astype(np.int64)
            local_cluster = local_cluster.with_packets(packets)
        phy.cluster = local_cluster
        mac = PollingClusterMac(
            phy, cycle_length=config.cycle_length, cluster_id=h
        )
        macs.append(mac)
        all_agents.append(mac.sensors)
        # nominal duty estimate for token windows
        plan = mac.routing.routing_plan()
        nominal_slots = OnlinePollingScheduler(plan, mac.oracle).run().slots_elapsed
        slot = MacTimings().poll_slot_time(
            config.bitrate, DEFAULT_SIZES, DEFAULT_SIZES.data
        )
        duty_estimates.append(nominal_slots * slot * 2.0 + 0.2)

    # --- traffic --------------------------------------------------------------------
    sources = []
    for h, agents in enumerate(all_agents):
        sources.extend(
            attach_cbr_sources(
                sim,
                agents,
                rate_bps=config.rate_bps,
                packet_bytes=config.packet_bytes,
                seed=config.seed * 101 + h,
            )
        )

    # --- start: aligned, staggered, or concurrent -------------------------------------
    if config.mode == "token":
        offset = 0.0
        for mac, est in zip(macs, duty_estimates):
            _start_delayed(sim, mac, config.n_cycles, offset)
            offset += est
    else:
        for mac in macs:
            mac.start(config.n_cycles)

    sim.run(until=config.n_cycles * config.cycle_length)
    for mac in macs:
        mac.phy.finalize()
    return MultiClusterResult(
        config=config,
        net=net,
        macs=macs,
        channels=channels,
        elapsed=sim.now,
        packets_generated=sum(s.generated for s in sources),
        collisions=tracer.counts.get("phy_rx_collision", 0),
    )


def _discover_local_cluster(phy: ClusterPhy) -> Cluster:
    """In-cluster hearing from the shared medium, honoring channels."""
    medium = phy.medium
    n = phy.n_sensors
    hears = np.zeros((n, n), dtype=bool)
    head_hears = np.zeros(n, dtype=bool)
    for i in range(n):
        gi = phy.phy_index(i)
        head_hears[i] = medium.hears(phy.phy_index(-1), gi)
        for j in range(n):
            if i != j:
                hears[i, j] = medium.hears(gi, phy.phy_index(j))
    base = phy.cluster
    return Cluster(
        hears=hears,
        head_hears=head_hears,
        packets=base.packets.copy(),
        energy=base.energy.copy(),
        positions=None if base.positions is None else base.positions.copy(),
        head_position=None if base.head_position is None else base.head_position.copy(),
    )


def _start_delayed(sim: Simulator, mac: PollingClusterMac, n_cycles: int, delay: float) -> None:
    """Put the cluster to sleep until its token window, then run."""
    if delay <= 0:
        mac.start(n_cycles)
        return
    for agent in mac.sensors:
        agent.trx.sleep()
        sim.at(delay, agent.trx.wake)
    sim.at(delay, mac.start, n_cycles)
