"""Inter-cluster interference removal (paper Sec. V-G).

Two mechanisms, both implemented:

* **Token rotation** — only the cluster head holding the token may run its
  duty cycle; simple, correct, and fine when clusters are few and duty
  cycles short relative to the cycle.  :class:`TokenSchedule` produces the
  per-cluster transmission windows and utilization figures.
* **Channel coloring** — nearby clusters get different radio channels via
  the <= 6-color planar coloring (:mod:`repro.net.coloring`); all clusters
  then poll concurrently.  :func:`assign_channels` returns the channel map
  and :func:`concurrency_gain` quantifies the speedup over token rotation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.forming import FormedNetwork, cluster_adjacency
from .coloring import is_proper_coloring, six_color_planar

__all__ = ["TokenSchedule", "assign_channels", "concurrency_gain"]


@dataclass
class TokenSchedule:
    """Round-robin token among cluster heads.

    ``windows[k]`` = (start, end) of cluster *k*'s transmission window in
    each rotation period; the period equals the sum of per-cluster duty
    durations (plus a fixed token handoff cost per hop).
    """

    duty_durations: list[float]
    handoff_cost: float = 0.0

    def __post_init__(self) -> None:
        if any(d < 0 for d in self.duty_durations):
            raise ValueError("duty durations must be non-negative")
        if self.handoff_cost < 0:
            raise ValueError("handoff cost must be non-negative")

    @property
    def n_clusters(self) -> int:
        return len(self.duty_durations)

    @property
    def period(self) -> float:
        return sum(self.duty_durations) + self.handoff_cost * self.n_clusters

    def windows(self) -> list[tuple[float, float]]:
        out = []
        t = 0.0
        for d in self.duty_durations:
            out.append((t, t + d))
            t += d + self.handoff_cost
        return out

    def holder_at(self, time: float) -> int | None:
        """Which cluster may transmit at *time* (None during handoffs)."""
        t = time % self.period if self.period > 0 else 0.0
        for k, (start, end) in enumerate(self.windows()):
            if start <= t < end:
                return k
        return None

    def utilization(self) -> float:
        """Fraction of the period someone is transmitting."""
        if self.period <= 0:
            return 0.0
        return sum(self.duty_durations) / self.period


def assign_channels(net: FormedNetwork, interference_range: float) -> np.ndarray:
    """Color the cluster-adjacency graph; returns a channel per cluster.

    Raises if the coloring ends up improper (cannot happen; defensive) and
    warns through the return value's max: planar layouts stay <= 6.
    """
    adj = cluster_adjacency(net, interference_range)
    colors = six_color_planar(adj)
    if not is_proper_coloring(adj, colors):  # pragma: no cover - invariant
        raise RuntimeError("coloring is improper — internal error")
    return colors


def concurrency_gain(
    net: FormedNetwork,
    interference_range: float,
    duty_durations: list[float],
) -> float:
    """Rotation period / colored-schedule period.

    With channels assigned, *every* cluster can poll concurrently: adjacent
    clusters sit on different channels, and same-channel clusters are
    non-adjacent (out of interference range) by construction.  The colored
    schedule therefore lasts only as long as the slowest cluster, versus
    the token rotation's sum — the paper's argument for coloring over
    token rotation.  (The call still computes and checks the coloring, so
    an inconsistent adjacency surfaces here.)
    """
    if len(duty_durations) != net.n_clusters:
        raise ValueError("need one duty duration per cluster")
    token = TokenSchedule(duty_durations=list(duty_durations))
    assign_channels(net, interference_range)  # validates colorability
    colored_period = max(duty_durations, default=0.0)
    if colored_period <= 0:
        return 1.0
    return token.period / colored_period
