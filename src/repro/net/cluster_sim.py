"""End-to-end single-cluster simulation: deployment -> PHY -> polling MAC.

This is the harness the evaluation benches call.  It follows the paper's
setup order: deploy sensors, *discover* connectivity from the actual radio
(Sec. V-B — the routing layer never peeks at geometry), compute min-max
relay routing, then run duty cycles with CBR traffic and report active
time, throughput and energy.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .. import obs as _obs
from .. import validate as _validate
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..mac.base import ClusterPhy, MacTimings, build_cluster_phy
from ..mac.pollmac import PollingClusterMac
from ..metrics.availability import AvailabilityReport, availability_report
from ..metrics.degradation import DegradationReport, degradation_report
from ..metrics.staleness import StalenessReport, staleness_report
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES, FrameSizes
from ..routing.warmcache import SolverCache
from ..sim.kernel import Simulator
from ..topology.cluster import Cluster
from ..topology.deployment import Deployment, uniform_square
from ..topology.recluster import StalenessTrigger
from ..traffic.cbr import attach_cbr_sources

__all__ = ["PollingSimConfig", "PollingSimResult", "run_polling_simulation", "cluster_from_phy"]


def cluster_from_phy(phy_cluster: Cluster, phy: ClusterPhy) -> Cluster:
    """Rebuild the cluster's hearing relations from the actual medium.

    Mirrors Sec. V-B connectivity discovery: the links routing may use are
    exactly the links the radio can decode, not the geometric disc the
    deployment assumed.  (For monotone propagation the two coincide; tests
    assert that, and shadowing ablations rely on the difference.)
    """
    hearing = phy.medium.hearing_matrix()
    n = phy.n_sensors
    return Cluster(
        hears=hearing[:n, :n],
        head_hears=hearing[n, :n],
        packets=phy_cluster.packets.copy(),
        energy=phy_cluster.energy.copy(),
        positions=None if phy_cluster.positions is None else phy_cluster.positions.copy(),
        head_position=None
        if phy_cluster.head_position is None
        else phy_cluster.head_position.copy(),
    )


@dataclass(frozen=True)
class PollingSimConfig:
    """Everything a polling-cluster run needs (paper Sec. VI defaults)."""

    n_sensors: int = 30
    rate_bps: float = 20.0  # per-sensor data generating rate
    cycle_length: float = 10.0
    n_cycles: int = 10
    seed: int = 0
    side_m: float = 200.0
    sensor_range_m: float = 55.0
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    max_group_size: int = 2
    frame_error_rate: float = 0.0
    use_sectors: bool = False  # Sec. IV operation: sectors polled in turn
    energy: EnergyParams = EnergyParams()
    timings: MacTimings = MacTimings()
    # Fault injection (None = the exact pre-fault code path, bit for bit).
    # A non-empty plan also arms the head's failure detection; the
    # thresholds below only matter when it is armed.
    fault_plan: FaultPlan | None = None
    retry_limit: int | None = 12
    dead_after_misses: int = 2
    # Proactive survivability: k node-disjoint backup paths per sensor for
    # in-cycle failover.  0 (the default) is the exact pre-survivability
    # code path, bit for bit.
    backup_k: int = 0
    # Online re-clustering under churn/mobility (DESIGN.md §11): "off" keeps
    # today's purely reactive machinery (announced leaves still repair;
    # joiners are never admitted), "staleness" re-forms when the trigger
    # fires, "periodic" re-forms on a fixed cadence.  "off" with no dynamic
    # plan is the exact pre-churn code path, bit for bit.
    recluster: str = "off"
    recluster_trigger: StalenessTrigger | None = None
    # Slot execution engine (DESIGN.md §12): "vector" (default) batches
    # clean polling slots into closed-form numpy updates, "scalar" forces
    # the event-at-a-time oracle.  The two are bit-identical by contract.
    engine: str = "vector"
    # Cross-trial solver warm-start cache (DESIGN.md §12): pass one
    # SolverCache to every trial of a sweep and grid points sharing a
    # topology fingerprint reuse the Dinic routing + backup solves
    # bit-for-bit instead of recomputing them.  None (the default) solves
    # cold, exactly as before.
    solver_cache: SolverCache | None = None
    # Telemetry (repro.obs).  False (the default) is the exact untraced
    # code path, bit for bit — unless a collector was already activated
    # around the call with ``obs.use(...)``, which this flag cannot turn
    # off.  True creates a run-local collector and attaches it to
    # ``PollingSimResult.telemetry``.
    telemetry: bool = False


@dataclass
class PollingSimResult:
    """Measurements from one run."""

    config: PollingSimConfig
    phy: ClusterPhy
    mac: PollingClusterMac
    elapsed: float
    packets_generated: int
    packets_delivered: int
    active_fraction: np.ndarray  # per sensor
    injector: FaultInjector | None = None  # present when a fault plan ran
    violations: list[_validate.InvariantViolation] = field(default_factory=list)
    """Invariant violations the runtime monitor recorded during this run
    (always empty for a healthy run; populated in ``warn`` mode — ``strict``
    raises instead, see :mod:`repro.validate`)."""
    telemetry: "_obs.Telemetry | None" = None
    """The run's telemetry collector (``config.telemetry=True`` or an
    ambient ``obs.use(...)`` scope); ``None`` for untraced runs."""

    @property
    def degradation(self) -> DegradationReport:
        """Graceful-degradation view of the run (meaningful for faulted
        runs; trivially perfect for fault-free ones)."""
        return degradation_report(self.mac, self.injector)

    @property
    def availability(self) -> AvailabilityReport:
        """Recovery-latency view: per-fault time-to-recover, delivery
        continuity, and the failover/repair counters (see
        :mod:`repro.metrics.availability`)."""
        return availability_report(
            self.mac, self.injector, self.config.cycle_length
        )

    @property
    def staleness(self) -> StalenessReport:
        """Dynamic-network view: plan staleness, re-cluster cost, and
        coverage under churn (see :mod:`repro.metrics.staleness`;
        trivially fresh for static runs)."""
        return staleness_report(
            self.mac, self.injector, self.config.cycle_length
        )

    @property
    def mean_active_fraction(self) -> float:
        return float(self.active_fraction.mean()) if self.active_fraction.size else 0.0

    @property
    def throughput_ratio(self) -> float:
        """Delivered / eligible.  Packets generated during the final
        in-progress cycle haven't had a polling opportunity yet, so the
        denominator excludes anything still queued at the sensors."""
        eligible = self.packets_delivered + self.mac.packets_failed
        still_queued = self.packets_generated - eligible - self._pending()
        del still_queued  # (kept for clarity; eligible is the denominator)
        if eligible == 0:
            return 1.0
        return self.packets_delivered / eligible

    def _pending(self) -> int:
        return sum(agent.pending_count for agent in self.mac.sensors)

    @property
    def throughput_bps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.packets_delivered * self.config.packet_bytes / self.elapsed

    @property
    def offered_bps(self) -> float:
        return self.config.rate_bps * self.config.n_sensors

    def duty_fraction(self) -> float:
        """Cluster-level duty-cycle fraction: duty time / cycle time."""
        stats = self.mac.cycle_stats
        if not stats:
            return 0.0
        total_duty = sum(s.duty_time for s in stats)
        return total_duty / self.elapsed


def run_polling_simulation(
    config: PollingSimConfig = PollingSimConfig(),
    deployment: Deployment | None = None,
) -> PollingSimResult:
    """Run the full DES polling stack and collect the paper's metrics.

    Telemetry: with ``config.telemetry=True`` a run-local
    :class:`repro.obs.Telemetry` collector is activated around the run and
    returned on :attr:`PollingSimResult.telemetry`.  Alternatively an
    ambient collector activated by the caller (``with obs.use(tel): ...``)
    is picked up and returned the same way — that is how sweeps aggregate
    several runs into one collector.
    """
    monitor = _validate.MONITOR
    mark = monitor.mark()
    own_tel = _obs.Telemetry() if config.telemetry else None
    scope = nullcontext() if own_tel is None else _obs.use(own_tel)
    with scope:
        tel = _obs.current()
        traced = tel.enabled
        run_span = None
        if traced:
            run_span = tel.begin(
                "run",
                "polling-sim",
                perf_counter(),
                clock="wall",
                seed=config.seed,
                n_sensors=config.n_sensors,
                n_cycles=config.n_cycles,
                faulted=config.fault_plan is not None
                and not config.fault_plan.is_empty,
            )
            # Cycle spans parent on the collector's root; point it at this
            # run so repeated runs under one ambient collector nest right.
            tel.root = run_span
        sim = Simulator()
        if traced:
            sim.telemetry = tel
        dep = deployment or uniform_square(
            config.n_sensors,
            seed=config.seed,
            side=config.side_m,
            comm_range=config.sensor_range_m,
        )
        # Churn pre-allocation: the plan's joiners get PHY slots (appended
        # after the deployed sensors, in plan order) so ids, frames and
        # energy meters exist from t=0; their radios stay asleep and they
        # are excluded from planning until their join fires and a re-form
        # admits them.  with_positions() returns a fresh Deployment, so the
        # cached adjacency can never go stale.
        plan = config.fault_plan
        joiner_ids: list[int] = []
        if plan is not None and plan.joins:
            base_n = dep.n_sensors
            joiner_ids = list(range(base_n, base_n + len(plan.joins)))
            join_pos = np.array([j.position for j in plan.joins], dtype=np.float64)
            dep = dep.with_positions(np.vstack([dep.positions, join_pos]))
        geo_cluster = Cluster.from_deployment(dep)
        phy = build_cluster_phy(
            sim,
            geo_cluster,
            sensor_range_m=config.sensor_range_m,
            bitrate=config.bitrate,
            energy=config.energy,
            frame_error_rate=config.frame_error_rate,
            error_seed=config.seed,
        )
        # Discover connectivity from the radio, then route on what was heard.
        phy.cluster = cluster_from_phy(geo_cluster, phy)
        # Fault injection arms first so bursty-link loss shapes the run from
        # t=0; an empty/absent plan schedules nothing and draws no RNG, keeping
        # the fault-free path bit-for-bit identical.
        injector: FaultInjector | None = None
        faulted = config.fault_plan is not None and not config.fault_plan.is_empty
        if faulted:
            injector = FaultInjector(
                sim,
                phy,
                config.fault_plan,
                base_seed=config.seed,
                cycle_length=config.cycle_length,
                n_cycles=config.n_cycles,
                joiner_ids=joiner_ids or None,
            )
        mac = PollingClusterMac(
            phy,
            cycle_length=config.cycle_length,
            max_group_size=config.max_group_size,
            timings=config.timings,
            use_sectors=config.use_sectors,
            retry_limit=config.retry_limit,
            failure_detection=faulted,
            dead_after_misses=config.dead_after_misses,
            backup_k=config.backup_k,
            absent=set(joiner_ids) or None,
            recluster=config.recluster,
            recluster_trigger=config.recluster_trigger,
            engine=config.engine,
            solver_cache=config.solver_cache,
        )
        if injector is not None:
            # Churn events (join/leave) report straight to the head MAC; the
            # binding is a plain attribute set, so static plans are untouched.
            injector.membership_listener = mac
        sources = attach_cbr_sources(
            sim,
            mac.sensors,
            rate_bps=config.rate_bps,
            packet_bytes=config.packet_bytes,
            seed=config.seed,
            start_ats={
                node: join.at for node, join in zip(joiner_ids, plan.joins)
            }
            if joiner_ids
            else None,
        )
        mac.start(config.n_cycles)
        sim.run(until=config.n_cycles * config.cycle_length)
        phy.finalize()
        packets_generated = sum(s.generated for s in sources)
        if monitor.enabled:
            hint = (
                f"PollingSimConfig(seed={config.seed}, n_sensors={config.n_sensors}, "
                f"n_cycles={config.n_cycles}, faults={'yes' if faulted else 'no'})"
            )
            # End-to-end conservation at the head: the delivered application
            # stream is duplicate-free and never exceeds what sensors generated.
            _validate.check_delivered_stream(
                ((p.origin, p.seq) for p in mac.delivered_packets()),
                sim_time=sim.now,
                hint=hint,
            )
            if mac.packets_delivered > packets_generated:
                monitor.record(
                    "mac.delivery-conservation",
                    f"head collected {mac.packets_delivered} packets but sensors "
                    f"only generated {packets_generated}",
                    sim_time=sim.now,
                    hint=hint,
                )
        if traced:
            # Post-finalize ground truth the inspector reconciles against
            # metrics/energy.py (sensors in local order, head last).
            tel.extras["energy_per_radio_j"] = [
                trx.meter.consumed_j for trx in phy.transceivers
            ]
            # Accumulating counter (not a gauge): trials that run several
            # sims sum their energy, and sweep-level merges stay lossless —
            # the campaign monitor MAD-scans this for energy outliers.
            tel.metrics.counter("mac.energy_j").inc(
                float(sum(tel.extras["energy_per_radio_j"]))
            )
            tel.extras["seed"] = config.seed
            tel.extras["n_sensors"] = config.n_sensors
            tel.finish(
                run_span,
                perf_counter(),
                sim_time=sim.now,
                generated=packets_generated,
                delivered=mac.packets_delivered,
            )
        return PollingSimResult(
            config=config,
            phy=phy,
            mac=mac,
            elapsed=sim.now,
            packets_generated=packets_generated,
            packets_delivered=mac.packets_delivered,
            active_fraction=phy.sensor_active_fraction(),
            injector=injector,
            violations=monitor.since(mark),
            telemetry=tel if traced else None,
        )
