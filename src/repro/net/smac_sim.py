"""End-to-end S-MAC + AODV run (the Fig. 7(b) baseline harness)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mac.base import build_cluster_phy
from ..mac.smac import SmacNetwork, SmacParams
from ..radio.energy import EnergyParams
from ..sim.kernel import Simulator
from ..topology.cluster import Cluster
from ..topology.deployment import Deployment, uniform_square
from ..traffic.cbr import attach_cbr_sources

__all__ = ["SmacSimConfig", "SmacSimResult", "run_smac_simulation"]


@dataclass(frozen=True)
class SmacSimConfig:
    n_sensors: int = 30
    rate_bps: float = 7.0  # per-sensor; total offered = n * rate
    duty_cycle: float = 1.0
    duration: float = 100.0
    warmup: float = 10.0
    seed: int = 0
    side_m: float = 200.0
    sensor_range_m: float = 55.0
    bitrate: float = 200_000.0
    packet_bytes: int = 80
    frame_length: float = 1.0
    energy: EnergyParams = EnergyParams()


@dataclass
class SmacSimResult:
    config: SmacSimConfig
    net: SmacNetwork
    elapsed: float
    packets_generated: int
    packets_delivered: int
    control_frames: int
    active_fraction: np.ndarray

    @property
    def throughput_bps(self) -> float:
        span = self.elapsed - self.config.warmup
        if span <= 0:
            return 0.0
        return self._delivered_after_warmup * self.config.packet_bytes / span

    @property
    def _delivered_after_warmup(self) -> int:
        return sum(
            1 for p in self.net.sink.delivered if p.created >= self.config.warmup
        )

    @property
    def offered_bps(self) -> float:
        return self.config.rate_bps * self.config.n_sensors

    @property
    def delivery_ratio(self) -> float:
        if self.packets_generated == 0:
            return 1.0
        return self.packets_delivered / self.packets_generated


def run_smac_simulation(
    config: SmacSimConfig = SmacSimConfig(),
    deployment: Deployment | None = None,
) -> SmacSimResult:
    """Run S-MAC + AODV over the same PHY the polling MAC uses."""
    sim = Simulator()
    dep = deployment or uniform_square(
        config.n_sensors,
        seed=config.seed,
        side=config.side_m,
        comm_range=config.sensor_range_m,
    )
    cluster = Cluster.from_deployment(dep)
    phy = build_cluster_phy(
        sim,
        cluster,
        sensor_range_m=config.sensor_range_m,
        bitrate=config.bitrate,
        energy=config.energy,
        # The baseline is a homogeneous network: the sink has sensor-grade
        # power (AODV assumes symmetric links; the polling system is what
        # exploits the heterogeneous high-power head).
        homogeneous_head=True,
    )
    params = SmacParams(
        frame_length=config.frame_length, duty_cycle=config.duty_cycle
    )
    net = SmacNetwork(phy, params=params, seed=config.seed)
    sources = attach_cbr_sources(
        sim,
        net.sensors,
        rate_bps=config.rate_bps,
        packet_bytes=config.packet_bytes,
        seed=config.seed,
    )
    net.start()
    sim.run(until=config.duration)
    phy.finalize()
    return SmacSimResult(
        config=config,
        net=net,
        elapsed=sim.now,
        packets_generated=net.packets_generated,
        packets_delivered=net.packets_delivered,
        control_frames=net.control_overhead(),
        active_fraction=phy.sensor_active_fraction(),
    )
