"""Whole-network assembly: cluster simulations, multi-cluster coordination."""

from .cluster_sim import (
    PollingSimConfig,
    PollingSimResult,
    cluster_from_phy,
    run_polling_simulation,
)
from .coloring import greedy_coloring, is_proper_coloring, six_color_planar
from .multicluster import TokenSchedule, assign_channels, concurrency_gain
from .multicluster_sim import (
    AdoptionEvent,
    FieldHandoffEvent,
    FieldReformCoordinator,
    HeadFailoverCoordinator,
    MultiClusterConfig,
    MultiClusterResult,
    run_multicluster_simulation,
)
from .smac_sim import SmacSimConfig, SmacSimResult, run_smac_simulation

__all__ = [
    "PollingSimConfig",
    "PollingSimResult",
    "run_polling_simulation",
    "cluster_from_phy",
    "SmacSimConfig",
    "SmacSimResult",
    "run_smac_simulation",
    "six_color_planar",
    "greedy_coloring",
    "is_proper_coloring",
    "TokenSchedule",
    "MultiClusterConfig",
    "MultiClusterResult",
    "AdoptionEvent",
    "FieldHandoffEvent",
    "FieldReformCoordinator",
    "HeadFailoverCoordinator",
    "run_multicluster_simulation",
    "assign_channels",
    "concurrency_gain",
]
