"""Channel assignment by graph coloring (paper Sec. V-G).

Adjacent clusters (whose boundary sensors can interfere) must use different
radio channels.  The cluster-adjacency graph of a planar head layout is
planar, so 4 colors suffice in principle; the paper settles for the simple
classical algorithm guaranteeing **at most 6 colors**: a planar graph always
has a vertex of degree <= 5, so peel minimum-degree vertices onto a stack
and color greedily on the way back.
"""

from __future__ import annotations

import numpy as np

__all__ = ["six_color_planar", "greedy_coloring", "is_proper_coloring"]


def _validate(adj: np.ndarray) -> np.ndarray:
    adj = np.asarray(adj, dtype=bool)
    n = adj.shape[0]
    if adj.shape != (n, n):
        raise ValueError(f"adjacency must be square, got {adj.shape}")
    if not np.array_equal(adj, adj.T):
        raise ValueError("adjacency must be symmetric")
    if np.diagonal(adj).any():
        raise ValueError("no self-loops allowed")
    return adj


def six_color_planar(adj: np.ndarray) -> np.ndarray:
    """Min-degree-peeling coloring; <= 6 colors on planar graphs.

    Works on any graph (colors <= max_core_degree + 1); the 6-color bound
    holds whenever every subgraph has a vertex of degree <= 5, which planar
    graphs guarantee.
    """
    adj = _validate(adj)
    n = adj.shape[0]
    remaining = np.ones(n, dtype=bool)
    degree = adj.sum(axis=1).astype(np.int64)
    stack: list[int] = []
    work_adj = adj.copy()
    for _ in range(n):
        candidates = np.flatnonzero(remaining)
        v = int(candidates[np.argmin(degree[candidates])])
        stack.append(v)
        remaining[v] = False
        neighbors = np.flatnonzero(work_adj[v] & remaining)
        degree[neighbors] -= 1
        work_adj[v, :] = False
        work_adj[:, v] = False
    colors = np.full(n, -1, dtype=np.int64)
    for v in reversed(stack):
        used = {int(colors[u]) for u in np.flatnonzero(adj[v]) if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def greedy_coloring(adj: np.ndarray, order: list[int] | None = None) -> np.ndarray:
    """Plain first-fit coloring in a given vertex order (baseline)."""
    adj = _validate(adj)
    n = adj.shape[0]
    seq = list(order) if order is not None else list(range(n))
    if sorted(seq) != list(range(n)):
        raise ValueError("order must be a permutation of the vertices")
    colors = np.full(n, -1, dtype=np.int64)
    for v in seq:
        used = {int(colors[u]) for u in np.flatnonzero(adj[v]) if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def is_proper_coloring(adj: np.ndarray, colors: np.ndarray) -> bool:
    """No edge joins two same-colored vertices, and all vertices colored."""
    adj = _validate(adj)
    colors = np.asarray(colors)
    if (colors < 0).any():
        return False
    ii, jj = np.nonzero(adj)
    return bool((colors[ii] != colors[jj]).all())
