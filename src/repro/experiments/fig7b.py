"""Fig. 7(b) — throughput vs offered load: multi-hop polling vs S-MAC+AODV.

30 sensors; total offered load swept up to 1200 Bps (per-sensor rates up to
40 Bps).  The paper's result, which this module regenerates on our DES:

* the polling scheme delivers 100% of the offered load at every point
  (its line is y = x);
* S-MAC+AODV falls below the offered load even with *no* sleeping once the
  load is high (routing-control overhead + collision losses), and collapses
  further as the duty cycle shrinks — despite polling's sensors being
  active far less of the time than any of the S-MAC configurations.
"""

from __future__ import annotations

from ..net.cluster_sim import PollingSimConfig, run_polling_simulation
from ..net.smac_sim import SmacSimConfig, run_smac_simulation
from .common import print_table, series_from_rows

__all__ = ["DEFAULT_OFFERED", "DEFAULT_DUTIES", "run", "main"]

DEFAULT_OFFERED = (210.0, 450.0, 750.0, 990.0, 1200.0)  # total Bps at 30 sensors
DEFAULT_DUTIES = (1.0, 0.9, 0.7, 0.5, 0.3)


def run(
    offered_loads: tuple[float, ...] = DEFAULT_OFFERED,
    duty_cycles: tuple[float, ...] = DEFAULT_DUTIES,
    n_sensors: int = 30,
    duration: float = 60.0,
    warmup: float = 10.0,
    polling_cycles: int = 10,
    polling_cycle_length: float = 5.0,
    seed: int = 0,
    engine: str = "vector",
) -> list[dict]:
    rows: list[dict] = []
    for offered in offered_loads:
        rate = offered / n_sensors
        # --- multi-hop polling
        poll = run_polling_simulation(
            PollingSimConfig(
                n_sensors=n_sensors,
                rate_bps=rate,
                cycle_length=polling_cycle_length,
                n_cycles=polling_cycles,
                seed=seed,
                engine=engine,
            )
        )
        rows.append(
            {
                "scheme": "Multihop Polling",
                "offered_bps": offered,
                "throughput_bps": poll.throughput_ratio * offered,
                "delivery_ratio": poll.throughput_ratio,
                "active_pct": 100.0 * poll.mean_active_fraction,
            }
        )
        # --- S-MAC at each duty cycle
        for duty in duty_cycles:
            smac = run_smac_simulation(
                SmacSimConfig(
                    n_sensors=n_sensors,
                    rate_bps=rate,
                    duty_cycle=duty,
                    duration=duration,
                    warmup=warmup,
                    seed=seed,
                )
            )
            label = "SMAC (no sleep)" if duty >= 1.0 else f"SMAC ({int(duty*100)}% duty)"
            rows.append(
                {
                    "scheme": label,
                    "offered_bps": offered,
                    "throughput_bps": smac.throughput_bps,
                    "delivery_ratio": smac.delivery_ratio,
                    "active_pct": 100.0 * float(smac.active_fraction.mean()),
                }
            )
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Fig. 7(b) — throughput at the sink vs total offered load (30 sensors)",
        rows,
        columns=["scheme", "offered_bps", "throughput_bps", "delivery_ratio", "active_pct"],
    )
    series = series_from_rows(rows, x="offered_bps", y="throughput_bps", group="scheme")
    print("\nseries (scheme -> [(offered, throughput)]):")
    for scheme, points in series.items():
        line = ", ".join(f"{int(x)}:{y:.0f}" for x, y in points)
        print(f"  {scheme}: {line}")


if __name__ == "__main__":
    main()
