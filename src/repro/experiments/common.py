"""Shared experiment plumbing: row tables and series printers.

Every ``repro.experiments.figX`` module exposes ``run(...) -> list[dict]``
(the figure's data points) and ``main()`` (prints the table the way the
paper's figure would read).  Benchmarks call ``run``; humans call the
module (``python -m repro.experiments.fig7a``).
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["format_table", "print_table", "series_from_rows"]


def format_table(rows: list[dict[str, Any]], columns: list[str] | None = None) -> str:
    """Plain-text table; columns default to the first row's keys."""
    if not rows:
        return "(no data)"
    cols = columns or list(rows[0].keys())
    rendered: list[list[str]] = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rendered)
    return f"{header}\n{sep}\n{body}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_table(title: str, rows: list[dict[str, Any]], columns: list[str] | None = None) -> None:
    print(f"\n== {title} ==")
    print(format_table(rows, columns))


def series_from_rows(
    rows: Iterable[dict[str, Any]], x: str, y: str, group: str
) -> dict[Any, list[tuple[Any, Any]]]:
    """Pivot rows into {group_value: [(x, y), ...]} series (figure lines)."""
    out: dict[Any, list[tuple[Any, Any]]] = {}
    for r in rows:
        out.setdefault(r[group], []).append((r[x], r[y]))
    for series in out.values():
        series.sort()
    return out
