"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the decisions the paper makes
without measurement:

* ``greedy_vs_optimal`` — how far the Table-1 greedy schedule is from the
  exact optimum on small random clusters (the paper justifies greedy by
  NP-hardness alone);
* ``m_sensitivity`` — polling time vs the probing budget M (more probed
  concurrency, shorter schedules, exponentially more probing);
* ``sector_rules`` — the three pairing rules switched off one at a time;
* ``routing_minmax_vs_shortest`` — min-max-load flow routing vs naive
  BFS shortest paths, in max sensor load and polling time;
* ``scan_order`` — the "arbitrarily predetermined order" choice;
* ``delay_vs_nodelay`` — exact optimal with and without packet delay
  (Thm. 2 says delay buys nothing on TSRFs).
"""

from __future__ import annotations

import numpy as np

from ..core.ack import bfs_path_to_head
from ..core.online import OnlinePollingScheduler
from ..core.optimal import solve_optimal
from ..core.sectors import PairingRules, partition_into_sectors
from ..hardness.tsrfp import tsrfp_from_graph
from ..hardness.hamiltonian import random_graph
from ..mac.base import geometric_oracle
from ..metrics.lifetime import EnergyRateModel, evaluate_lifetime_ratio
from ..routing.minmax import solve_min_max_load
from ..routing.paths import RoutingPlan
from ..topology.cluster import Cluster
from ..topology.deployment import uniform_square
from .common import print_table

__all__ = [
    "greedy_vs_optimal",
    "m_sensitivity",
    "sector_rules",
    "routing_minmax_vs_shortest",
    "scan_order",
    "delay_vs_nodelay",
    "protocol_model_vs_physical",
    "shadowing_discovery",
    "energy_aware_routing",
    "main",
]


def _small_cluster(n: int, seed: int, packets_high: int = 2):
    dep = uniform_square(n, seed=seed, side=110.0, comm_range=45.0)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo, sensor_range_m=45.0)
    rng = np.random.default_rng(seed)
    packets = rng.integers(0, packets_high + 1, size=n)
    if packets.sum() == 0:
        packets[0] = 1
    cluster = cluster.with_packets(packets)
    return cluster, oracle


def greedy_vs_optimal(
    n_sensors: int = 6, seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
) -> list[dict]:
    rows = []
    for seed in seeds:
        cluster, oracle = _small_cluster(n_sensors, seed)
        plan = solve_min_max_load(cluster).routing_plan()
        greedy = OnlinePollingScheduler.poll(plan, oracle)
        optimal = solve_optimal(plan, oracle, max_requests=14)
        rows.append(
            {
                "seed": seed,
                "packets": int(cluster.total_packets),
                "greedy_slots": greedy.makespan,
                "optimal_slots": optimal.makespan,
                "ratio": greedy.makespan / optimal.makespan if optimal.makespan else 1.0,
            }
        )
    return rows


def m_sensitivity(
    n_sensors: int = 30, seed: int = 0, ms: tuple[int, ...] = (1, 2, 3)
) -> list[dict]:
    from ..interference.probing import probe_cost

    rows = []
    for m in ms:
        dep = uniform_square(n_sensors, seed=seed)
        geo = Cluster.from_deployment(dep)
        oracle, cluster = geometric_oracle(geo, max_group_size=m)
        plan = solve_min_max_load(cluster).routing_plan()
        result = OnlinePollingScheduler.poll(plan, oracle)
        n_links = len(plan.used_links())
        rows.append(
            {
                "M": m,
                "polling_slots": result.makespan,
                "probe_groups": probe_cost(n_links, m),
            }
        )
    return rows


def sector_rules(n_sensors: int = 30, seeds: tuple[int, ...] = (0, 1, 2)) -> list[dict]:
    configs = {
        "all rules": PairingRules(),
        "no link rule": PairingRules(require_link=False),
        "no size rule": PairingRules(big_with_small=False),
        "no pipeline rule": PairingRules(require_pipeline_compat=False),
    }
    rows = []
    for label, rules in configs.items():
        ratios = [
            evaluate_lifetime_ratio(n_sensors=n_sensors, seed=s, rules=rules).lifetime_ratio
            for s in seeds
        ]
        rows.append({"rules": label, "lifetime_ratio": sum(ratios) / len(ratios)})
    return rows


def routing_minmax_vs_shortest(
    n_sensors: int = 30, seeds: tuple[int, ...] = (0, 1, 2)
) -> list[dict]:
    rows = []
    for seed in seeds:
        dep = uniform_square(n_sensors, seed=seed)
        geo = Cluster.from_deployment(dep)
        oracle, cluster = geometric_oracle(geo)
        # min-max flow routing
        flow_plan = solve_min_max_load(cluster).routing_plan()
        flow_poll = OnlinePollingScheduler.poll(flow_plan, oracle)
        # naive BFS shortest paths
        bfs_plan = RoutingPlan(
            cluster=cluster,
            paths={s: bfs_path_to_head(cluster, s) for s in range(n_sensors)},
        )
        bfs_poll = OnlinePollingScheduler.poll(bfs_plan, oracle)
        rows.append(
            {
                "seed": seed,
                "minmax_max_load": int(flow_plan.loads().max()),
                "bfs_max_load": int(bfs_plan.loads().max()),
                "minmax_slots": flow_poll.makespan,
                "bfs_slots": bfs_poll.makespan,
            }
        )
    return rows


def scan_order(n_sensors: int = 30, seeds: tuple[int, ...] = (0, 1, 2)) -> list[dict]:
    rows = []
    for order in ("index", "deep-first", "shallow-first"):
        slots = []
        for seed in seeds:
            dep = uniform_square(n_sensors, seed=seed)
            geo = Cluster.from_deployment(dep)
            oracle, cluster = geometric_oracle(geo)
            plan = solve_min_max_load(cluster).routing_plan()
            slots.append(OnlinePollingScheduler.poll(plan, oracle, order=order).makespan)
        rows.append({"order": order, "mean_slots": sum(slots) / len(slots)})
    return rows


def delay_vs_nodelay(
    n_vertices: int = 4, seeds: tuple[int, ...] = (0, 1, 2, 3)
) -> list[dict]:
    rows = []
    for seed in seeds:
        adj = random_graph(n_vertices, 0.5, seed=seed)
        inst = tsrfp_from_graph(adj)
        plan = inst.routing_plan()
        nodelay = solve_optimal(plan, inst.oracle, allow_delay=False)
        delayed = solve_optimal(plan, inst.oracle, allow_delay=True)
        rows.append(
            {
                "seed": seed,
                "nodelay_slots": nodelay.makespan,
                "delay_slots": delayed.makespan,
                "delay_helps": delayed.makespan < nodelay.makespan,
            }
        )
    return rows


def protocol_model_vs_physical(
    n_sensors: int = 25, seeds: tuple[int, ...] = (0, 1, 2), delta: float = 0.5
) -> list[dict]:
    """Sec. III-B's warning, measured: schedule with the disc-and-pairwise
    protocol model, then check every slot against the additive-SINR truth.
    Groups the protocol model approves can fail physically (accumulated
    interference / non-disc gain); the probed physical oracle never does."""
    from ..interference.protocol import ProtocolModelOracle

    rows = []
    for seed in seeds:
        dep = uniform_square(n_sensors, seed=seed)
        geo = Cluster.from_deployment(dep)
        truth, cluster = geometric_oracle(geo, max_group_size=3)
        plan = solve_min_max_load(cluster).routing_plan()

        def violating_slots(oracle) -> tuple[int, int]:
            result = OnlinePollingScheduler.poll(plan, oracle)
            bad = 0
            for group in result.schedule.slots:
                if len(group) >= 2 and not truth.compatible(
                    [tx.link for tx in group]
                ):
                    bad += 1
            return bad, result.schedule.n_slots

        protocol = ProtocolModelOracle(cluster, delta=delta, max_group_size=3)
        bad_protocol, slots_protocol = violating_slots(protocol)
        bad_physical, slots_physical = violating_slots(truth)
        rows.append(
            {
                "seed": seed,
                "protocol_bad_slots": bad_protocol,
                "protocol_slots": slots_protocol,
                "physical_bad_slots": bad_physical,
                "physical_slots": slots_physical,
            }
        )
    return rows


def shadowing_discovery(
    n_sensors: int = 25, seeds: tuple[int, ...] = (0, 1, 2), sigma_db: float = 6.0
) -> list[dict]:
    """Sec. III-B's other warning: under log-normal shadowing the coverage
    area is not a disc, so geometry-assumed links and radio-discovered
    links disagree — routing must use what probing finds (Sec. V-B)."""
    from ..interference.physical import PhysicalModelOracle
    from ..mac.base import GROUND_SENSOR_PROPAGATION, sensor_power_for_range
    from ..radio.propagation import LogNormalShadowing

    rows = []
    for seed in seeds:
        dep = uniform_square(n_sensors, seed=seed)
        geo = Cluster.from_deployment(dep)
        shadow = LogNormalShadowing(
            reference=GROUND_SENSOR_PROPAGATION, sigma_db=sigma_db, seed=seed
        )
        oracle, discovered = geometric_oracle(geo, propagation=shadow)
        assumed = geo.hears
        found = discovered.hears
        broken = int((assumed & ~found).sum())  # disc says yes, radio says no
        gained = int((~assumed & found).sum())  # disc says no, radio says yes
        deliverable = discovered.is_connected()
        slots = None
        if deliverable:
            plan = solve_min_max_load(discovered).routing_plan()
            slots = OnlinePollingScheduler.poll(plan, oracle).slots_elapsed
        rows.append(
            {
                "seed": seed,
                "assumed_links": int(assumed.sum()),
                "broken_by_fading": broken,
                "gained_by_fading": gained,
                "still_deliverable": deliverable,
                "polling_slots": slots if slots is not None else "-",
            }
        )
    return rows


def energy_aware_routing(
    n_sensors: int = 25, seeds: tuple[int, ...] = (0, 1, 2)
) -> list[dict]:
    """The Sec. III-A energy-aware variant: sensors with depleted batteries
    get proportionally less relaying; the min-max *normalized* load drops
    and the weakest sensor's drain slows."""
    rows = []
    for seed in seeds:
        dep = uniform_square(n_sensors, seed=seed)
        geo = Cluster.from_deployment(dep)
        oracle, cluster = geometric_oracle(geo)
        rng = np.random.default_rng(seed)
        # batteries between 30% and 100%
        cluster.energy[:] = rng.uniform(0.3, 1.0, size=n_sensors)
        uniform = solve_min_max_load(cluster, energy_aware=False)
        aware = solve_min_max_load(cluster, energy_aware=True)
        norm_uniform = float(max(uniform.loads / cluster.energy))
        norm_aware = float(max(aware.loads / cluster.energy))
        rows.append(
            {
                "seed": seed,
                "uniform_max_normload": round(norm_uniform, 2),
                "aware_max_normload": round(norm_aware, 2),
                "improvement": round(norm_uniform / norm_aware, 2)
                if norm_aware
                else float("inf"),
            }
        )
    return rows


def main() -> None:
    print_table("Ablation: greedy vs optimal makespan", greedy_vs_optimal())
    print_table("Ablation: probing budget M", m_sensitivity())
    print_table("Ablation: sector pairing rules", sector_rules())
    print_table("Ablation: min-max flow vs BFS routing", routing_minmax_vs_shortest())
    print_table("Ablation: request scan order", scan_order())
    print_table("Ablation: packet delay (Thm. 2)", delay_vs_nodelay())
    print_table(
        "Ablation: protocol model vs physical truth (Sec. III-B)",
        protocol_model_vs_physical(),
    )
    print_table(
        "Ablation: shadowing vs disc coverage (Sec. III-B / V-B)",
        shadowing_discovery(),
    )
    print_table(
        "Ablation: energy-aware routing (Sec. III-A variant)",
        energy_aware_routing(),
    )


if __name__ == "__main__":
    main()
