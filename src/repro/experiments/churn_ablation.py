"""Churn ablation: does online re-clustering pay for itself?

Not a paper figure — the paper's clusters are static.  This bench puts the
same seeded cluster under *dynamic-network* stress (DESIGN.md §11) and
compares the three re-cluster policies the MAC supports:

* ``off``       — today's purely reactive machinery: announced leaves are
  repaired around, but joiners are never admitted and routing is never
  re-planned from fresh positions (the degradation baseline);
* ``staleness`` — re-form when the staleness trigger fires (membership
  delta, repeated repair fallbacks, head overload);
* ``periodic``  — re-form on a fixed cadence regardless of observed need.

The grid is churn rate (membership events per cycle) x mobility speed x
policy.  Every policy at one (rate, speed, seed) point sees the *same*
generated churn plan — joins/leaves/trajectories are drawn from the plan
seed before the policy is applied — so the columns differ only by how the
head responds, never by what happened to the network.

The headline column is ``coverage``: served members over members that
*ought* to be served (present survivors plus joiners whose radios powered
up), so a policy that ignores joiners is penalized even though the MAC
never admitted them into its roster.  ``delivered`` counts data packets
that reached the head; ``plan_age`` is the mean age (in cycles) of the
routing plan each cycle executed under.

Each trial loops over its grid point by point and seeds everything from
explicit kwargs, so the sweep is embarrassingly parallel through
:func:`repro.experiments.runner.run_figure` / ``run_sweep`` with cache and
resume for free::

    python -m repro.experiments.churn_ablation
"""

from __future__ import annotations

from ..faults import FaultPlan, Mobility, NodeJoin, NodeLeave
from ..net.cluster_sim import PollingSimConfig, run_polling_simulation
from ..sim.rng import fault_rng
from ..topology.recluster import StalenessTrigger
from .common import print_table

__all__ = ["POLICIES", "churn_plan", "run", "main"]

POLICIES = ("off", "staleness", "periodic")


def churn_plan(
    n_sensors: int,
    n_cycles: int,
    cycle_length: float,
    churn_rate: float,
    mobility_speed: float,
    seed: int,
    side_m: float = 200.0,
) -> FaultPlan | None:
    """Draw one deterministic churn plan for a grid point.

    *churn_rate* is the expected number of membership events (joins +
    leaves, split evenly, joins rounding up) over the whole run, per cycle.
    Event times land strictly inside ``[1, n_cycles - 1]`` cycles so every
    event has at least one duty-cycle boundary after it to be reacted to.
    Draws come from the ``(seed, "churn-plan", rate, speed)`` fault
    stream — the plan is a pure function of the grid point, identical for
    every policy that runs it.
    """
    n_events = int(round(churn_rate * n_cycles))
    if n_events <= 0 and mobility_speed <= 0:
        return None
    rng = fault_rng(seed, "churn-plan", churn_rate, mobility_speed)
    n_joins = (n_events + 1) // 2
    n_leaves = min(n_events // 2, n_sensors // 3)
    t_lo, t_hi = cycle_length, (n_cycles - 1) * cycle_length
    joins = tuple(
        NodeJoin(
            at=float(rng.uniform(t_lo, t_hi)),
            position=(float(rng.uniform(0, side_m)), float(rng.uniform(0, side_m))),
        )
        for _ in range(n_joins)
    )
    leave_nodes = rng.choice(n_sensors, size=n_leaves, replace=False)
    leaves = tuple(
        NodeLeave(node=int(node), at=float(rng.uniform(t_lo, t_hi)))
        for node in leave_nodes
    )
    mobility = Mobility(speed_mps=mobility_speed) if mobility_speed > 0 else None
    return FaultPlan(joins=joins, leaves=leaves, mobility=mobility)


def _policy_config(policy: str) -> dict:
    if policy == "off":
        return {"recluster": "off"}
    if policy == "staleness":
        return {"recluster": "staleness", "recluster_trigger": StalenessTrigger()}
    if policy == "periodic":
        return {
            "recluster": "periodic",
            "recluster_trigger": StalenessTrigger(
                membership_delta=0, repair_fallbacks=0, period_cycles=3
            ),
        }
    raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")


def run(
    n_sensors: int = 24,
    n_cycles: int = 10,
    seed: int = 7,
    churn_rates: tuple[float, ...] = (0.0, 0.3, 0.6),
    mobility_speeds: tuple[float, ...] = (0.0, 0.5),
    policies: tuple[str, ...] = POLICIES,
    engine: str = "vector",
) -> list[dict]:
    """One row per (churn rate, mobility speed, policy) grid point.

    The churn-rate loop is outermost so :func:`..runner.run_figure` can
    split it into parallel trials row-for-row identically.
    """
    rows: list[dict] = []
    for rate in churn_rates:
        for speed in mobility_speeds:
            plan = churn_plan(
                n_sensors, n_cycles, 10.0, rate, speed, seed
            )
            for policy in policies:
                cfg = PollingSimConfig(
                    n_sensors=n_sensors,
                    n_cycles=n_cycles,
                    seed=seed,
                    fault_plan=plan,
                    engine=engine,
                    **_policy_config(policy),
                )
                res = run_polling_simulation(cfg)
                stale = res.staleness
                avail = res.availability
                # Members that ought to be served: present survivors plus
                # joiners that powered up but were never admitted (under
                # "off" those sit in mac.absent, outside present_final).
                ought = stale.present_final + (
                    stale.joins_powered - stale.joins_admitted
                )
                coverage = stale.served_final / ought if ought else 1.0
                ttr = avail.median_ttr_cycles
                rows.append(
                    {
                        "churn_rate": rate,
                        "mobility": speed,
                        "policy": policy,
                        "delivered": res.packets_delivered,
                        "failed": res.mac.packets_failed,
                        "coverage": coverage,
                        "served": stale.served_final,
                        "ought": ought,
                        "reclusters": stale.reclusters,
                        "repairs": stale.route_repairs,
                        "plan_age": round(stale.mean_plan_age_cycles, 3),
                        "announce_B": stale.reform_announce_bytes,
                        "joins_adm": stale.joins_admitted,
                        "leaves": stale.leaves,
                        "ttr_cycles": ttr if ttr != float("inf") else -1.0,
                        "violations": len(res.violations),
                    }
                )
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Churn ablation: re-cluster policy vs node churn and mobility "
        "(24 sensors, 10 cycles; coverage = served / ought-to-serve)",
        rows,
    )


if __name__ == "__main__":
    main()
