"""Paper figure regeneration harness — one module per figure + ablations.

Run any figure directly::

    python -m repro.experiments.fig2
    python -m repro.experiments.fig4
    python -m repro.experiments.fig4_sweep
    python -m repro.experiments.fig6
    python -m repro.experiments.fig7a
    python -m repro.experiments.fig7b
    python -m repro.experiments.fig7c
    python -m repro.experiments.ablations
    python -m repro.experiments.fault_ablation
    python -m repro.experiments.churn_ablation

Submodules are intentionally *not* imported eagerly so ``python -m`` works
without double-import warnings; import the one you need explicitly.
"""

__all__ = [
    "common",
    "fig2",
    "fig4",
    "fig4_sweep",
    "fig6",
    "fig7a",
    "fig7b",
    "fig7c",
    "ablations",
    "fault_ablation",
    "churn_ablation",
    "runner",
]
