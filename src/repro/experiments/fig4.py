"""Fig. 4 — the TSRF gadget and its Hamiltonian-path schedule.

The paper's 5-branch TSRF with the interference pattern of the Fig. 4(b)
graph: a schedule finishing in n+1 = 6 slots exists exactly because the
graph has a Hamiltonian path (the paper traces v1-v3-v4-v2-v5 — wait, its
figure lists the path v? order; any Hamiltonian path of the same graph
yields a 6-slot schedule, which is what we verify here, alongside the
certificate conversions in both directions and the physical-model
realization of the interference pattern.
"""

from __future__ import annotations

import numpy as np

from ..core.optimal import solve_optimal
from ..core.requests import RequestPool
from ..hardness.hamiltonian import find_hamiltonian_path
from ..hardness.tsrfp import (
    hamiltonian_path_from_schedule,
    physical_oracle_for_graph,
    schedule_from_hamiltonian_path,
    tsrfp_from_graph,
)
from .common import print_table

__all__ = ["fig4_graph", "run", "main"]


def fig4_graph() -> np.ndarray:
    """A 5-vertex graph shaped like the paper's Fig. 4(b).

    Edges: v0-v2, v2-v3, v3-v1, v1-v4, plus chord v0-v3 — it contains the
    Hamiltonian path v0, v2, v3, v1, v4 (the paper's v1 v3 v4 v2 v5 in
    1-based labels) and is not complete, so the instance is non-trivial.
    """
    adj = np.zeros((5, 5), dtype=bool)
    for a, b in [(0, 2), (2, 3), (3, 1), (1, 4), (0, 3)]:
        adj[a, b] = adj[b, a] = True
    return adj


def run() -> list[dict]:
    adj = fig4_graph()
    inst = tsrfp_from_graph(adj)
    plan = inst.routing_plan()
    hp = find_hamiltonian_path(adj)
    assert hp is not None
    canonical = schedule_from_hamiltonian_path(inst, hp)
    canonical.validate(list(RequestPool(plan)), inst.oracle)
    extracted = hamiltonian_path_from_schedule(inst, canonical)
    opt = solve_optimal(plan, inst.oracle)
    # Physical realization answers like the tabulated gadget oracle.
    phys = physical_oracle_for_graph(adj)
    return [
        {"quantity": "branches (graph vertices)", "value": inst.n_branches},
        {"quantity": "deadline T = n+1 slots", "value": inst.deadline},
        {"quantity": "Hamiltonian path", "value": "-".join(f"v{v+1}" for v in hp)},
        {"quantity": "canonical schedule slots", "value": canonical.makespan()},
        {"quantity": "optimal schedule slots", "value": opt.makespan},
        {"quantity": "path re-extracted from schedule", "value": "-".join(f"v{v+1}" for v in extracted)},
        {"quantity": "physical-model oracle beta", "value": phys.beta},
    ]


def main() -> None:
    print_table("Fig. 4 — TSRFP <-> Hamiltonian Path", run())
    inst = tsrfp_from_graph(fig4_graph())
    hp = find_hamiltonian_path(fig4_graph())
    assert hp is not None
    print("\nschedule (cf. paper Fig. 4(c)):")
    print(schedule_from_hamiltonian_path(inst, hp).describe())


if __name__ == "__main__":
    main()
