"""Fault ablation: how gracefully does the polling cluster degrade?

Not a paper figure — the paper assumes loss but not death.  This bench
sweeps fault regimes over the same seeded cluster and reports the
graceful-degradation metrics next to the paper's throughput numbers:

* ``none``        — the untouched baseline (sanity anchor: ratio 1.0);
* ``crash-1``     — one routing relay killed mid-run;
* ``crash-2``     — two relays killed, staggered;
* ``stun``        — a relay stunned for two full cycles, then back;
* ``battery``     — a relay given a tiny battery that dies under load;
* ``bursty``      — Gilbert–Elliott bursty loss on every link, no deaths;
* ``bursty-K6``   — same loss, suspicion threshold raised from 2 to 6
  cycles (a loss burst must outlast K cycles to fake a death, so K is
  the detector's burst-tolerance knob).

Run it::

    python -m repro.experiments.fault_ablation
"""

from __future__ import annotations

from ..faults import BatteryDepletion, BurstyLinks, FaultPlan, NodeCrash, TransientStun
from ..net.cluster_sim import PollingSimConfig, run_polling_simulation
from .common import print_table

__all__ = ["run", "main"]


def _relays_of(config: PollingSimConfig) -> list[int]:
    """The relays min-max routing actually uses on this seed (found by a
    dry run of the fault-free configuration)."""
    base = run_polling_simulation(config)
    plan = base.mac.routing.routing_plan()
    relays = sorted({n for p in plan.paths.values() for n in p[1:-1] if n >= 0})
    if not relays:
        raise RuntimeError("deployment has no multi-hop relays; pick another seed")
    return relays


def _plans(config: PollingSimConfig) -> dict[str, FaultPlan | None]:
    relays = _relays_of(config)
    mid = config.n_cycles // 2 * config.cycle_length + 0.3  # mid data phase
    r0 = relays[0]
    r1 = relays[len(relays) // 2]
    return {
        "none": None,
        "crash-1": FaultPlan(crashes=[NodeCrash(node=r0, at=mid)]),
        "crash-2": FaultPlan(
            crashes=[
                NodeCrash(node=r0, at=mid),
                NodeCrash(node=r1, at=mid + 2 * config.cycle_length),
            ]
        ),
        "stun": FaultPlan(
            stuns=[TransientStun(node=r0, at=mid, duration=2 * config.cycle_length)]
        ),
        "battery": FaultPlan(batteries=[BatteryDepletion(node=r0, capacity_j=0.02)]),
        "bursty": FaultPlan(bursty_links=BurstyLinks()),
        "bursty-K6": FaultPlan(bursty_links=BurstyLinks()),
    }


def run(
    n_sensors: int = 30,
    n_cycles: int = 12,
    seed: int = 3,
) -> list[dict]:
    config = PollingSimConfig(n_sensors=n_sensors, n_cycles=n_cycles, seed=seed)
    rows: list[dict] = []
    for name, plan in _plans(config).items():
        cfg = PollingSimConfig(
            n_sensors=n_sensors,
            n_cycles=n_cycles,
            seed=seed,
            fault_plan=plan,
            dead_after_misses=6 if name.endswith("K6") else 2,
        )
        res = run_polling_simulation(cfg)
        deg = res.degradation
        rows.append(
            {
                "faults": name,
                "delivered": deg.delivered,
                "failed": deg.failed,
                "delivery_ratio": deg.delivery_ratio,
                "coverage": deg.surviving_coverage,
                "dead_true": len(deg.dead_true),
                "blacklisted": len(deg.blacklisted),
                "false_pos": len(deg.false_positives),
                "stranded": deg.stranded_packets,
                "repairs": deg.route_repairs,
            }
        )
    return rows


def main() -> None:
    rows = run()
    print_table("Fault ablation: graceful degradation (30 sensors, 12 cycles)", rows)


if __name__ == "__main__":
    main()
