"""Fault ablation: how gracefully does the polling cluster degrade?

Not a paper figure — the paper assumes loss but not death.  This bench
sweeps fault regimes over the same seeded cluster and reports the
graceful-degradation metrics next to the paper's throughput numbers:

* ``none``        — the untouched baseline (sanity anchor: ratio 1.0);
* ``crash-1``     — one routing relay killed mid-run;
* ``crash-2``     — two relays killed, staggered;
* ``stun``        — a relay stunned for two full cycles, then back;
* ``battery``     — a relay given a tiny battery that dies under load;
* ``bursty``      — Gilbert–Elliott bursty loss on every link, no deaths;
* ``bursty-K6``   — same loss, suspicion threshold raised from 2 to 6
  cycles (a loss burst must outlast K cycles to fake a death, so K is
  the detector's burst-tolerance knob).

Every regime runs twice: reactive (``k=0``, recovery waits for the
duty-cycle-boundary route repair) and proactive (``k=1``, one node-disjoint
backup path per sensor for in-cycle failover).  The availability columns —
median time-to-recover in cycles, delivery continuity, failover/repair
counts — are where the two separate: same topology, same faults, same
detector, different recovery latency.

Run it::

    python -m repro.experiments.fault_ablation
"""

from __future__ import annotations

from ..faults import BatteryDepletion, BurstyLinks, FaultPlan, NodeCrash, TransientStun
from ..net.cluster_sim import PollingSimConfig, run_polling_simulation
from ..routing import compute_backup_routes
from .common import print_table

__all__ = ["run", "main"]


def _relays_of(config: PollingSimConfig) -> tuple[list[int], int | None]:
    """The relays min-max routing actually uses on this seed (found by a
    dry run of the fault-free configuration), plus one *survivable* relay:
    a relay every downstream sensor of which has a node-disjoint backup,
    so an in-cycle failover can actually absorb its death."""
    base = run_polling_simulation(config)
    solution = base.mac.routing
    plan = solution.routing_plan()
    relays = sorted({n for p in plan.paths.values() for n in p[1:-1] if n >= 0})
    if not relays:
        raise RuntimeError("deployment has no multi-hop relays; pick another seed")
    routes = compute_backup_routes(solution, k=1)
    backed = None
    for r in relays:
        downstream = [
            s
            for s, bundles in solution.flow_paths.items()
            if s != r and any(r in p[1:-1] for p, _ in bundles)
        ]
        if downstream and all(
            any(r not in bp for bp in routes.paths_for(s)) for s in downstream
        ):
            backed = r
            break
    return relays, backed


def _plans(config: PollingSimConfig) -> dict[str, FaultPlan | None]:
    relays, backed = _relays_of(config)
    mid = config.n_cycles // 2 * config.cycle_length + 0.3  # mid data phase
    r0 = relays[0]
    r1 = relays[len(relays) // 2]
    plans: dict[str, FaultPlan | None] = {
        "none": None,
        "crash-1": FaultPlan(crashes=[NodeCrash(node=r0, at=mid)]),
        # a relay whose whole downstream has disjoint backups, killed in
        # the sleep phase (nothing in flight to mask the outage): the
        # regime where proactive failover (k>=1) fully absorbs the death
        # while reactive recovery waits out detection + boundary repair
        "crash-b": None
        if backed is None
        else FaultPlan(
            crashes=[
                NodeCrash(
                    node=backed,
                    at=(config.n_cycles // 2 + 0.55) * config.cycle_length,
                )
            ]
        ),
        "crash-2": FaultPlan(
            crashes=[
                NodeCrash(node=r0, at=mid),
                NodeCrash(node=r1, at=mid + 2 * config.cycle_length),
            ]
        ),
        "stun": FaultPlan(
            stuns=[TransientStun(node=r0, at=mid, duration=2 * config.cycle_length)]
        ),
        "battery": FaultPlan(batteries=[BatteryDepletion(node=r0, capacity_j=0.02)]),
        "bursty": FaultPlan(bursty_links=BurstyLinks()),
        "bursty-K6": FaultPlan(bursty_links=BurstyLinks()),
    }
    if backed is None:
        del plans["crash-b"]  # topology offers no fully-backed-up relay
    return plans


def run(
    n_sensors: int = 30,
    n_cycles: int = 12,
    seed: int = 3,
    backup_ks: tuple[int, ...] = (0, 1),
    engine: str = "vector",
) -> list[dict]:
    config = PollingSimConfig(n_sensors=n_sensors, n_cycles=n_cycles, seed=seed)
    rows: list[dict] = []
    for name, plan in _plans(config).items():
        for k in backup_ks:
            cfg = PollingSimConfig(
                n_sensors=n_sensors,
                n_cycles=n_cycles,
                seed=seed,
                fault_plan=plan,
                dead_after_misses=6 if name.endswith("K6") else 2,
                backup_k=k,
                engine=engine,
            )
            res = run_polling_simulation(cfg)
            deg = res.degradation
            avail = res.availability
            ttr = avail.median_ttr_cycles
            rows.append(
                {
                    "faults": name,
                    "k": k,
                    "delivered": deg.delivered,
                    "failed": deg.failed,
                    "delivery_ratio": deg.delivery_ratio,
                    "coverage": deg.surviving_coverage,
                    "dead_true": len(deg.dead_true),
                    "blacklisted": len(deg.blacklisted),
                    "false_pos": len(deg.false_positives),
                    "stranded": deg.stranded_packets,
                    "repairs": deg.route_repairs,
                    "failovers": avail.in_cycle_failovers,
                    "ttr_cycles": ttr if ttr != float("inf") else -1.0,
                    "continuity": avail.continuity,
                }
            )
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Fault ablation: graceful degradation & recovery latency "
        "(30 sensors, 12 cycles; k = backup paths, ttr -1 = never recovered)",
        rows,
    )


if __name__ == "__main__":
    main()
