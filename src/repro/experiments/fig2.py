"""Fig. 2 — the worked multi-hop polling example.

A three-sensor cluster: s1 hears the head and relays for s2; s3 hears the
head directly.  Packets (0, 1, 1).  Sequential polling needs 3 slots;
because ``s2 -> s1`` and ``s3 -> t`` are compatible, the multi-hop polling
schedule finishes in 2 — the paper's Fig. 2(b).
"""

from __future__ import annotations

from ..core.online import OnlinePollingScheduler
from ..core.optimal import solve_optimal
from ..routing.minmax import solve_min_max_load
from ..topology.cluster import HEAD, Cluster
from ..interference.base import TabulatedOracle
from .common import print_table

__all__ = ["build_fig2_cluster", "build_fig2_oracle", "run", "main"]


def build_fig2_cluster() -> Cluster:
    """s0 = paper's S1 (relay), s1 = S2 (behind S1), s2 = S3 (near head)."""
    return Cluster.from_edges(
        3, sensor_edges=[(0, 1)], head_links=[0, 2], packets=[0, 1, 1]
    )


def build_fig2_oracle() -> TabulatedOracle:
    """Only the Fig. 2 concurrency: S2->S1 together with S3->t."""
    return TabulatedOracle(
        compatible_pairs=[((1, 0), (2, HEAD))],
        valid_links=[(1, 0), (0, HEAD), (2, HEAD)],
        max_group_size=2,
    )


def run() -> list[dict]:
    cluster = build_fig2_cluster()
    oracle = build_fig2_oracle()
    plan = solve_min_max_load(cluster).routing_plan()
    sequential_slots = sum(plan.hop_count(s) for s in plan.active_sensors())
    greedy = OnlinePollingScheduler.poll(plan, oracle)
    optimal = solve_optimal(plan, oracle)
    return [
        {"schedule": "one sensor at a time", "slots": sequential_slots},
        {"schedule": "greedy multi-hop polling", "slots": greedy.makespan},
        {"schedule": "optimal", "slots": optimal.makespan},
    ]


def main() -> None:
    rows = run()
    print_table("Fig. 2 — multi-hop polling example (paper: 3 vs 2 slots)", rows)
    cluster = build_fig2_cluster()
    plan = solve_min_max_load(cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, build_fig2_oracle())
    print("\nschedule detail:")
    print(result.schedule.describe())


if __name__ == "__main__":
    main()
