"""Fig. 7(a) — percentage of active time vs cluster size and data rate.

The paper sweeps cluster sizes 10..100 and per-sensor data generating
rates 20/40/60/80 Bps and reports the fraction of time sensors must stay
active to deliver every packet.  Expected shape: active time grows with
both axes; high-rate large clusters saturate at 100% (the cluster can no
longer keep up and packets would be lost — the paper's cliff at 90 nodes
for 80 Bps).

Implementation: the slot-level protocol model (ack set-cover phase +
Table-1 data polling with path rotation), averaged over seeds.  The
event-driven MAC produces the same duty times (cross-checked in tests);
it is just too slow for the full sweep.
"""

from __future__ import annotations

from ..metrics.activetime import ActiveTimeConfig, simulate_active_time
from .common import print_table, series_from_rows

__all__ = ["DEFAULT_SIZES_SWEEP", "DEFAULT_RATES", "run", "run_point", "main"]

DEFAULT_SIZES_SWEEP = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
DEFAULT_RATES = (20.0, 40.0, 60.0, 80.0)


def run_point(
    n_sensors: int,
    rate_bps: float,
    seeds: tuple[int, ...] = (0, 1),
    n_cycles: int = 8,
    warmup_cycles: int = 2,
    **overrides,
) -> dict:
    """One (cluster size, rate) point, seed-averaged."""
    fractions = []
    saturated_any = False
    for seed in seeds:
        result = simulate_active_time(
            ActiveTimeConfig(
                n_sensors=n_sensors,
                rate_bps=rate_bps,
                n_cycles=n_cycles,
                warmup_cycles=warmup_cycles,
                seed=seed,
                **overrides,
            )
        )
        fractions.append(result.active_fraction)
        saturated_any = saturated_any or result.saturated
    return {
        "n_sensors": n_sensors,
        "rate_bps": rate_bps,
        "active_pct": 100.0 * sum(fractions) / len(fractions),
        "saturated": saturated_any,
    }


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES_SWEEP,
    rates: tuple[float, ...] = DEFAULT_RATES,
    seeds: tuple[int, ...] = (0, 1),
    n_cycles: int = 8,
    **overrides,
) -> list[dict]:
    rows = []
    for rate in rates:
        for n in sizes:
            rows.append(
                run_point(n, rate, seeds=seeds, n_cycles=n_cycles, **overrides)
            )
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Fig. 7(a) — % active time vs cluster size x data rate",
        rows,
        columns=["rate_bps", "n_sensors", "active_pct", "saturated"],
    )
    series = series_from_rows(rows, x="n_sensors", y="active_pct", group="rate_bps")
    print("\nseries (rate -> [(n, active%)]):")
    for rate, points in sorted(series.items()):
        line = ", ".join(f"{n}:{pct:.0f}%" for n, pct in points)
        print(f"  {rate:>5} Bps: {line}")


if __name__ == "__main__":
    main()
