"""Fig. 4-scale DES sweep — the engine-benchmark workload (DESIGN.md §12).

The paper's evaluation is a grid of duty-cycle simulations; this module is
the repo's canonical *sweep* of that grid: one seeded 60-sensor deployment
run at several offered loads.  (Not to be confused with
:mod:`repro.experiments.fig4`, the TSRFP hardness gadget — this sweep is
the fig. 4-*scale* polling workload the vector engine is benchmarked on.)

Two optimizations shipped together and are both exercised here:

* the **vector slot engine** (``engine="vector"``, the default) replays
  clean polling slots as closed-form numpy updates, bit-identical to the
  scalar event path;
* the **cross-trial solver warm-start cache** (``reuse_solver=True``)
  shares the Dinic routing / backup solves across grid points — every
  trial of a sweep uses the same seeded deployment, so only the first
  pays for the solve.

``BENCH_vector.json`` (benchmarks/test_bench_vector.py) times this sweep
under both engines and the CI ``perf-vector`` job holds the vector/scalar
ratio above the regression gate.
"""

from __future__ import annotations

from time import perf_counter

from ..net.cluster_sim import PollingSimConfig, run_polling_simulation
from ..routing.warmcache import SolverCache
from .common import print_table

__all__ = ["DEFAULT_RATES", "run", "main"]

DEFAULT_RATES = (10.0, 20.0, 40.0)  # per-sensor Bps grid (offered-load axis)


def run(
    rates: tuple[float, ...] = DEFAULT_RATES,
    n_sensors: int = 60,
    n_cycles: int = 10,
    seed: int = 0,
    engine: str = "vector",
    reuse_solver: bool = True,
    backup_k: int = 0,
) -> list[dict]:
    """One sweep over the offered-load grid; one row per grid point.

    Rows carry the physical results (delivery, energy) *and* the engine
    telemetry (wall time, batch coverage) so before/after comparisons can
    confirm the numbers did not move while the wall time did.
    """
    cache = SolverCache() if reuse_solver else None
    rows: list[dict] = []
    for rate in rates:
        t0 = perf_counter()
        res = run_polling_simulation(
            PollingSimConfig(
                n_sensors=n_sensors,
                rate_bps=rate,
                n_cycles=n_cycles,
                seed=seed,
                engine=engine,
                solver_cache=cache,
                backup_k=backup_k,
            )
        )
        wall = perf_counter() - t0
        energy = sum(trx.meter.consumed_j for trx in res.phy.transceivers)
        rows.append(
            {
                "engine": engine,
                "rate_bps": rate,
                "wall_s": wall,
                "delivered": res.packets_delivered,
                "delivery_ratio": res.throughput_ratio,
                "energy_j": energy,
                "vector_slots": res.mac.vector_slots,
                "scalar_slots": res.mac.scalar_slots,
                "solver_hits": cache.stats.routing_hits if cache else 0,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("vector", "scalar", "both"),
        default="both",
        help="slot engine to time (default: both, vector first)",
    )
    args = parser.parse_args(argv)
    engines = ("vector", "scalar") if args.engine == "both" else (args.engine,)
    for engine in engines:
        rows = run(engine=engine)
        print_table(f"Fig. 4-scale sweep — engine={engine}", rows)
        total = sum(r["wall_s"] for r in rows)
        print(f"total wall: {total:.3f}s\n")


if __name__ == "__main__":
    main()
