"""Parallel, cached sweep runner for the experiment grids.

Every ``repro.experiments.figX`` module exposes ``run(...) -> list[dict]``
that loops over its parameter grid point by point, seeding each point from
explicit config values (never from execution order).  That makes the grid
embarrassingly parallel *and* order-independent: a trial's rows depend only
on its keyword arguments, so fanning trials across a ``multiprocessing``
pool and concatenating the results in grid order is bit-for-bit identical
to the sequential loop.

Three layers:

* :class:`Trial` — one experiment invocation, addressed by registry name
  (``"fig7b"``, ``"ablations:energy_aware_routing"``, or any
  ``"pkg.module:function"``) plus JSON-serializable kwargs.
* :func:`run_sweep` — execute trials (pool or in-process), consulting a
  content-addressed on-disk cache keyed by ``(experiment, kwargs,
  code-version)``; repeated sweeps are free.
* :func:`run_figure` — split one grid parameter of a figure's ``run`` into
  per-value trials, sweep them, and flatten the rows in grid order.

Determinism contract
--------------------
Results are normalized to JSON-compatible values (numpy scalars unwrapped,
tuples listified) before being returned **or** cached, so a pool run, an
in-process run, and a cache hit all yield identical rows.  Trials must seed
all randomness from their kwargs (the repo-wide :mod:`repro.sim.rng` named
streams make this the path of least resistance).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "Trial",
    "SweepCache",
    "code_version",
    "resolve_experiment",
    "run_trial",
    "run_sweep",
    "run_figure",
]

DEFAULT_CACHE_DIR = Path("results") / "sweep_cache"


def resolve_experiment(experiment: str) -> Callable[..., Any]:
    """Resolve a registry name to its callable.

    ``"fig7b"`` → ``repro.experiments.fig7b.run``;
    ``"ablations:scan_order"`` → ``repro.experiments.ablations.scan_order``;
    a dotted module path (``"mypkg.mymod:fn"``) is imported as-is.
    """
    mod_name, _, fn_name = experiment.partition(":")
    fn_name = fn_name or "run"
    if "." not in mod_name:
        mod_name = f"repro.experiments.{mod_name}"
    module = importlib.import_module(mod_name)
    fn = getattr(module, fn_name, None)
    if fn is None or not callable(fn):
        raise ValueError(f"experiment {experiment!r} resolves to no callable")
    return fn


@dataclass(frozen=True)
class Trial:
    """One experiment invocation: registry name + kwargs.

    Kwargs must be JSON-serializable (numbers, strings, bools, lists/tuples,
    dicts) — they both drive the experiment and address the cache.
    """

    experiment: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def cache_key(self, code: str | None = None) -> str:
        """Content-addressed identity: (experiment, kwargs, code-version)."""
        payload = {
            "experiment": self.experiment,
            "kwargs": _jsonify(self.kwargs),
            "code": code if code is not None else code_version(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _jsonify(value: Any) -> Any:
    """Normalize to JSON-compatible python types (recursively).

    numpy scalars unwrap via ``.item()``, arrays become nested lists, and
    tuples become lists — exactly what ``json.loads(json.dumps(x))`` would
    produce, so cached and freshly computed results are indistinguishable.
    """
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if hasattr(value, "dtype") and getattr(value, "ndim", None) == 0:
        return _jsonify(value.item())  # numpy scalar / 0-d array
    if hasattr(value, "tolist"):  # numpy array
        return _jsonify(value.tolist())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"trial results must be JSON-compatible, got {type(value).__name__}"
    )


_CODE_VERSION: str | None = None


def code_version() -> str:
    """A fingerprint of the installed ``repro`` sources.

    Cache entries embed this, so editing any module under ``src/repro``
    invalidates every cached sweep — results can never go stale against
    the code that produced them.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


class SweepCache:
    """Content-addressed result store: one JSON file per trial key."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any | None:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, key: str, trial: Trial, result: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment": trial.experiment,
            "kwargs": _jsonify(trial.kwargs),
            "code": code_version(),
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)  # atomic: a crashed worker never leaves half a file


def run_trial(trial: Trial) -> Any:
    """Execute one trial in-process and return its normalized result.

    Top-level so it pickles for pool workers.
    """
    fn = resolve_experiment(trial.experiment)
    return _jsonify(fn(**trial.kwargs))


def run_sweep(
    trials: list[Trial],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache: SweepCache | None = None,
) -> list[Any]:
    """Run *trials*, returning their results in trial order.

    ``processes`` > 1 fans cache-missed trials over a ``multiprocessing``
    pool (fork start method — workers inherit ``sys.path``); ``None`` or 1
    runs them in-process.  Passing ``cache_dir`` (or a prebuilt ``cache``)
    enables the on-disk result cache; hits skip execution entirely.
    """
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir)

    results: list[Any] = [None] * len(trials)
    pending: list[tuple[int, Trial, str | None]] = []
    if cache is not None:
        code = code_version()
        for idx, trial in enumerate(trials):
            key = trial.cache_key(code)
            hit = cache.get(key)
            if hit is not None:
                results[idx] = hit
            else:
                pending.append((idx, trial, key))
    else:
        pending = [(idx, trial, None) for idx, trial in enumerate(trials)]

    todo = [trial for _, trial, _ in pending]
    if processes is not None and processes > 1 and len(todo) > 1:
        ctx = get_context("fork")
        with ctx.Pool(processes=processes) as pool:
            fresh = pool.map(run_trial, todo)
    else:
        fresh = [run_trial(trial) for trial in todo]

    for (idx, trial, key), result in zip(pending, fresh):
        results[idx] = result
        if cache is not None and key is not None:
            cache.put(key, trial, result)
    return results


def run_figure(
    experiment: str,
    grid_param: str,
    grid_values: list | tuple,
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache: SweepCache | None = None,
    **common: Any,
) -> list[dict]:
    """Sweep one grid parameter of a figure in parallel; flatten in grid order.

    The figure's ``run`` must iterate ``grid_param`` in its outermost loop
    with per-point seeding from kwargs (all the ``figX``/ablation runners
    do), so ``run_figure("fig7b", "offered_loads", [a, b], seed=0)`` is
    row-for-row identical to ``fig7b.run(offered_loads=(a, b), seed=0)``.
    """
    trials = [
        Trial(experiment=experiment, kwargs={grid_param: [value], **common})
        for value in grid_values
    ]
    results = run_sweep(trials, processes=processes, cache_dir=cache_dir, cache=cache)
    rows: list[dict] = []
    for result in results:
        if not isinstance(result, list):
            raise TypeError(
                f"{experiment} returned {type(result).__name__}, expected row list"
            )
        rows.extend(result)
    return rows
