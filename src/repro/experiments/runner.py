"""Parallel, cached sweep runner for the experiment grids.

Every ``repro.experiments.figX`` module exposes ``run(...) -> list[dict]``
that loops over its parameter grid point by point, seeding each point from
explicit config values (never from execution order).  That makes the grid
embarrassingly parallel *and* order-independent: a trial's rows depend only
on its keyword arguments, so fanning trials across a ``multiprocessing``
pool and concatenating the results in grid order is bit-for-bit identical
to the sequential loop.

Three layers:

* :class:`Trial` — one experiment invocation, addressed by registry name
  (``"fig7b"``, ``"ablations:energy_aware_routing"``, or any
  ``"pkg.module:function"``) plus JSON-serializable kwargs.
* :func:`run_sweep` — execute trials (pool or in-process), consulting a
  content-addressed on-disk cache keyed by ``(experiment, kwargs,
  code-version)``; repeated sweeps are free.
* :func:`run_figure` — split one grid parameter of a figure's ``run`` into
  per-value trials, sweep them, and flatten the rows in grid order.

Determinism contract
--------------------
Results are normalized to JSON-compatible values (numpy scalars unwrapped,
tuples listified) before being returned **or** cached, so a pool run, an
in-process run, and a cache hit all yield identical rows.  Trials must seed
all randomness from their kwargs (the repo-wide :mod:`repro.sim.rng` named
streams make this the path of least resistance).  The slot-engine switch
rides through kwargs like any grid knob (``Trial("fig7b", {"engine":
"scalar"})``); because the engines are bit-identical (DESIGN.md §12) it
never perturbs cached rows — only how fast misses compute.

Self-healing execution
----------------------
Long randomized sweeps survive worker failure instead of losing hours of
progress (DESIGN.md §8):

* ``timeout=`` / ``retries=`` run every pending trial in its **own** worker
  process with a per-trial deadline.  A worker that raises, hangs past its
  deadline, or dies outright (segfault, OOM-kill) is detected, its process
  reaped, and the trial retried after bounded exponential backoff; a trial
  that exhausts its retries is *skipped* with a structured
  :class:`TrialFailure` in its result slot, never poisoning its neighbours.
* ``checkpoint=`` appends every completed trial to a JSONL journal
  (content-addressed by the trial's cache key); ``resume=True`` reloads it
  and re-runs only what is missing.  Because a trial's rows depend only on
  its kwargs, a sweep killed mid-flight and resumed is **bit-for-bit**
  identical to an uninterrupted run.  A line truncated by the kill is
  tolerated (skipped) on load.

Campaign observability
----------------------
``campaign_dir=`` streams one fsynced JSONL record per trial event
(``launched`` / ``retry`` / ``timeout`` / ``cached`` / ``completed`` /
``failed``) into a :class:`repro.obs.campaign.CampaignFeed` so a running
sweep can be watched, health-checked, and forensically examined without
touching its results (``python -m repro.obs.campaign <dir>``).  Every
execution path emits: the parent for cache hits, journal resume, and the
resilient executor; each pool worker writes its **own** feed shard.  A
trial satisfied from the cache *and* the journal emits its ``cached``
record exactly once (the slot's done-flag guards both sources), so a
killed-and-resumed campaign feed stays duplicate-free per run.
``campaign_dir=None`` (default) constructs nothing — the bit-for-bit
contract of the rest of :mod:`repro.obs` applies.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "Trial",
    "TrialFailure",
    "SweepCache",
    "SweepCheckpoint",
    "code_version",
    "resolve_experiment",
    "run_trial",
    "run_trial_with_summary",
    "run_sweep",
    "run_figure",
]

DEFAULT_CACHE_DIR = Path("results") / "sweep_cache"


def resolve_experiment(experiment: str) -> Callable[..., Any]:
    """Resolve a registry name to its callable.

    ``"fig7b"`` → ``repro.experiments.fig7b.run``;
    ``"ablations:scan_order"`` → ``repro.experiments.ablations.scan_order``;
    a dotted module path (``"mypkg.mymod:fn"``) is imported as-is.
    """
    mod_name, _, fn_name = experiment.partition(":")
    fn_name = fn_name or "run"
    if "." not in mod_name:
        mod_name = f"repro.experiments.{mod_name}"
    module = importlib.import_module(mod_name)
    fn = getattr(module, fn_name, None)
    if fn is None or not callable(fn):
        raise ValueError(f"experiment {experiment!r} resolves to no callable")
    return fn


@dataclass(frozen=True)
class Trial:
    """One experiment invocation: registry name + kwargs.

    Kwargs must be JSON-serializable (numbers, strings, bools, lists/tuples,
    dicts) — they both drive the experiment and address the cache.
    """

    experiment: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def cache_key(self, code: str | None = None) -> str:
        """Content-addressed identity: (experiment, kwargs, code-version)."""
        payload = {
            "experiment": self.experiment,
            "kwargs": _jsonify(self.kwargs),
            "code": code if code is not None else code_version(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _jsonify(value: Any) -> Any:
    """Normalize to JSON-compatible python types (recursively).

    numpy scalars unwrap via ``.item()``, arrays become nested lists, and
    tuples become lists — exactly what ``json.loads(json.dumps(x))`` would
    produce, so cached and freshly computed results are indistinguishable.
    """
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if hasattr(value, "dtype") and getattr(value, "ndim", None) == 0:
        return _jsonify(value.item())  # numpy scalar / 0-d array
    if hasattr(value, "tolist"):  # numpy array
        return _jsonify(value.tolist())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"trial results must be JSON-compatible, got {type(value).__name__}"
    )


_CODE_VERSION: str | None = None


def code_version() -> str:
    """A fingerprint of the installed ``repro`` sources.

    Cache entries embed this, so editing any module under ``src/repro``
    invalidates every cached sweep — results can never go stale against
    the code that produced them.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


class SweepCache:
    """Content-addressed result store: one JSON file per trial key.

    Writes are crash-safe: each goes to a **uniquely named** temp file in the
    destination directory and lands via :func:`os.replace` (atomic on POSIX).
    A shared temp name would let two pool workers computing the same key
    interleave writes and publish a corrupt entry; a unique name means a
    worker killed mid-write leaves only an orphaned temp file, never half a
    cache entry.  Reads tolerate *and evict* corrupt or truncated entries
    (from older runners or external tampering) so one bad file can never
    poison later cache hits.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any | None:
        entry = self.get_entry(key)
        return None if entry is None else entry["result"]

    def get_entry(self, key: str) -> dict[str, Any] | None:
        """The full stored payload: ``result`` plus, when the trial ran
        under sweep telemetry, its per-trial ``telemetry`` summary — so a
        cache hit contributes to aggregation exactly like a fresh run."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _evict(self, path: Path) -> None:
        """Delete a corrupt entry so it degrades to a clean miss forever."""
        try:
            path.unlink()
            self.evictions += 1
        except OSError:  # pragma: no cover - raced with another evictor
            pass

    def put(
        self,
        key: str,
        trial: Trial,
        result: Any,
        telemetry: dict[str, Any] | None = None,
    ) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment": trial.experiment,
            "kwargs": _jsonify(trial.kwargs),
            "code": code_version(),
            "result": result,
        }
        if telemetry is not None:
            payload["telemetry"] = telemetry
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)  # atomic publish: readers see old or new, never half
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of a trial that was retried and then skipped.

    Placed in the failed trial's result slot so sweep output stays aligned
    with its trial list; ``error`` is the worker-side exception (or timeout /
    death description), ``attempts`` counts executions including retries.
    """

    experiment: str
    kwargs: dict[str, Any]
    error: str
    attempts: int
    timed_out: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "kwargs": self.kwargs,
            "error": self.error,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TrialFailure":
        return cls(
            experiment=payload["experiment"],
            kwargs=dict(payload["kwargs"]),
            error=payload["error"],
            attempts=int(payload["attempts"]),
            timed_out=bool(payload.get("timed_out", False)),
        )


class SweepCheckpoint:
    """Append-only JSONL journal of completed trials for crash-safe resume.

    One line per completed trial: ``{"key": <cache key>, "result": ...}`` or
    ``{"key": ..., "failure": {...}}``.  Appends are single ``write`` calls
    flushed to disk, so a SIGKILL can truncate at most the final line —
    :meth:`load` skips unparsable lines, sacrificing at worst one trial of
    progress.  Keys are content-addressed (experiment, kwargs, code
    version), so a checkpoint never resumes stale results across code edits
    and is indifferent to trial order.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def load(self) -> dict[str, dict[str, Any]]:
        """Map of cache key -> journal record, tolerating a truncated tail."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        entries: dict[str, dict[str, Any]] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # the line the kill cut short
            if isinstance(record, dict) and isinstance(record.get("key"), str):
                entries[record["key"]] = record
        return entries

    def append(
        self,
        key: str,
        result: Any = None,
        failure: TrialFailure | None = None,
        telemetry: dict[str, Any] | None = None,
    ) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record: dict[str, Any] = {"key": key}
        if failure is not None:
            record["failure"] = failure.as_dict()
        else:
            record["result"] = result
            if telemetry is not None:
                record["telemetry"] = telemetry
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())


def run_trial(trial: Trial) -> Any:
    """Execute one trial in-process and return its normalized result.

    Top-level so it pickles for pool workers.
    """
    fn = resolve_experiment(trial.experiment)
    return _jsonify(fn(**trial.kwargs))


def _peak_rss_kb() -> int | None:
    """This process's memory high-water mark in KiB (None off-Unix).

    In a resilient fork the number is trial-accurate (one trial per
    process); in a reused pool worker it is the worker's running maximum —
    still enough for the campaign monitor to spot a leaking trial family.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes there
        rss //= 1024
    return int(rss)


def run_trial_with_summary(trial: Trial) -> tuple[Any, dict[str, Any]]:
    """Execute one trial under a fresh telemetry collector.

    Returns ``(result, summary)`` where the summary is the JSON-compatible
    digest of :meth:`repro.obs.Telemetry.summary` plus the trial's wall
    time and the worker's peak RSS — small enough to cross a worker pipe,
    land in the cache, and be folded into the sweep-level collector with
    ``merge_summary``.  The collector is trial-local, so fork-isolated
    workers never need to ship the (unpicklable, PHY-laden) span tree back
    to the parent.

    Top-level so it pickles for pool workers.
    """
    from .. import obs as _obs

    tel = _obs.Telemetry()
    start = time.perf_counter()
    with _obs.use(tel):
        result = run_trial(trial)
    summary = tel.summary()
    summary["wall_s"] = time.perf_counter() - start
    summary["peak_rss_kb"] = _peak_rss_kb()
    return result, summary


def _run_trial_feed(args: tuple[Trial, str, str]) -> tuple[Any, dict[str, Any]]:
    """Pool/in-process worker body that streams its own campaign records.

    Each worker process constructs its own :class:`CampaignFeed` (own shard
    file — concurrent writers never share a file descriptor) and brackets
    the trial with ``launched`` / ``completed``, or a ``failed`` record if
    the trial raises (the exception still propagates, preserving the
    non-resilient path's fail-fast semantics).

    Top-level so it pickles for pool workers.
    """
    from ..obs.campaign import CampaignFeed

    trial, feed_root, run_id = args
    feed = CampaignFeed(feed_root, run_id=run_id)
    key = trial.cache_key()
    kwargs = _jsonify(trial.kwargs)
    feed.emit_trial("launched", key, trial.experiment, kwargs, attempt=1)
    try:
        result, summary = run_trial_with_summary(trial)
    except BaseException as exc:  # noqa: BLE001 - record, then re-raise
        feed.emit_trial(
            "failed",
            key,
            trial.experiment,
            kwargs,
            error=f"{type(exc).__name__}: {exc}",
            attempts=1,
        )
        raise
    feed.emit_trial("completed", key, trial.experiment, kwargs, summary=summary)
    return result, summary


def _resilient_child(conn, trial: Trial, with_summary: bool = False) -> None:
    """Worker body for the self-healing executor (top-level: must pickle)."""
    try:
        result = (
            run_trial_with_summary(trial) if with_summary else run_trial(trial)
        )
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def _run_resilient(
    pending: list[tuple[int, Trial]],
    processes: int,
    timeout: float | None,
    retries: int,
    backoff_base: float,
    backoff_max: float,
    on_complete: Callable[[int, Trial, Any, int], None],
    with_summary: bool = False,
    on_event: Callable[..., None] | None = None,
) -> dict[int, Any]:
    """Run trials in single-trial worker processes with healing.

    Each trial forks its own worker, so a crash or SIGKILL takes down one
    attempt, not a shared pool; a hung worker is terminated at its deadline.
    Failures are retried up to *retries* times with bounded exponential
    backoff (``backoff_base * 2**(attempt-1)``, capped at ``backoff_max``
    seconds), then settled as :class:`TrialFailure`.  ``on_complete`` fires
    as each slot settles (the checkpoint/cache hook); ``on_event`` fires on
    every lifecycle transition (``launched`` / ``timeout`` / ``retry`` —
    the campaign-feed hook).  Returns slot -> result-or-failure.
    """
    ctx = get_context("fork")

    def event(name: str, slot: int, trial: Trial, attempt: int, **info) -> None:
        if on_event is not None:
            on_event(name, slot, trial, attempt, **info)
    ready: deque[tuple[int, Trial, int]] = deque(
        (slot, trial, 1) for slot, trial in pending
    )
    parked: list[tuple[float, int, Trial, int]] = []  # (not_before, slot, trial, attempt)
    running: dict[Any, tuple[Any, int, Trial, int, float | None]] = {}
    out: dict[int, Any] = {}
    workers = max(1, processes)

    def launch(slot: int, trial: Trial, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_resilient_child,
            args=(child_conn, trial, with_summary),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        running[parent_conn] = (proc, slot, trial, attempt, deadline)
        event("launched", slot, trial, attempt)

    def settle_failure(slot: int, trial: Trial, attempt: int, error: str, timed_out: bool) -> None:
        if attempt <= retries:
            delay = min(backoff_max, backoff_base * (2 ** (attempt - 1)))
            parked.append((time.monotonic() + delay, slot, trial, attempt + 1))
            event(
                "retry",
                slot,
                trial,
                attempt,
                error=error,
                timed_out=timed_out,
                next_delay_s=delay,
            )
            return
        failure = TrialFailure(
            experiment=trial.experiment,
            kwargs=_jsonify(trial.kwargs),
            error=error,
            attempts=attempt,
            timed_out=timed_out,
        )
        out[slot] = failure
        on_complete(slot, trial, failure, attempt)

    while ready or parked or running:
        now = time.monotonic()
        if parked:
            ripe = [entry for entry in parked if entry[0] <= now]
            if ripe:
                parked[:] = [entry for entry in parked if entry[0] > now]
                for _, slot, trial, attempt in sorted(ripe):
                    ready.append((slot, trial, attempt))
        while ready and len(running) < workers:
            slot, trial, attempt = ready.popleft()
            launch(slot, trial, attempt)
        if not running:
            if parked:
                time.sleep(max(0.0, min(entry[0] for entry in parked) - time.monotonic()))
            continue
        # Wake at the earliest of: a worker speaking (or dying — EOF wakes the
        # pipe too), the nearest deadline, the nearest parked retry.
        wait_s = 0.5
        deadlines = [d for (_, _, _, _, d) in running.values() if d is not None]
        if deadlines:
            wait_s = min(wait_s, max(0.0, min(deadlines) - now))
        if parked:
            wait_s = min(wait_s, max(0.0, min(e[0] for e in parked) - now))
        spoke = _mp_connection.wait(list(running), timeout=wait_s)
        for conn in spoke:
            proc, slot, trial, attempt, _ = running.pop(conn)
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                # The worker died without reporting — crash, OOM-kill, ...
                status, payload = "died", f"worker died (exit code {proc.exitcode})"
            conn.close()
            proc.join()
            if status == "ok":
                out[slot] = payload
                on_complete(slot, trial, payload, attempt)
            else:
                settle_failure(slot, trial, attempt, payload, timed_out=False)
        now = time.monotonic()
        for conn, (proc, slot, trial, attempt, deadline) in list(running.items()):
            if deadline is not None and now >= deadline:
                del running[conn]
                proc.terminate()
                proc.join()
                conn.close()
                event("timeout", slot, trial, attempt, timeout_s=timeout)
                settle_failure(
                    slot,
                    trial,
                    attempt,
                    f"timed out after {timeout}s",
                    timed_out=True,
                )
    return out


def run_sweep(
    trials: list[Trial],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache: SweepCache | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff_base: float = 0.5,
    backoff_max: float = 8.0,
    checkpoint: str | os.PathLike | SweepCheckpoint | None = None,
    resume: bool = False,
    telemetry: Any | None = None,
    campaign_dir: str | os.PathLike | None = None,
) -> list[Any]:
    """Run *trials*, returning their results in trial order.

    ``processes`` > 1 fans cache-missed trials over a ``multiprocessing``
    pool (fork start method — workers inherit ``sys.path``); ``None`` or 1
    runs them in-process.  Passing ``cache_dir`` (or a prebuilt ``cache``)
    enables the on-disk result cache; hits skip execution entirely.

    Self-healing knobs (any of which switch execution to isolated
    single-trial worker processes — see the module docstring):

    timeout:
        per-trial wall-clock budget in seconds; a worker past it is killed
        and the trial retried.
    retries:
        extra attempts per trial after a raise / hang / worker death, with
        bounded exponential backoff; an exhausted trial settles as a
        :class:`TrialFailure` in its result slot.
    checkpoint:
        path (or prebuilt :class:`SweepCheckpoint`) of the JSONL journal
        recording each completed trial as it finishes.
    resume:
        reload the checkpoint and skip trials it already holds.  Results
        depend only on trial kwargs, so a killed-and-resumed sweep is
        bit-for-bit identical to an uninterrupted one.
    telemetry:
        an enabled :class:`repro.obs.Telemetry` collector to aggregate the
        sweep into.  Each trial then runs under its own fresh collector
        (workers included — summaries cross the fork pipe as plain JSON)
        and its digest is folded into this one with ``merge_summary``;
        cached and checkpointed trials contribute the summary stored with
        their entry, so aggregation is stable across cache hits and
        resumes.  Adds ``runner.trials`` / ``runner.cache_hits`` /
        ``runner.failures`` counters and a ``runner.trial_wall_s``
        histogram.  ``None`` (the default) changes nothing.
    campaign_dir:
        directory for the streaming campaign feed (see the module
        docstring and :mod:`repro.obs.campaign`).  One fsynced JSONL
        record per trial event, watchable live with
        ``python -m repro.obs.campaign <dir>``.  ``None`` (the default)
        emits nothing and is bit-for-bit free.
    """
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir)
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    journal: SweepCheckpoint | None = None
    if checkpoint is not None:
        journal = (
            checkpoint
            if isinstance(checkpoint, SweepCheckpoint)
            else SweepCheckpoint(checkpoint)
        )
    feed = None
    if campaign_dir is not None:
        from ..obs.campaign import CampaignFeed

        feed = CampaignFeed(campaign_dir)
    resilient = timeout is not None or retries > 0 or journal is not None
    collect = telemetry is not None and getattr(telemetry, "enabled", False)
    # The feed wants per-trial wall/RSS/metric snapshots even when no
    # sweep-level collector is aggregating, so summaries ride along in
    # either case (telemetry inside a trial never perturbs its results).
    want_summary = collect or feed is not None

    def absorb(summary: dict[str, Any] | None, cached: bool = False) -> None:
        """Fold one trial's digest into the sweep collector."""
        if not collect:
            return
        metrics = telemetry.metrics
        metrics.counter("runner.trials").inc()
        if cached:
            metrics.counter("runner.cache_hits").inc()
        if summary:
            telemetry.merge_summary(summary)
            wall = summary.get("wall_s")
            if wall is not None:
                metrics.histogram("runner.trial_wall_s").observe(float(wall))

    results: list[Any] = [None] * len(trials)
    need_keys = cache is not None or journal is not None or feed is not None
    code = code_version() if need_keys else None
    keys: list[str | None] = [
        trial.cache_key(code) if need_keys else None for trial in trials
    ]

    if feed is not None:
        feed.emit(
            "sweep-start",
            None,
            trials=len(trials),
            experiments=sorted({t.experiment for t in trials}),
            resume=bool(resume),
        )

    # A trial satisfied by the cache *and* the journal must contribute to
    # aggregation — and emit its campaign ``cached`` record — exactly once:
    # the done-flag set by the cache pass guards the resume pass below.
    done = [False] * len(trials)
    if cache is not None:
        for idx, key in enumerate(keys):
            entry = cache.get_entry(key)
            if entry is not None:
                results[idx] = entry["result"]
                done[idx] = True
                absorb(entry.get("telemetry"), cached=True)
                if feed is not None:
                    feed.emit_trial(
                        "cached",
                        key,
                        trials[idx].experiment,
                        _jsonify(trials[idx].kwargs),
                        summary=entry.get("telemetry"),
                        source="cache",
                    )
    if journal is not None and resume:
        completed = journal.load()
        for idx, key in enumerate(keys):
            if done[idx] or key not in completed:
                continue
            record = completed[key]
            if "failure" in record:
                failure = TrialFailure.from_dict(record["failure"])
                results[idx] = failure
                if collect:
                    telemetry.metrics.counter("runner.trials").inc()
                    telemetry.metrics.counter("runner.failures").inc()
                if feed is not None:
                    feed.emit_trial(
                        "failed",
                        key,
                        failure.experiment,
                        failure.kwargs,
                        error=failure.error,
                        attempts=failure.attempts,
                        timed_out=failure.timed_out,
                        source="journal",
                    )
            else:
                results[idx] = record["result"]
                absorb(record.get("telemetry"), cached=True)
                if feed is not None:
                    feed.emit_trial(
                        "cached",
                        key,
                        trials[idx].experiment,
                        _jsonify(trials[idx].kwargs),
                        summary=record.get("telemetry"),
                        source="journal",
                    )
            done[idx] = True

    pending = [(idx, trials[idx]) for idx in range(len(trials)) if not done[idx]]

    if resilient:
        def on_complete(idx: int, trial: Trial, outcome: Any, attempt: int = 1) -> None:
            if isinstance(outcome, TrialFailure):
                if journal is not None:
                    journal.append(keys[idx], failure=outcome)
                if collect:
                    telemetry.metrics.counter("runner.trials").inc()
                    telemetry.metrics.counter("runner.failures").inc()
                if feed is not None:
                    feed.emit_trial(
                        "failed",
                        keys[idx],
                        outcome.experiment,
                        outcome.kwargs,
                        error=outcome.error,
                        attempts=outcome.attempts,
                        timed_out=outcome.timed_out,
                    )
                return
            summary: dict[str, Any] | None = None
            if want_summary:
                outcome, summary = outcome
                absorb(summary)
            if cache is not None:
                cache.put(keys[idx], trial, outcome, telemetry=summary)
            if journal is not None:
                journal.append(keys[idx], result=outcome, telemetry=summary)
            if feed is not None:
                feed.emit_trial(
                    "completed",
                    keys[idx],
                    trial.experiment,
                    _jsonify(trial.kwargs),
                    summary=summary,
                    attempt=attempt,
                )

        def on_event(name: str, idx: int, trial: Trial, attempt: int, **info) -> None:
            if feed is not None:
                feed.emit_trial(
                    name,
                    keys[idx],
                    trial.experiment,
                    _jsonify(trial.kwargs),
                    attempt=attempt,
                    **info,
                )

        fresh_by_idx = _run_resilient(
            pending,
            processes=processes or 1,
            timeout=timeout,
            retries=retries,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
            on_complete=on_complete,
            with_summary=want_summary,
            on_event=on_event if feed is not None else None,
        )
        for idx, outcome in fresh_by_idx.items():
            if want_summary and not isinstance(outcome, TrialFailure):
                outcome = outcome[0]
            results[idx] = outcome
        if feed is not None:
            feed.emit(
                "sweep-end",
                None,
                trials=len(trials),
                failures=sum(1 for r in results if isinstance(r, TrialFailure)),
            )
        return results

    todo = [trial for _, trial in pending]
    if feed is not None:
        feed_args = [(trial, str(feed.root), feed.run_id) for trial in todo]
        if processes is not None and processes > 1 and len(todo) > 1:
            ctx = get_context("fork")
            with ctx.Pool(processes=processes) as pool:
                fresh = pool.map(_run_trial_feed, feed_args)
        else:
            fresh = [_run_trial_feed(args) for args in feed_args]
    else:
        runner = run_trial_with_summary if want_summary else run_trial
        if processes is not None and processes > 1 and len(todo) > 1:
            ctx = get_context("fork")
            with ctx.Pool(processes=processes) as pool:
                fresh = pool.map(runner, todo)
        else:
            fresh = [runner(trial) for trial in todo]

    for (idx, trial), outcome in zip(pending, fresh):
        summary = None
        if want_summary:
            outcome, summary = outcome
            absorb(summary)
        results[idx] = outcome
        if cache is not None:
            cache.put(keys[idx], trial, outcome, telemetry=summary)
    if feed is not None:
        feed.emit("sweep-end", None, trials=len(trials), failures=0)
    return results


def run_figure(
    experiment: str,
    grid_param: str,
    grid_values: list | tuple,
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache: SweepCache | None = None,
    timeout: float | None = None,
    retries: int = 0,
    checkpoint: str | os.PathLike | SweepCheckpoint | None = None,
    resume: bool = False,
    telemetry: Any | None = None,
    campaign_dir: str | os.PathLike | None = None,
    **common: Any,
) -> list[dict]:
    """Sweep one grid parameter of a figure in parallel; flatten in grid order.

    The figure's ``run`` must iterate ``grid_param`` in its outermost loop
    with per-point seeding from kwargs (all the ``figX``/ablation runners
    do), so ``run_figure("fig7b", "offered_loads", [a, b], seed=0)`` is
    row-for-row identical to ``fig7b.run(offered_loads=(a, b), seed=0)``.

    ``timeout``/``retries``/``checkpoint``/``resume`` pass through to
    :func:`run_sweep`; a grid point whose trial settles as a
    :class:`TrialFailure` raises here because a figure cannot be flattened
    with a hole in it.
    """
    trials = [
        Trial(experiment=experiment, kwargs={grid_param: [value], **common})
        for value in grid_values
    ]
    results = run_sweep(
        trials,
        processes=processes,
        cache_dir=cache_dir,
        cache=cache,
        timeout=timeout,
        retries=retries,
        checkpoint=checkpoint,
        resume=resume,
        telemetry=telemetry,
        campaign_dir=campaign_dir,
    )
    rows: list[dict] = []
    for value, result in zip(grid_values, results):
        if isinstance(result, TrialFailure):
            raise RuntimeError(
                f"{experiment} failed at {grid_param}={value!r} after "
                f"{result.attempts} attempt(s): {result.error}"
            )
        if not isinstance(result, list):
            raise TypeError(
                f"{experiment} returned {type(result).__name__}, expected row list"
            )
        rows.extend(result)
    return rows
