"""Field handoff ablation: does field-level re-forming pay for itself?

Not a paper figure — the paper's forming is a one-shot deploy-time pass.
This bench puts the multi-cluster field under the PR 6 mobility regimes
(bounded drift per duty-cycle boundary at increasing speeds) and compares
the field-level handoff policies (DESIGN.md §13):

* ``off``        — the frozen deploy-time forming: drifted boundary
  sensors stay on their original roster until it can no longer physically
  reach them (the degradation baseline);
* ``staleness``  — the field coordinator re-runs the Voronoi forming over
  live positions when its staleness trigger fires and hands a bounded
  batch of sensors per boundary to their nearest live head;
* ``placement``  — the same, plus one bounded quantization step of head
  re-placement per re-form (Karimi-Bidhendi two-tier descent).

Every policy at one (speed, seed) point replays the *same* drift — the
mobility stream is a pure function of the run seed, untouched by the
coordinator — so columns differ only by how the field responds.

Headline columns: ``coverage`` is the ground-truth serviceable fraction at
sim end (roster hearing with a finite hop path to a live head);
``staleness`` is the fraction of sensors whose nearest live head differs
from the one serving them; ``energy_mj`` is the field-wide radio energy
and ``mj_per_pkt`` what one delivered packet cost.  The displacement axis
is the mobility speed.

Run:  python -m repro.experiments.handoff_ablation
"""

from __future__ import annotations

from ..net.multicluster_sim import MultiClusterConfig, run_multicluster_simulation
from .common import print_table

__all__ = ["POLICIES", "run", "summarize", "main"]

POLICIES = ("off", "staleness", "placement")


def _policy_config(policy: str) -> dict:
    if policy == "off":
        return {"handoff": "off"}
    if policy == "staleness":
        return {"handoff": "staleness"}
    if policy == "placement":
        return {"handoff": "staleness", "handoff_head_step_m": 6.0}
    raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")


def _field_energy_j(res) -> float:
    """Total radio energy over every transceiver, each counted once."""
    seen: set[int] = set()
    total = 0.0
    for mac in res.macs:
        for trx in mac.phy.transceivers:
            if id(trx) not in seen:
                seen.add(id(trx))
                total += trx.meter.consumed_j
    return total


def run(
    n_cycles: int = 10,
    seeds: tuple[int, ...] = (0, 1, 2),
    speeds: tuple[float, ...] = (2.0, 4.0),
    policies: tuple[str, ...] = POLICIES,
) -> list[dict]:
    """One row per (mobility speed, seed, policy) grid point."""
    rows: list[dict] = []
    for speed in speeds:
        for seed in seeds:
            for policy in policies:
                cfg = MultiClusterConfig(
                    n_cycles=n_cycles,
                    seed=seed,
                    mobility_speed_mps=speed,
                    **_policy_config(policy),
                )
                res = run_multicluster_simulation(cfg)
                energy = _field_energy_j(res)
                delivered = res.packets_delivered
                rows.append(
                    {
                        "speed": speed,
                        "seed": seed,
                        "policy": policy,
                        "delivered": delivered,
                        "staleness": round(res.final_assignment_staleness, 4),
                        "coverage": round(res.field_coverage, 4),
                        "reforms": res.field_reforms,
                        "handoffs": res.field_handoffs,
                        "energy_mj": round(energy * 1e3, 3),
                        "mj_per_pkt": round(energy * 1e3 / delivered, 4)
                        if delivered
                        else -1.0,
                    }
                )
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Seed-averaged payoff per (speed, policy) — the acceptance view."""
    groups: dict[tuple[float, str], list[dict]] = {}
    for r in rows:
        groups.setdefault((r["speed"], r["policy"]), []).append(r)
    out: list[dict] = []
    for (speed, policy), rs in sorted(groups.items()):
        n = len(rs)
        out.append(
            {
                "speed": speed,
                "policy": policy,
                "delivered": round(sum(r["delivered"] for r in rs) / n, 1),
                "staleness": round(sum(r["staleness"] for r in rs) / n, 4),
                "coverage": round(sum(r["coverage"] for r in rs) / n, 4),
                "handoffs": round(sum(r["handoffs"] for r in rs) / n, 1),
                "mj_per_pkt": round(sum(r["mj_per_pkt"] for r in rs) / n, 4),
            }
        )
    return out


def main() -> None:
    rows = run()
    print_table(
        "Field handoff ablation: policy vs mobility speed "
        "(60 sensors / 3 heads, 10 cycles; coverage = reachable by a live "
        "head at sim end)",
        rows,
    )
    means = summarize(rows)
    print_table("Seed-averaged payoff per (speed, policy)", means)
    # The acceptance contract: at every displacement regime the staleness-
    # triggered re-forming strictly beats the frozen forming on seed-mean
    # coverage and final staleness (and, in practice, by 2x on delivery).
    by_key = {(m["speed"], m["policy"]): m for m in means}
    for speed in sorted({m["speed"] for m in means}):
        off, on = by_key[(speed, "off")], by_key[(speed, "staleness")]
        assert on["coverage"] > off["coverage"], (speed, on, off)
        assert on["staleness"] < off["staleness"], (speed, on, off)
        assert on["delivered"] > off["delivered"], (speed, on, off)
    print("\nstaleness-triggered handoff strictly beats the frozen forming "
          "on coverage, staleness and delivery at every speed.")


if __name__ == "__main__":
    main()
