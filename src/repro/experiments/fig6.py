"""Fig. 6 — the CPAR gadget for Partition set {3, 2, 1, 2}.

The paper's example: the cluster built from the multiset {3,2,1,2} can be
divided into two sectors meeting the pseudo-rate threshold exactly because
{3,1} / {2,2} is an equal-sum partition ("let the first and third branch be
in the same sector as S1 and the second and fourth with S2").
"""

from __future__ import annotations

from ..hardness.cpar import (
    brute_force_min_pseudo_rate,
    cpar_from_partition,
    sectors_from_subsets,
    subsets_from_sectors,
)
from ..hardness.partition import find_partition
from .common import print_table

__all__ = ["FIG6_SET", "run", "main"]

FIG6_SET = [3, 2, 1, 2]


def run(values: list[int] | None = None) -> list[dict]:
    values = list(values or FIG6_SET)
    inst = cpar_from_partition(values)
    split = find_partition(values)
    rows: list[dict] = [
        {"quantity": "integer set", "value": str(values)},
        {"quantity": "threshold B = A + 2", "value": inst.threshold},
        {"quantity": "cluster size (sensors)", "value": inst.cluster.n_sensors},
    ]
    best_rate, best_partition = brute_force_min_pseudo_rate(inst)
    rows.append({"quantity": "best achievable max pseudo rate", "value": best_rate})
    if split is not None:
        left, right = split
        partition = sectors_from_subsets(inst, left, right)
        rate = partition.max_pseudo_rate()
        back_left, back_right = subsets_from_sectors(inst, partition)
        rows.extend(
            [
                {"quantity": "equal-sum split", "value": f"{[values[i] for i in left]} / {[values[i] for i in right]}"},
                {"quantity": "split's max pseudo rate", "value": rate},
                {"quantity": "meets threshold", "value": rate <= inst.threshold},
                {"quantity": "subsets recovered from sectors", "value": f"{back_left} / {back_right}"},
            ]
        )
    else:
        rows.append({"quantity": "equal-sum split", "value": "(none exists)"})
        rows.append(
            {"quantity": "meets threshold", "value": best_rate <= inst.threshold}
        )
    return rows


def main() -> None:
    print_table("Fig. 6 — CPAR gadget (Partition -> sector partition)", run())


if __name__ == "__main__":
    main()
