"""Fig. 7(c) — lifetime ratio of a sectored vs unsectored cluster.

Cluster sizes 10..50; every sensor has one packet per cycle; both variants
sustain 100% throughput.  The paper reports a ratio that is always above 1
and grows with cluster size (~1.55 at 10 sensors to ~2.05 at 50): larger
clusters split into more sectors, so each sensor's awake share shrinks
more.  Our absolute ratios depend on the energy constants (documented in
EXPERIMENTS.md); the monotone >1 shape is the reproduced claim.
"""

from __future__ import annotations

from ..metrics.lifetime import EnergyRateModel, evaluate_lifetime_ratio
from .common import print_table

__all__ = ["DEFAULT_SIZES_SWEEP", "run", "run_point", "main"]

DEFAULT_SIZES_SWEEP = (10, 15, 20, 25, 30, 35, 40, 45, 50)


def run_point(
    n_sensors: int,
    seeds: tuple[int, ...] = (0, 1, 2),
    model: EnergyRateModel = EnergyRateModel(),
    **overrides,
) -> dict:
    ratios = []
    n_sectors = []
    for seed in seeds:
        result = evaluate_lifetime_ratio(
            n_sensors=n_sensors, seed=seed, model=model, **overrides
        )
        ratios.append(result.lifetime_ratio)
        n_sectors.append(result.n_sectors)
    return {
        "n_sensors": n_sensors,
        "lifetime_ratio": sum(ratios) / len(ratios),
        "mean_sectors": sum(n_sectors) / len(n_sectors),
    }


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES_SWEEP,
    seeds: tuple[int, ...] = (0, 1, 2),
    model: EnergyRateModel = EnergyRateModel(),
    **overrides,
) -> list[dict]:
    return [run_point(n, seeds=seeds, model=model, **overrides) for n in sizes]


def main() -> None:
    rows = run()
    print_table(
        "Fig. 7(c) — lifetime ratio, sectored vs unsectored (paper: ~1.55 -> ~2.05)",
        rows,
    )


if __name__ == "__main__":
    main()
