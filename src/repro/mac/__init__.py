"""MAC protocols over the discrete-event PHY."""

from .base import (
    GROUND_SENSOR_PROPAGATION,
    ClusterPhy,
    MacTimings,
    build_cluster_phy,
    geometric_oracle,
    sensor_power_for_range,
)
from .discovery import DiscoveryOutcome, DiscoveryProtocol
from .pollmac import (
    AppPacket,
    CycleStats,
    PollingClusterMac,
    PollingSensorAgent,
    PollInstruction,
    phy_truth_oracle,
)

__all__ = [
    "ClusterPhy",
    "MacTimings",
    "build_cluster_phy",
    "geometric_oracle",
    "GROUND_SENSOR_PROPAGATION",
    "sensor_power_for_range",
    "PollingClusterMac",
    "PollingSensorAgent",
    "PollInstruction",
    "AppPacket",
    "CycleStats",
    "phy_truth_oracle",
    "DiscoveryProtocol",
    "DiscoveryOutcome",
]
