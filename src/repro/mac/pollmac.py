"""The cluster-head polling MAC on the discrete-event PHY (paper Sec. II).

One duty cycle, exactly as the paper describes it:

1. Sensors wake at the time the head announced last cycle; the head
   broadcasts a **wakeup/inquiry** message.
2. **Ack collection**: the head polls the start sensors of a set-cover of
   relaying paths (Sec. V-F); relays merge their own ack (+ packet count)
   into the forwarded ack packet.
3. **Slotted data polling**: each slot begins with the head broadcasting a
   poll message naming the slot's transmissions (the slot "clock" of the
   pipelined system); polled sensors transmit, named receivers listen, and
   everyone else idles for the slot.  The head knows which slot each packet
   should arrive in, detects losses there, and simply re-polls — the
   on-line Table-1 algorithm driven by *real* PHY deliveries.
4. The head broadcasts a **sleep** message carrying the next wake time and
   the cluster sleeps out the rest of the cycle.

No link-level acknowledgments, no sensor-originated control traffic, no
carrier sense: all coordination is the head's polls, which is the entire
point of the design.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from .. import obs as _obs
from .. import validate as _validate
from ..core.ack import plan_ack_collection
from ..core.online import OnlinePollingScheduler
from ..core.requests import RequestState
from ..core.transmissions import Transmission
from ..interference.physical import PhysicalModelOracle
from ..radio.packet import BROADCAST_ADDR, DEFAULT_SIZES, Frame, FrameSizes, FrameType
from ..routing.backup import BackupRoutes, compute_backup_routes
from ..routing.minmax import FlowSolution, solve_min_max_load
from ..routing.warmcache import SolverCache
from ..routing.paths import RoutingPlan
from ..routing.repair import prune_dead_nodes, repair_routing
from ..routing.rotation import PathRotator
from ..sim.kernel import Simulator
from ..sim.process import Process, Timeout
from ..sim.units import transmission_time
from ..topology.cluster import HEAD, Cluster
from ..topology.recluster import StalenessTracker, StalenessTrigger, reform_cluster
from .base import ClusterPhy, MacTimings
from .vector_engine import maybe_vector_engine

__all__ = [
    "AppPacket",
    "PollInstruction",
    "PollingSensorAgent",
    "PollingClusterMac",
    "CycleStats",
    "phy_truth_oracle",
]

_packet_seq = itertools.count()


@dataclass(frozen=True)
class AppPacket:
    """An application data unit generated at a sensor."""

    origin: int
    seq: int
    created: float


@dataclass(frozen=True)
class PollInstruction:
    """One entry of a poll message: who sends what to whom this slot."""

    sender: int  # scheduler node ids (HEAD = -1)
    receiver: int
    request_id: int
    hop_index: int


def phy_truth_oracle(phy: ClusterPhy, max_group_size: int = 2) -> PhysicalModelOracle:
    """The oracle matching the medium's actual decode rule exactly.

    ``min(signal) >= sensitivity`` is folded in by raising the effective
    noise floor to ``sensitivity / beta`` (conservative under interference,
    never optimistic), so a link the oracle approves always decodes on a
    quiet channel — the property the Table-1 algorithm needs.
    """
    medium = phy.medium
    effective_noise = max(medium.noise, medium.rx_sensitivity / medium.beta)
    power = medium.rx_power
    if phy.index_map is not None:
        # Shared-medium operation: restrict to this cluster's nodes (local
        # layout: sensors then head).  Other clusters' interference is
        # invisible to the head — exactly the Sec. V-G problem the
        # coordination mechanisms exist to solve.
        idx = np.asarray(phy.index_map)
        power = power[np.ix_(idx, idx)]
    return PhysicalModelOracle(
        power=power,
        beta=medium.beta,
        noise=effective_noise,
        max_group_size=max_group_size,
    )


class PollingSensorAgent:
    """A basic sensor: dumb, poll-driven, asleep whenever allowed."""

    def __init__(
        self,
        phy: ClusterPhy,
        sensor: int,
        sizes: FrameSizes,
        timings: MacTimings,
        cluster_id: int = 0,
    ):
        self.phy = phy
        self.sensor = sensor
        self.sizes = sizes
        self.timings = timings
        self.cluster_id = cluster_id
        self.trx = phy.trx(sensor)
        self.own_queue: deque[AppPacket] = deque()
        self.assigned: dict[int, AppPacket] = {}
        self.relay_buffer: dict[int, AppPacket] = {}
        self.ack_buffer: dict[int, dict[int, int]] = {}
        self.cycle_quota = 0  # own packets admitted to the current cycle
        self.packets_sent = 0
        # Blacklist propagation (head wakeup broadcasts): origins declared
        # dead by the head; relays refuse to buffer their packets.
        self.known_dead: set[int] = set()
        self.packets_purged = 0
        self.trx.on_receive(self._on_frame)

    # -- application side ---------------------------------------------------------

    def generate_packet(self) -> None:
        self.own_queue.append(
            AppPacket(origin=self.sensor, seq=next(_packet_seq), created=self.phy.sim.now)
        )

    @property
    def pending_count(self) -> int:
        return len(self.own_queue)

    # -- frame handling -----------------------------------------------------------

    def _on_frame(self, frame: Frame, rx_power: float) -> None:
        payload = frame.payload
        if isinstance(payload, dict) and payload.get("cluster", self.cluster_id) != self.cluster_id:
            return  # another cluster's traffic overheard on a shared channel
        if frame.ftype is FrameType.POLL:
            self._on_poll(frame.payload)
        elif frame.ftype is FrameType.DATA:
            self._on_data(frame.payload)
        elif frame.ftype is FrameType.ACK_REPORT:
            self._on_ack(frame.payload)
        elif frame.ftype is FrameType.SLEEP:
            self._on_sleep(frame.payload)
        elif frame.ftype is FrameType.WAKEUP:
            self._on_wakeup(frame.payload)

    def _on_wakeup(self, payload=None) -> None:
        """Freeze this cycle's packet quota: packets generated after the
        wakeup inquiry wait for the next cycle, so the count acked to the
        head exactly matches what the sensor will answer polls with.

        The wakeup may carry the head's blacklist of dead sensors; relays
        remember it and drop traffic originating from blacklisted nodes
        (stale in-flight packets of a node declared dead mid-recovery).
        """
        self.assigned.clear()
        self.relay_buffer.clear()
        self.ack_buffer.clear()
        self.cycle_quota = len(self.own_queue)
        if isinstance(payload, dict) and "blacklist" in payload:
            self.known_dead = set(payload["blacklist"])

    def _on_poll(self, payload) -> None:
        frame = self.build_response(payload)
        if frame is None:
            return
        self.phy.sim.schedule(
            self.timings.turnaround, self._transmit_if_possible, frame
        )

    def build_response(self, payload) -> Frame | None:
        """Decode a poll and build this sensor's response frame, if any.

        Shared between the scalar event path (:meth:`_on_poll` schedules the
        frame after the turnaround) and the vector slot engine (which calls
        this directly at the poll-decode instant): queue/quota side effects
        and frame construction order are identical in both engines.
        """
        phase: str = payload["phase"]
        instructions: list[PollInstruction] = payload["instructions"]
        my_sends = [ins for ins in instructions if ins.sender == self.sensor]
        if not my_sends:
            return None
        ins = my_sends[0]  # node-disjoint slots: at most one role per sensor
        if phase == "data":
            packet = self._packet_for(ins)
            if packet is None:
                return None  # upstream loss: nothing to relay; stay silent
            return Frame(
                ftype=FrameType.DATA,
                src=self.phy.phy_index(self.sensor),
                dst=ins.receiver,
                size_bytes=self.sizes.data,
                payload={"instruction": ins, "packet": packet, "cluster": self.cluster_id},
            )
        # ack phase
        report = dict(self.ack_buffer.get(ins.request_id, {}))
        if ins.hop_index == 0:
            report = {}
        report[self.sensor] = self.cycle_quota
        return Frame(
            ftype=FrameType.ACK_REPORT,
            src=self.phy.phy_index(self.sensor),
            dst=ins.receiver,
            size_bytes=self.sizes.ack_report,
            payload={"instruction": ins, "counts": report, "cluster": self.cluster_id},
        )

    def _packet_for(self, ins: PollInstruction):
        if ins.hop_index == 0:
            pkt = self.assigned.get(ins.request_id)
            if pkt is None:
                if not self.own_queue or self.cycle_quota <= 0:
                    return None  # head believes we have more than we do
                pkt = self.own_queue.popleft()
                self.cycle_quota -= 1
                self.assigned[ins.request_id] = pkt
            return pkt
        return self.relay_buffer.get(ins.request_id)

    def _transmit_if_possible(self, frame: Frame) -> None:
        if self.trx.dead:
            # A dead radio can never reach this path (fail-stop puts it to
            # sleep); if it does, the fault plan and MAC state have diverged.
            _validate.MONITOR.record(
                "mac.transmit-while-dead",
                f"sensor {self.sensor} asked to transmit {frame.ftype.name} "
                "after fail-stop death",
                sim_time=self.phy.sim.now,
                nodes=(self.sensor,),
            )
            return
        if not self.trx.is_sleeping and not self.trx.is_transmitting:
            self.trx.transmit(frame)
            if frame.ftype is FrameType.DATA:
                self.packets_sent += 1

    def _on_data(self, payload) -> None:
        ins: PollInstruction = payload["instruction"]
        if ins.receiver == self.sensor:
            packet = payload["packet"]
            if packet.origin in self.known_dead:
                self.packets_purged += 1  # don't relay for a dead origin
                return
            self.relay_buffer[ins.request_id] = packet

    def _on_ack(self, payload) -> None:
        ins: PollInstruction = payload["instruction"]
        if ins.receiver == self.sensor:
            self.ack_buffer[ins.request_id] = dict(payload["counts"])

    def _on_sleep(self, payload) -> None:
        """Sleep until the announced wake time.

        ``members`` (optional) restricts the order to a subset — sector
        operation puts one sector to bed while later sectors (already awake
        for their windows) keep listening.  ``wake_map`` instead carries a
        personal wake time per sensor (the sector window announcement);
        sensors without an entry stay awake.
        """
        wake_map = payload.get("wake_map")
        if wake_map is not None:
            t = wake_map.get(self.sensor)
            if t is not None and t > self.phy.sim.now and not self.trx.is_sleeping:
                self.trx.sleep()
                self.phy.sim.at(t, self.trx.wake)
            return
        members = payload.get("members")
        if members is not None and self.sensor not in members:
            return
        wake_at: float = payload["wake_at"]
        if payload.get("end_of_cycle", True):
            self.assigned.clear()
            self.relay_buffer.clear()
            self.ack_buffer.clear()
        if wake_at <= self.phy.sim.now:
            return  # the announced wake time already passed (overrun cycle)
        if not self.trx.is_sleeping:
            self.trx.sleep()
            self.phy.sim.at(wake_at, self.trx.wake)


@dataclass
class CycleStats:
    """What one duty cycle accomplished."""

    cycle_index: int
    started_at: float
    duty_time: float
    ack_slots: int
    data_slots: int
    packets_delivered: int
    packets_offered: int
    retransmissions: int


class PollingClusterMac:
    """The cluster head side: orchestrates duty cycles over the PHY.

    With ``failure_detection`` enabled the head additionally recovers from
    node deaths: after each cycle it cross-examines the phase outcomes —
    nodes on any delivered path (or whose ack count arrived) are proven
    alive; nodes implicated only in failures accumulate suspicion — and a
    node suspect for ``dead_after_misses`` consecutive cycles is declared
    dead.  Declaring a death blacklists the node, repairs routing around it
    at the duty-cycle boundary (partial coverage if survivors become
    unreachable), and propagates the blacklist in the next wakeup broadcast.
    Detection is off by default so fault-free runs are bit-for-bit identical
    to the pre-recovery MAC.
    """

    def __init__(
        self,
        phy: ClusterPhy,
        cycle_length: float = 10.0,
        max_group_size: int = 2,
        sizes: FrameSizes = DEFAULT_SIZES,
        timings: MacTimings = MacTimings(),
        routing: FlowSolution | None = None,
        max_slots_per_phase: int = 200_000,
        retry_limit: int | None = 12,
        use_sectors: bool = False,
        slack_factor: float = 1.5,
        cluster_id: int = 0,
        failure_detection: bool = False,
        dead_after_misses: int = 2,
        backup_k: int = 0,
        absent: set[int] | None = None,
        recluster: str = "off",
        recluster_trigger: StalenessTrigger | None = None,
        engine: str = "vector",
        solver_cache: "SolverCache | None" = None,
    ):
        if engine not in ("scalar", "vector"):
            raise ValueError(f"engine must be 'scalar' or 'vector', got {engine!r}")
        self.engine = engine
        # Cross-phase geometry cache for the vector engine, keyed by
        # listening-roster bytes (see vector_engine._GeomEntry).
        self._vector_geom: dict = {}
        # Engine mix over the whole run (how many slots replayed in batch
        # mode vs fell back to the event path) — plain counters, kept even
        # untraced so sweeps and parity tests can report coverage.
        self.vector_slots = 0
        self.scalar_slots = 0
        # Why phases that *requested* the vector engine ran scalar slots
        # anyway (reason -> per-phase count; see maybe_vector_engine).
        self.engine_fallbacks: dict[str, int] = {}
        self.phy = phy
        self.sim = phy.sim
        self.cycle_length = cycle_length
        self.sizes = sizes
        self.timings = timings
        self.max_slots_per_phase = max_slots_per_phase
        self.retry_limit = retry_limit
        self.use_sectors = use_sectors
        self.slack_factor = slack_factor
        self.cluster_id = cluster_id
        self.failure_detection = failure_detection
        if dead_after_misses < 1:
            raise ValueError(f"dead_after_misses must be >= 1, got {dead_after_misses}")
        self.dead_after_misses = dead_after_misses
        if backup_k < 0:
            raise ValueError(f"backup_k must be >= 0, got {backup_k}")
        self.backup_k = backup_k
        if recluster not in ("off", "staleness", "periodic"):
            raise ValueError(
                f"recluster must be 'off', 'staleness' or 'periodic', "
                f"got {recluster!r}"
            )
        self.recluster = recluster
        self.packets_failed = 0
        # Dynamic membership (DESIGN.md §11): sensors the plan pre-allocated
        # but that have not powered up yet (absent), announced departures,
        # joiners awaiting admission at the next re-form, and departures not
        # yet repaired around.  All default-empty, so a static run carries
        # only empty-set unions through the hot path.
        self.absent: set[int] = set(absent or ())
        self.departed: set[int] = set()
        self.pending_joins: set[int] = set()
        self._new_departures: set[int] = set()
        self.reclusters = 0
        self.recluster_log: list[dict] = []
        # Roster announcement cost: a re-form re-announces membership and the
        # polling schedule in the next wakeup broadcast (2 bytes per present
        # sensor), charged once and reset.  Zero when no re-form happened, so
        # static wakeups keep their exact size.
        self._reform_roster_bytes = 0
        self._staleness: StalenessTracker | None = None
        if recluster != "off":
            trigger = recluster_trigger
            if trigger is None:
                trigger = (
                    StalenessTrigger()
                    if recluster == "staleness"
                    else StalenessTrigger(
                        membership_delta=0, repair_fallbacks=0, period_cycles=5
                    )
                )
            if recluster == "periodic" and trigger.period_cycles <= 0:
                raise ValueError(
                    "recluster='periodic' needs a trigger with period_cycles > 0"
                )
            self._staleness = StalenessTracker(trigger=trigger)
        # Recovery state: the topology the head currently plans on (pruned
        # after each repair), declared-dead sensors, survivors that lost
        # their last route, and per-node consecutive-suspect-cycle counters.
        self.active_cluster = phy.cluster
        if self.absent:
            # Joiner slots exist in the PHY from t=0 but must not attract
            # routes until admitted; prune them like the dead.
            self.active_cluster = prune_dead_nodes(phy.cluster, self.absent)
        self.blacklisted: set[int] = set()
        self.unreachable: set[int] = set()
        self.route_repairs = 0
        # One record per repair: which sensors each repair cut off and how
        # many packets were pending at them at that moment, so degradation
        # metrics can reconcile dropped demand exactly (DESIGN.md §8).
        self.repair_log: list[dict] = []
        self._suspect_misses: dict[int, int] = {}
        self.oracle = phy_truth_oracle(phy, max_group_size)
        self.sensors = [
            PollingSensorAgent(phy, i, sizes, timings, cluster_id=cluster_id)
            for i in range(phy.n_sensors)
        ]
        self.head_trx = phy.trx(HEAD)
        self.head_trx.on_receive(self._head_on_frame)
        # Routing is computed once from average traffic (Sec. III-A: "run the
        # network flow algorithm once every long time period").  A sweep's
        # solver cache answers repeat topologies bit-for-bit from memory
        # (the solve is deterministic), so trials sharing a deployment skip
        # the Dinic work entirely (DESIGN.md §12).
        self.solver_cache = solver_cache
        self._adopt_oracle()
        self.routing = routing or self._solve_routing()
        self.rotator = PathRotator(self.routing)
        self.ack_plan = plan_ack_collection(self.active_cluster, self.routing.routing_plan())
        # Proactive survivability (backup_k > 0): k-disjoint backup paths
        # per sensor, recomputed alongside every routing (re-)solve, handed
        # to the data-phase scheduler for in-cycle failover.
        self.backups = self._compute_backups()
        self.failover_log: list[dict] = []
        self.in_cycle_failovers = 0
        self.adoptions = 0
        self.halted = False
        # True while the head process is inside a duty cycle (between the
        # wakeup broadcast and the post-sleep idle wait).  External
        # coordinators (field-level handoff) consult it to defer roster
        # surgery on a head that is mid-cycle — e.g. token-mode windows that
        # straddle the shared boundary — instead of yanking the PHY out from
        # under a running phase.
        self.mid_cycle = False
        # (sim time, origin) per delivered data packet — availability
        # metrics derive time-to-recover from this; append-only bookkeeping
        # with no event or RNG impact, so backup_k=0 stays bit-for-bit.
        self.delivery_times: list[tuple[float, int]] = []
        # Which FlowSolution was in force when: availability metrics use it
        # to decide which origins a fault actually disturbed.
        self.route_history: list[tuple[float, FlowSolution]] = [
            (self.sim.now, self.routing)
        ]
        # Sector operation (Sec. IV): fixed relay trees per sector, polled in
        # turn; sensors sleep outside the ack phase and their own window.
        self.partition = None
        if use_sectors:
            from ..core.sectors import partition_into_sectors

            self.partition = partition_into_sectors(self.routing, oracle=self.oracle)
        # Per-slot reception buffers the head process reads.
        self._arrived_requests: set[int] = set()
        self._ack_counts: dict[int, int] = {}
        self._phase_schedulers: list[tuple[str, OnlinePollingScheduler]] = []
        self._delivered_packets: list[AppPacket] = []
        self.cycle_stats: list[CycleStats] = []
        self.process: Process | None = None
        # Telemetry (repro.obs): the ambient collector is cached once and
        # every emission below guards on _tel_enabled, so runs without an
        # active collector stay bit-for-bit identical to the untraced MAC.
        self._tel = _obs.current()
        self._tel_enabled = self._tel.enabled
        self._cycle_span: "_obs.Span | None" = None
        if self._tel_enabled:
            self._tel.metrics.gauge("mac.max_group_size").set(
                self.oracle.max_group_size
            )

    def _adopt_oracle(self) -> None:
        """Hook the freshly built SINR oracle into the sweep's shared memo
        (no-op without a cache; see ``SolverCache.adopt_oracle``)."""
        if self.solver_cache is not None:
            self.solver_cache.adopt_oracle(self.oracle)

    def _solve_routing(self) -> FlowSolution:
        """Min-max solve for the current planning cluster, via the sweep's
        warm-start cache when one is attached."""
        planning = self._planning_cluster()
        if self.solver_cache is not None:
            return self.solver_cache.routing_for(planning)
        return solve_min_max_load(planning)

    def _compute_backups(self) -> BackupRoutes | None:
        if self.backup_k <= 0:
            return None
        if self.solver_cache is not None:
            return self.solver_cache.backups_for(self.routing, self.backup_k)
        return compute_backup_routes(self.routing, self.backup_k)

    def _planning_cluster(self) -> Cluster:
        """Routing uses >=1 packet per reachable sensor so each gets a path.

        Sensors with no multi-hop path to the head (strays at cluster
        borders, survivors stranded by a repair) are planned at zero
        packets — they cannot be served.  Planning always runs on
        ``active_cluster``, which route repair prunes as sensors die.
        """
        cluster = self.active_cluster
        packets = np.maximum(cluster.packets, 1)
        hops = cluster.min_hop_counts()
        packets = np.where(np.isfinite(hops), packets, 0)
        return cluster.with_packets(packets.astype(np.int64))

    # -- public API -----------------------------------------------------------------

    def start(self, n_cycles: int) -> Process:
        self.process = Process(self.sim, self._run(n_cycles), name="polling-head")
        return self.process

    def halt(self) -> None:
        """Fail-stop cluster-head crash: radio dark, duty cycle killed.

        Sensors are left exactly as the crash finds them — awake sensors
        keep listening to a head that will never poll again, sleeping ones
        wake on their last announced schedule.  Recovery, if any, comes from
        outside (see head failover in :mod:`repro.net.multicluster_sim`).
        """
        self.halted = True
        self.head_trx.fail()
        if self.process is not None:
            self.process.stop()

    def adopt_sensors(
        self, new_phy: ClusterPhy, new_agents: list[PollingSensorAgent]
    ) -> int:
        """Take over orphaned sensors after a neighbor head's crash.

        *new_phy* is this cluster's PHY extended with the orphans' existing
        transceivers (head still last); *new_agents* are freshly built
        agents for the orphans' new local ids — their construction already
        re-bound each orphan radio's receive callback away from the dead
        cluster's agents.  The merged demand is routed via
        :func:`~repro.routing.repair.repair_routing` on the re-discovered
        topology: blacklisted nodes stay pruned, orphans out of this head's
        reach come back ``uncovered`` and are planned at zero (the standard
        partial-coverage contract) rather than failing the takeover.
        """
        self.phy = new_phy
        for agent in self.sensors:
            agent.phy = new_phy
        self.sensors = list(self.sensors) + list(new_agents)
        self.oracle = phy_truth_oracle(new_phy, self.oracle.max_group_size)
        self._adopt_oracle()
        base = new_phy.cluster.with_packets(
            np.maximum(new_phy.cluster.packets, 1)
        )
        result = repair_routing(base, set(self.blacklisted))
        self.active_cluster = result.cluster
        self.unreachable = set(result.uncovered)
        self.routing = result.solution
        self.rotator = PathRotator(self.routing)
        self.ack_plan = plan_ack_collection(
            self.active_cluster, self.routing.routing_plan()
        )
        if self.partition is not None:
            from ..core.sectors import partition_into_sectors

            self.partition = partition_into_sectors(self.routing, oracle=self.oracle)
        self.backups = self._compute_backups()
        self.route_history.append((self.sim.now, self.routing))
        self.route_repairs += 1
        self.adoptions += len(new_agents)
        return len(new_agents)

    def reform_membership(
        self,
        new_phy: ClusterPhy,
        new_agents: list[PollingSensorAgent],
        blacklisted: set[int] = frozenset(),
        departed: set[int] = frozenset(),
        absent: set[int] = frozenset(),
        suspect_misses: dict[int, int] | None = None,
    ) -> None:
        """Replace this head's entire roster after a field-level re-form.

        Where :meth:`adopt_sensors` only *extends* a cluster (a dead
        neighbor's orphans append, everyone keeps their local id), a
        cross-cluster handoff both shrinks the source and grows the
        destination, so local ids are reassigned wholesale: *new_agents* is
        the complete new sensor list (one fresh agent per member, already
        holding the transplanted queues with re-stamped origins), and the
        exclusion state — *blacklisted*, *departed*, *absent*,
        *suspect_misses* — arrives already remapped to the new local ids by
        the coordinator, which owns the global-id view.  Carrying that
        evidence across the re-form is deliberate: a sensor's suspicion or
        blacklist entry follows it to its new head instead of resetting,
        so a dying node cannot launder its record by drifting over a
        Voronoi border (the per-cluster :meth:`_recluster` clears suspicion
        because *its* topology changed; here the sensor's evidence moved
        with the sensor).

        Demand migrates incrementally through
        :func:`~repro.routing.repair.repair_routing` over the rediscovered
        topology — never a cold re-solve — and backup bundles/ack plans are
        rebuilt through the attached :class:`~repro.routing.warmcache.
        SolverCache` when one is present (repeat topologies along a handoff
        sequence answer from the cache bit-for-bit).
        """
        self.phy = new_phy
        self.sensors = list(new_agents)
        self.blacklisted = set(blacklisted)
        self.departed = set(departed)
        self.absent = set(absent)
        self._suspect_misses = dict(suspect_misses or {})
        # Pending joins were keyed to the old local ids; field-scope
        # re-forms re-evaluate membership wholesale, so the queue restarts.
        self.pending_joins = set()
        self._new_departures = set()
        self.oracle = phy_truth_oracle(new_phy, self.oracle.max_group_size)
        self._adopt_oracle()
        base = new_phy.cluster.with_packets(
            np.maximum(new_phy.cluster.packets, 1)
        )
        excluded = self._excluded()
        result = repair_routing(base, excluded)
        self.active_cluster = result.cluster
        self.unreachable = set(result.uncovered)
        self.routing = result.solution
        self.rotator = PathRotator(self.routing)
        self.ack_plan = plan_ack_collection(
            self.active_cluster, self.routing.routing_plan()
        )
        if self.partition is not None:
            from ..core.sectors import partition_into_sectors

            self.partition = partition_into_sectors(self.routing, oracle=self.oracle)
        self.backups = self._compute_backups()
        self.route_history.append((self.sim.now, self.routing))
        self.route_repairs += 1
        # Local ids changed, so "newly unreachable" cannot diff against the
        # pre-reform set; log every currently stranded member's pending
        # demand so dropped-demand reconciliation still sees the handoff.
        self.repair_log.append(
            {
                "time": self.sim.now,
                "blacklisted": sorted(self.blacklisted),
                "departed": sorted(self.departed),
                "unreachable": sorted(self.unreachable),
                "newly_unreachable": sorted(self.unreachable),
                "dropped_pending": {
                    i: self.sensors[i].pending_count
                    for i in sorted(self.unreachable)
                },
            }
        )
        # The next wakeup re-announces the roster and schedule (2 bytes per
        # present member), exactly like an in-cluster re-form.
        self._reform_roster_bytes = 2 * (new_phy.n_sensors - len(excluded))
        _validate.check_dynamic_membership(
            self.routing,
            excluded,
            sim_time=self.sim.now,
            hint=f"cluster {self.cluster_id} field re-form "
            f"#{self.route_repairs}",
        )
        if self._tel_enabled:
            self._tel.metrics.counter("mac.field_reforms").inc()

    # -- dynamic membership (churn) ---------------------------------------------------

    def _excluded(self) -> set[int]:
        """Everyone the head must not plan demand for or through."""
        return self.blacklisted | self.departed | self.absent

    def notify_join(self, node: int) -> None:
        """A pre-allocated sensor powered up (fault injector callback).

        The join is queued, not applied: admission into routing happens only
        at a duty-cycle boundary when a re-form fires, so mid-cycle state
        (slot schedules, in-flight frames) never sees membership change.
        Under ``recluster='off'`` the joiner stays absent forever — the
        degradation the churn ablation measures.
        """
        if node in self.departed or node in self.blacklisted:
            return
        self.pending_joins.add(node)
        if self._staleness is not None:
            self._staleness.note_join(node)
        if self._tel_enabled:
            self._tel.metrics.counter("mac.joins_seen").inc()

    def notify_leave(self, node: int) -> None:
        """A sensor departed, announced (fault injector callback).

        Unlike an inferred crash the head learns this instantly: the node is
        excluded from planning at the next boundary without burning
        ``dead_after_misses`` detection cycles on it.
        """
        self.pending_joins.discard(node)
        if node in self.departed:
            return
        self.departed.add(node)
        self._new_departures.add(node)
        self._suspect_misses.pop(node, None)
        if self._staleness is not None:
            self._staleness.note_leave(node)
        if self._tel_enabled:
            self._tel.metrics.counter("mac.leaves_seen").inc()

    @property
    def packets_delivered(self) -> int:
        return len(self._delivered_packets)

    def delivered_packets(self) -> list[AppPacket]:
        return list(self._delivered_packets)

    # -- head frame reception ----------------------------------------------------------

    def _head_on_frame(self, frame: Frame, rx_power: float) -> None:
        self._head_receive(frame, self.sim.now)

    def _head_receive(self, frame: Frame, now: float) -> None:
        """Head-side frame effects at reception time *now*.

        The vector slot engine calls this with the decode instant it
        computed in closed form (the kernel clock still sits at slot start),
        so delivery timestamps match the scalar path exactly.
        """
        payload = frame.payload
        if isinstance(payload, dict) and payload.get("cluster", self.cluster_id) != self.cluster_id:
            return
        if frame.ftype is FrameType.DATA:
            ins: PollInstruction = frame.payload["instruction"]
            if ins.receiver == HEAD:
                self._arrived_requests.add(ins.request_id)
                packet = frame.payload["packet"]
                self._delivered_packets.append(packet)
                self.delivery_times.append((now, packet.origin))
        elif frame.ftype is FrameType.ACK_REPORT:
            ins = frame.payload["instruction"]
            if ins.receiver == HEAD:
                self._arrived_requests.add(ins.request_id)
                self._ack_counts.update(frame.payload["counts"])

    # -- the duty-cycle engine -----------------------------------------------------------

    def _broadcast(self, ftype: FrameType, size: int, payload) -> float:
        if isinstance(payload, dict):
            payload = {**payload, "cluster": self.cluster_id}
        frame = Frame(
            ftype=ftype,
            src=self.phy.phy_index(HEAD),
            dst=BROADCAST_ADDR,
            size_bytes=size,
            payload=payload,
        )
        return self.head_trx.transmit(frame)

    def _slot_time(self, payload_bytes: int) -> float:
        return self.timings.poll_slot_time(
            self.phy.medium.bitrate, self.sizes, payload_bytes
        )

    def _energy_snapshot(self) -> list[float]:
        """Exact per-radio consumed joules at ``sim.now`` without finalizing.

        Meters integrate lazily on state changes; the tail since the last
        change is added here read-only, so mid-run snapshots reconcile with
        the post-``finalize()`` figures of :mod:`repro.metrics.energy`.
        """
        now = self.sim.now
        out: list[float] = []
        for trx in self.phy.transceivers:
            meter = trx.meter
            out.append(
                meter.consumed_j
                + meter.params.power(meter.state)
                * max(0.0, now - meter.last_change)
            )
        return out

    def _run_phase(self, phase: str, plan: RoutingPlan, payload_bytes: int):
        """Generator: drive one polling phase slot by slot over the radio.

        Returns ``(slots_used, retransmissions, scheduler)`` — the finished
        scheduler carries the failed-request ids and per-phase blacklist the
        recovery layer mines for evidence.
        """
        tel_enabled = self._tel_enabled
        phase_span = None
        if tel_enabled:
            phase_span = self._tel.begin(
                "phase",
                phase,
                self.sim.now,
                parent=self._cycle_span,
                cluster=self.cluster_id,
                requests=sum(
                    int(plan.cluster.packets[s]) for s in plan.paths
                ),
            )
        scheduler = OnlinePollingScheduler(
            plan,
            self.oracle,
            retry_limit=self.retry_limit,
            dead_after_misses=self.dead_after_misses if self.failure_detection else None,
            # Both phases fail over: a relay that dies outside the data
            # phase kills next cycle's *ack* collection first, and without
            # an ack count the head never activates the data requests it
            # would need to fail over.  Evidence mining still sees the
            # death — every failover event's abandoned path is implicated.
            backups=self.backups,
            telemetry_parent=phase_span,
            telemetry_clock=("sim", lambda: self.sim.now),
        )
        slot_time = self._slot_time(payload_bytes)
        # Batch engine (DESIGN.md §12): clean slots replay as closed-form
        # array ops; dirty slots (pending fault/wake events, live carriers,
        # shared media, tracer subscribers) fall through to the event path.
        vector = maybe_vector_engine(self, payload_bytes)
        batch_total = 0
        batch_max = 0
        wall_start = perf_counter() if tel_enabled else 0.0
        self._arrived_requests = set()
        t = 0
        while not scheduler.all_done:
            if t >= self.max_slots_per_phase:
                raise RuntimeError(f"{phase} phase exceeded {self.max_slots_per_phase} slots")
            arrived, self._arrived_requests = self._arrived_requests, set()
            group = scheduler.external_step(t, arrived)
            if not group and scheduler.all_done:
                break  # last arrivals just resolved; no slot needed
            if tel_enabled:
                self._tel.add_event(
                    phase_span, self.sim.now, "slot", slot=t, group=len(group)
                )
                self._tel.metrics.histogram("mac.group_size").observe(
                    float(len(group))
                )
                batch_total += len(group)
                if len(group) > batch_max:
                    batch_max = len(group)
            instructions = [
                PollInstruction(
                    sender=tx.sender,
                    receiver=tx.receiver,
                    request_id=tx.request_id,
                    hop_index=tx.hop_index,
                )
                for tx in group
            ]
            payload = {"phase": phase, "slot": t, "instructions": instructions}
            if vector is None or not vector.try_slot(
                {**payload, "cluster": self.cluster_id}, group
            ):
                self._broadcast(FrameType.POLL, self.sizes.poll, payload)
            yield Timeout(slot_time)
            t += 1
        if vector is not None:
            vector.flush()
            self.vector_slots += vector.vector_slots
            self.scalar_slots += t - vector.vector_slots
        else:
            self.scalar_slots += t
        # Per-request, not pool-total: a request abandoned under faults with
        # zero attempts would otherwise push the count negative.
        retx = sum(max(0, r.attempts - 1) for r in scheduler.pool.requests)
        if scheduler.failover_events:
            self.in_cycle_failovers += len(scheduler.failover_events)
            self.failover_log.append(
                {
                    "time": self.sim.now,
                    "phase": phase,
                    "events": list(scheduler.failover_events),
                }
            )
        # Phase invariants on the schedule the radio actually executed:
        # conservation of requests and the per-slot ≤M/compatibility rules.
        scheduler.validate_invariants(
            sim_time=self.sim.now,
            hint=f"cluster {self.cluster_id} {phase} phase, "
            f"{len(scheduler.pool.requests)} requests",
        )
        if tel_enabled:
            # Batched-path attribution: with the vector engine most slots
            # never hit the kernel, so wall profiling must come from the
            # phase loop itself — report engine mix, batch sizes, and the
            # per-slot amortized wall cost so obs/profile hot-path reports
            # stay meaningful (DESIGN.md §12).
            wall_s = perf_counter() - wall_start
            vector_slots = vector.vector_slots if vector is not None else 0
            self._tel.finish(
                phase_span,
                self.sim.now,
                slots=t,
                retransmissions=retx,
                failed=len(scheduler.failed),
                engine="vector" if vector is not None else "scalar",
                vector_slots=vector_slots,
                scalar_slots=t - vector_slots,
                batch_max=batch_max,
                batch_mean=(batch_total / t) if t else 0.0,
                wall_s=wall_s,
                slot_wall_us=(wall_s / t * 1e6) if t else 0.0,
            )
            self._tel.metrics.counter("mac.vector_slots").inc(vector_slots)
            self._tel.metrics.counter("mac.scalar_slots").inc(t - vector_slots)
        return t, retx, scheduler

    def _run_sectored(self, counts, cycle_start: float):
        """The Sec. IV data phase: sectors polled in turn, others asleep.

        The head knows each sector's nominal polling length (it can compute
        the loss-free schedule), pads it with slack for re-polls, announces
        every sensor's personal wake time in one broadcast, and then serves
        the sectors in their windows — putting each to bed the moment its
        packets are in.
        """
        sim = self.sim
        cluster = self.phy.cluster.with_packets(counts)
        data_slot = self._slot_time(self.sizes.data)
        next_wake_est = cycle_start + self.cycle_length
        # Per-sector plans and window budgets.
        jobs: list[tuple[object, RoutingPlan | None, int]] = []
        for sec in self.partition.sectors:
            plan = sec.routing_plan(cluster)
            if not plan.paths:
                jobs.append((sec, None, 0))
                continue
            # Planning-only run: NULL_TELEMETRY keeps the estimate's phantom
            # requests out of the live trace.
            nominal = OnlinePollingScheduler(
                plan, self.oracle, telemetry=_obs.NULL_TELEMETRY
            ).run().slots_elapsed
            budget = int(np.ceil(nominal * self.slack_factor)) + 4
            jobs.append((sec, plan, budget))
        # Announce personal wake times (sector 0 starts right away).
        dur = transmission_time(self.sizes.sleep, self.phy.medium.bitrate)
        base = sim.now + dur + self.timings.turnaround
        wake_map: dict[int, float] = {}
        offset = 0.0
        window_starts: list[float] = []
        for k, (sec, plan, budget) in enumerate(jobs):
            window_starts.append(base + offset)
            if k > 0:
                for s in sec.sensors:
                    wake_map[s] = base + offset
            offset += budget * data_slot
        self._broadcast(FrameType.SLEEP, self.sizes.sleep, {"wake_map": wake_map})
        yield Timeout(dur + self.timings.turnaround)
        # Serve each sector in its window.
        total_slots = 0
        total_retx = 0
        for k, (sec, plan, budget) in enumerate(jobs):
            if plan is None:
                continue
            if sim.now < window_starts[k]:
                yield Timeout(window_starts[k] - sim.now)
            slots, retx, sched = yield from self._run_phase(
                "data", plan, self.sizes.data
            )
            total_slots += slots
            total_retx += retx
            self.packets_failed += len(sched.failed)
            self._phase_schedulers.append(("data", sched))
            # This sector is done: straight to sleep until the next cycle.
            self._broadcast(
                FrameType.SLEEP,
                self.sizes.sleep,
                {"wake_at": next_wake_est, "members": list(sec.sensors)},
            )
            yield Timeout(
                transmission_time(self.sizes.sleep, self.phy.medium.bitrate)
                + self.timings.turnaround
            )
        return total_slots, total_retx

    # -- failure detection & route repair -------------------------------------------
    #
    # The head never observes a death directly — it only sees polls going
    # unanswered.  Localization works from per-cycle evidence:
    #
    # * proof of life: every sensor whose ack count reached the head this
    #   cycle, and every node on a *data* path that delivered (each hop
    #   demonstrably forwarded the actual packet).  A delivered ack proves
    #   nothing about its upstream hops — relays merge their own count and
    #   forward even when everything upstream stayed silent;
    # * implication: every node on a retry-exhausted path, plus every
    #   sensor the ack cover polled whose count never arrived (dead, or
    #   silently starved behind a dead relay).
    #
    # A node implicated without proof of life is a *suspect*; suspicion must
    # persist ``dead_after_misses`` consecutive cycles before the head
    # declares the death (one bad cycle of collisions must not kill a node).
    # Among ripe candidates the head declares only the minimal explanation:
    # a candidate upstream of another candidate on a polled path is spared —
    # the downstream death explains its silence — and gets a fresh route
    # from the repair; its own evidence convicts or exonerates it next cycle.

    def _update_failure_suspects(self) -> None:
        alive: set[int] = set(self._ack_counts)
        implicated: set[int] = set()
        paths: list[tuple[int, ...]] = []
        for phase, sched in self._phase_schedulers:
            for req in sched.pool.requests:
                nodes = tuple(n for n in req.path if n != HEAD)
                paths.append(nodes)
                if req.request_id in sched.failed:
                    implicated.update(nodes)
                elif phase == "data" and req.state is RequestState.DELETED:
                    alive.update(nodes)
            # An in-cycle failover is implication evidence too: the head
            # abandoned the old path because its relays swallowed packets.
            # Without this, a successful failover (packets delivered, nothing
            # in ``failed``) would leave the dead relay unsuspected and the
            # boundary repair would never route around it.
            for ev in sched.failover_events:
                paths.append(tuple(n for n in ev.old_path if n != HEAD))
                implicated.update(n for n in ev.old_path[1:-1])
        covered = {n for p in self.ack_plan.paths for n in p if n != HEAD}
        implicated |= covered - alive
        # Departed/absent nodes are *known* gone — suspicion is for deaths
        # the head must infer, and wasting blacklist entries on announced
        # departures would double-count them in degradation metrics.
        suspects = implicated - alive - self.blacklisted - self.departed - self.absent
        self._suspect_misses = {
            s: self._suspect_misses.get(s, 0) + 1 for s in suspects
        }
        candidates = {
            s for s, c in self._suspect_misses.items() if c >= self.dead_after_misses
        }
        if not candidates:
            return
        explained = {
            node
            for path in paths
            for i, node in enumerate(path)
            if node in candidates and any(d in candidates for d in path[i + 1 :])
        }
        newly_dead = candidates - explained
        if newly_dead:
            self.blacklisted |= newly_dead
            for s in newly_dead:
                self._suspect_misses.pop(s, None)
            self._repair_routing()

    def _repair_routing(self) -> None:
        """Recompute routing on the surviving topology (duty-cycle boundary).

        Prunes blacklisted nodes from the planning cluster, re-solves the
        min-max flow, rebuilds the rotation, ack cover, and (in sector
        operation) the sector partition.  Survivors left without any path
        are recorded in ``unreachable`` and planned at zero packets —
        partial coverage instead of a routing failure.  Each repair appends
        to ``repair_log`` exactly which sensors it cut off and the packets
        pending at them, so dropped demand reconciles packet-for-packet.
        """
        repair_span = None
        if self._tel_enabled:
            repair_span = self._tel.begin(
                "repair",
                "route-repair",
                self.sim.now,
                parent=self._cycle_span,
                cluster=self.cluster_id,
                blacklisted=sorted(self.blacklisted),
            )
        previously_unreachable = set(self.unreachable)
        excluded = self._excluded()
        self.active_cluster = prune_dead_nodes(self.phy.cluster, excluded)
        hops = self.active_cluster.min_hop_counts()
        self.unreachable = {
            i
            for i in range(self.active_cluster.n_sensors)
            if i not in excluded and not np.isfinite(hops[i])
        }
        self.repair_log.append(
            {
                "time": self.sim.now,
                "blacklisted": sorted(self.blacklisted),
                "departed": sorted(self.departed),
                "unreachable": sorted(self.unreachable),
                "newly_unreachable": sorted(self.unreachable - previously_unreachable),
                # Pending packets are attributed to the repair that *first*
                # cut the sensor off; keying on newly_unreachable means a
                # sensor stranded across two consecutive repairs is counted
                # by exactly one of them (see reconcile_dropped_demand).
                "dropped_pending": {
                    i: self.sensors[i].pending_count
                    for i in sorted(self.unreachable - previously_unreachable)
                },
            }
        )
        self.routing = self._solve_routing()
        self.rotator = PathRotator(self.routing)
        self.ack_plan = plan_ack_collection(
            self.active_cluster, self.routing.routing_plan()
        )
        self.backups = self._compute_backups()
        self.route_history.append((self.sim.now, self.routing))
        if self.partition is not None:
            from ..core.sectors import partition_into_sectors

            self.partition = partition_into_sectors(self.routing, oracle=self.oracle)
        self.route_repairs += 1
        if self._staleness is not None:
            self._staleness.note_repair()
        _validate.check_dynamic_membership(
            self.routing,
            excluded,
            sim_time=self.sim.now,
            hint=f"cluster {self.cluster_id} route repair #{self.route_repairs}",
        )
        if repair_span is not None:
            self._tel.finish(
                repair_span,
                self.sim.now,
                unreachable=sorted(self.unreachable),
                newly_unreachable=sorted(
                    self.unreachable - previously_unreachable
                ),
            )
            self._tel.metrics.counter("mac.route_repairs").inc()
            self._tel.metrics.histogram("mac.repair_unreachable").observe(
                float(len(self.unreachable))
            )

    def _recluster(self, reason: str) -> None:
        """Online re-form at a duty-cycle boundary (DESIGN.md §11).

        Re-discovers connectivity from the live medium (so moved nodes bring
        their moved links), admits pending joiners, and migrates demand
        incrementally through the repair machinery — blacklist, announced
        departures and still-absent sensors all stay excluded, and failover
        state (backup routes, rotation, ack cover, sector partition) is
        rebuilt on the new plan.  Queued application packets are untouched:
        a re-form reshapes routing state only, and the conservation check
        below enforces exactly that.
        """
        span = None
        if self._tel_enabled:
            span = self._tel.begin(
                "recluster",
                f"recluster:{reason}",
                self.sim.now,
                parent=self._cycle_span,
                cluster=self.cluster_id,
                reason=reason,
                pending_joins=sorted(self.pending_joins),
                departed=sorted(self.departed),
            )
        admitted = set(self.pending_joins)
        self.absent -= admitted
        self.pending_joins.clear()
        excluded = self._excluded()
        present = [
            i for i in range(self.phy.n_sensors) if i not in excluded
        ]
        pending_before = sum(self.sensors[i].pending_count for i in present)
        previously_unreachable = set(self.unreachable)
        result = reform_cluster(self.phy, excluded, admitted)
        # The re-discovered cluster becomes the PHY's ground-truth topology;
        # the repair's pruned twin is what planning runs on.
        self.phy.cluster = result.cluster
        self.active_cluster = result.repair.cluster
        self.unreachable = set(result.repair.uncovered)
        self.routing = result.repair.solution
        # The planning oracle re-captures the medium's *current* receive
        # powers — this is the one place mobility staleness is repaid.
        self.oracle = phy_truth_oracle(self.phy, self.oracle.max_group_size)
        self._adopt_oracle()
        self.rotator = PathRotator(self.routing)
        self.ack_plan = plan_ack_collection(
            self.active_cluster, self.routing.routing_plan()
        )
        self.backups = self._compute_backups()
        if self.partition is not None:
            from ..core.sectors import partition_into_sectors

            self.partition = partition_into_sectors(self.routing, oracle=self.oracle)
        # Suspicion counters were evidence against the *old* topology.
        self._suspect_misses = {}
        self.route_history.append((self.sim.now, self.routing))
        # Announcing the new roster + schedule costs the next wakeup
        # broadcast 2 bytes per present sensor (id + slot assignment).
        self._reform_roster_bytes = 2 * len(present)
        self.reclusters += 1
        newly_unreachable = sorted(self.unreachable - previously_unreachable)
        self.recluster_log.append(
            {
                "time": self.sim.now,
                "reason": reason,
                "admitted": sorted(admitted),
                "excluded": sorted(excluded),
                "unreachable": sorted(self.unreachable),
                "roster_bytes": self._reform_roster_bytes,
            }
        )
        # Re-forms strand sensors exactly like repairs do; log through the
        # same channel so reconcile_dropped_demand sees one unified stream.
        self.repair_log.append(
            {
                "time": self.sim.now,
                "blacklisted": sorted(self.blacklisted),
                "departed": sorted(self.departed),
                "unreachable": sorted(self.unreachable),
                "newly_unreachable": newly_unreachable,
                "dropped_pending": {
                    i: self.sensors[i].pending_count for i in newly_unreachable
                },
            }
        )
        hint = f"cluster {self.cluster_id} recluster #{self.reclusters} ({reason})"
        _validate.check_dynamic_membership(
            self.routing, excluded, sim_time=self.sim.now, hint=hint
        )
        pending_after = sum(self.sensors[i].pending_count for i in present)
        _validate.check_reform_conservation(
            pending_before, pending_after, sim_time=self.sim.now, hint=hint
        )
        if self._staleness is not None:
            self._staleness.reset()
        if span is not None:
            self._tel.finish(
                span,
                self.sim.now,
                admitted=sorted(admitted),
                unreachable=sorted(self.unreachable),
                roster_bytes=self._reform_roster_bytes,
            )
            self._tel.metrics.counter("mac.reclusters").inc()

    def _backup_ack_sweep(self, covered: set[int]):
        """Generator: one extra ack round over backup paths.

        *covered* is everyone the ack cover should have reported; whoever
        is absent from ``_ack_counts`` is polled again along its first
        backup path that avoids the other missing nodes (a backup relayed
        by another silent node is presumed equally dead) and the blacklist.
        Reports merged on the way pick up interior counts too.  Returns the
        slots used; zero when nothing is missing — a healthy cycle pays no
        overhead for being prepared.
        """
        missing = sorted(covered - set(self._ack_counts) - self.blacklisted)
        sweep_paths: dict[int, tuple[int, ...]] = {}
        for sensor in missing:
            for path in self.backups.paths_for(sensor):
                interior = set(path[1:-1])
                if interior & (set(missing) | self.blacklisted):
                    continue
                sweep_paths[sensor] = path
                break
        if not sweep_paths:
            return 0
        packets = np.zeros(self.phy.n_sensors, dtype=np.int64)
        for sensor in sweep_paths:
            packets[sensor] = 1
        plan = RoutingPlan(
            cluster=self.active_cluster.with_packets(packets), paths=sweep_paths
        )
        slots, _, sched = yield from self._run_phase("ack", plan, self.sizes.ack_report)
        self._phase_schedulers.append(("ack", sched))
        return slots

    def _run(self, n_cycles: int):
        sim = self.sim
        for cycle in range(n_cycles):
            cycle_start = sim.now
            self.mid_cycle = True
            offered = sum(s.pending_count for s in self.sensors)
            delivered_before = self.packets_delivered
            self._phase_schedulers = []
            cycle_span = None
            energy_before: list[float] = []
            if self._tel_enabled:
                energy_before = self._energy_snapshot()
                cycle_span = self._tel.begin(
                    "cycle",
                    f"cycle:{cycle}",
                    cycle_start,
                    parent=self._tel.root,
                    cluster=self.cluster_id,
                    cycle=cycle,
                )
                self._cycle_span = cycle_span
            # 1. wakeup broadcast (sensors are awake: they woke on schedule).
            wakeup_payload: dict = {"cycle": cycle}
            gone = self.blacklisted | self.departed
            if gone:
                # Blacklist propagation: relays drop dead origins' packets
                # (announced departures purge exactly like inferred deaths).
                wakeup_payload["blacklist"] = sorted(gone)
            # A re-form last boundary means this wakeup re-announces the
            # roster/schedule; zero extra bytes otherwise.
            dur = self._broadcast(
                FrameType.WAKEUP,
                self.sizes.wakeup + self._reform_roster_bytes,
                wakeup_payload,
            )
            self._reform_roster_bytes = 0
            yield Timeout(dur + self.timings.turnaround)
            # 2. ack collection along covering paths.
            self._ack_counts = {}
            ack_paths = {p[0]: p for p in self.ack_plan.paths}
            ack_packets = np.zeros(self.phy.n_sensors, dtype=np.int64)
            for start in ack_paths:
                ack_packets[start] = 1
            ack_plan = RoutingPlan(
                cluster=self.active_cluster.with_packets(ack_packets), paths=ack_paths
            )
            ack_slots, _, ack_sched = yield from self._run_phase(
                "ack", ack_plan, self.sizes.ack_report
            )
            self._phase_schedulers.append(("ack", ack_sched))
            # 2b. backup ack sweep (proactive survivability, k >= 1 only).
            # A dead *middle* relay does not fail its ack request — the
            # downstream relay re-originates the report with its own count
            # — so the only symptom is counts that never arrived.  Without
            # them the head cannot even issue the data requests it would
            # fail over, so re-collect exactly the missing counts along
            # the sensors' disjoint backup paths before polling data.
            if self.backups is not None:
                ack_slots += yield from self._backup_ack_sweep(
                    {n for p in self.ack_plan.paths for n in p if n != HEAD}
                )
            # 3. data polling from the reported counts.
            counts = np.zeros(self.phy.n_sensors, dtype=np.int64)
            for sensor, cnt in self._ack_counts.items():
                counts[sensor] = cnt
            excluded_now = self._excluded()
            if excluded_now:
                counts[sorted(excluded_now)] = 0
            data_slots = 0
            retransmissions = 0
            if self.partition is not None:
                data_slots, retransmissions = yield from self._run_sectored(
                    counts, cycle_start
                )
            else:
                base_plan = self.rotator.next_cycle()
                data_paths = {
                    s: base_plan.paths[s]
                    for s in range(self.phy.n_sensors)
                    if counts[s] > 0 and s in base_plan.paths
                }
                if data_paths:
                    data_plan = RoutingPlan(
                        cluster=self.active_cluster.with_packets(counts), paths=data_paths
                    )
                    data_slots, retransmissions, data_sched = yield from self._run_phase(
                        "data", data_plan, self.sizes.data
                    )
                    self.packets_failed += len(data_sched.failed)
                    self._phase_schedulers.append(("data", data_sched))
            # 3b. recovery: cross-examine the cycle's evidence and repair
            # routing around newly declared deaths at this cycle boundary.
            if self.failure_detection:
                self._update_failure_suspects()
            # 3c. dynamic membership: re-form when the plan is stale, else
            # at minimum repair around announced departures.  Both run at
            # the boundary only — mid-cycle state never sees them.
            reform_reason = None
            if self._staleness is not None:
                self._staleness.note_cycle()
                reform_reason = self._staleness.due(self.routing.loads)
            if reform_reason is not None:
                self._recluster(reform_reason)
            elif self._new_departures and not (
                # Detection's repair at this same boundary already pruned
                # the departures (it excludes self._excluded() wholesale).
                self.repair_log
                and self.repair_log[-1]["time"] == sim.now
            ):
                self._repair_routing()
            self._new_departures.clear()
            # 4. sleep broadcast.
            next_wake = max(cycle_start + self.cycle_length, sim.now + 2 * self.timings.guard)
            dur = self._broadcast(FrameType.SLEEP, self.sizes.sleep, {"wake_at": next_wake})
            yield Timeout(dur)
            self.cycle_stats.append(
                CycleStats(
                    cycle_index=cycle,
                    started_at=cycle_start,
                    duty_time=sim.now - cycle_start,
                    ack_slots=ack_slots,
                    data_slots=data_slots,
                    packets_delivered=self.packets_delivered - delivered_before,
                    packets_offered=offered,
                    retransmissions=retransmissions,
                )
            )
            if cycle_span is not None:
                stats = self.cycle_stats[-1]
                energy_delta = [
                    after - before
                    for before, after in zip(
                        energy_before, self._energy_snapshot()
                    )
                ]
                metrics = self._tel.metrics
                metrics.counter("mac.cycles").inc()
                metrics.counter("mac.ack_slots").inc(ack_slots)
                metrics.counter("mac.data_slots").inc(data_slots)
                metrics.counter("mac.packets_delivered").inc(
                    stats.packets_delivered
                )
                metrics.counter("mac.retransmissions").inc(retransmissions)
                self._tel.finish(
                    cycle_span,
                    sim.now,
                    delivered=stats.packets_delivered,
                    offered=offered,
                    ack_slots=ack_slots,
                    data_slots=data_slots,
                    retransmissions=retransmissions,
                )
                self._tel.snapshot_cycle(
                    cluster=self.cluster_id,
                    cycle=cycle,
                    t=sim.now,
                    duty_time=stats.duty_time,
                    energy_delta_j=energy_delta,
                )
                self._cycle_span = None
            # Wait out the rest of the cycle (the head may idle or serve the
            # second-layer network; sensors are asleep).
            self.mid_cycle = False
            if next_wake > sim.now:
                yield Timeout(next_wake - sim.now)
        return len(self.cycle_stats)
