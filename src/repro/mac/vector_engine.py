"""Vectorized batch slot engine for the polling MAC (DESIGN.md §12).

The event-at-a-time PHY spends ~80% of a polling run executing the *same*
slot choreography over and over: head polls at ``t0``, the poll lands at
``t1 = t0 + airtime(poll)``, the polled senders turn around and transmit at
``t_tx = t1 + turnaround``, everything decodes at ``t2 = t_tx +
airtime(payload)``, and the slot pads out to ``slot_time``.  Nothing else
happens inside a *clean* slot — no fault event, no radio wake, no second
cluster — so the whole slot collapses into a handful of closed-form numpy
array updates over per-radio state banks.

This module implements that collapse.  The contract with the scalar oracle
(the untouched event path in :mod:`repro.radio`) is **bit-identical floats**:

* every energy integration replays the exact per-radio ``change_state``
  sequence the event path would perform — the same ``(power * dt)``
  products added in the same chronological order, with ``dt`` always
  computed as the *difference of the actual event timestamps* (``t1 - t0``
  is not the poll airtime bit-for-bit!), and radios whose state never
  changes keep their old ``last_change`` untouched;
* every summation the scalar path performs left-to-right (carrier-sense
  in-air power, accumulated SINR interference) is reproduced as an
  *ordered* sequence of elementwise adds (:func:`ordered_sum`), never a
  numpy reduction — ``np.add.reduce`` pairwise-reassociates and is the #1
  parity hazard;
* stochastic draws (frame-error RNG, Gilbert–Elliott per-link chains) are
  issued as the same scalar calls in the same candidate order the decode
  loop would make.

Two observations keep the per-slot op count low without breaking the
contract: a clean slot starts and ends with every touched radio IDLE, so
the bank's state codes never need intermediate writes; and after the ``t0``
flip every touched radio shares the same ``last_change``, so the ``t1`` /
``t_tx`` / ``t2`` integrations use one *scalar* ``dt`` against cached
per-radio power slices (one multiply + one fancy-indexed add each), with
``last_change`` written back just twice per slot.

Slots that are *not* clean — a pending fault/wake/battery event inside the
slot window, live transmissions already in the air, a shared multi-cluster
medium, tracer subscribers — fall back to the scalar path for exactly that
slot: the bank flushes to the live transceivers first, so mid-slot readers
(battery depletion checks) always see true meters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import obs as _obs
from ..radio.energy import RadioState
from ..radio.packet import Frame, FrameType
from ..sim.units import transmission_time
from ..topology.cluster import HEAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pollmac import PollingClusterMac

__all__ = [
    "VectorRadioBank",
    "VectorPhaseEngine",
    "maybe_vector_engine",
    "ordered_sum",
]

# Integer state codes for the bank arrays, in a fixed order.
SLEEP, IDLE, RX, TX = 0, 1, 2, 3
_STATES = (RadioState.SLEEP, RadioState.IDLE, RadioState.RX, RadioState.TX)
_CODE = {s: i for i, s in enumerate(_STATES)}


def _as_index(idx: np.ndarray):
    """Basic-slice form of a sorted index array when it is contiguous.

    Basic slicing skips numpy's fancy-index machinery (a large fraction of
    per-slot overhead: the poll flip set is usually *all* sensors).  The
    arithmetic is unchanged — the same elements see the same elementwise
    ops — so bit-exactness is unaffected.
    """
    if idx.size > 1 and int(idx[-1]) - int(idx[0]) + 1 == idx.size:
        return slice(int(idx[0]), int(idx[-1]) + 1)
    return idx


def ordered_sum(columns):
    """Left-to-right elementwise sum of 1-D float arrays.

    Matches the scalar path's sequential ``total += x`` accumulation
    bit-for-bit: each add rounds exactly like the corresponding Python
    float add.  ``np.add.reduce`` / ``ndarray.sum`` must NOT be used here —
    their pairwise reassociation produces different last-bit results.
    Returns ``None`` for an empty sequence (the caller treats it as the
    scalar path's literal ``0``).
    """
    it = iter(columns)
    try:
        acc = next(it).copy()
    except StopIteration:
        return None
    for col in it:
        acc = acc + col
    return acc


class VectorRadioBank:
    """Array mirror of every transceiver's meter/listen/counter state.

    ``load()`` captures the live objects; slot replays mutate the arrays;
    ``store()`` writes the exact values back (python floats, so downstream
    ``float.hex()`` fingerprints are unchanged).  The power table is built
    once per bank from each radio's own :class:`EnergyParams`, so
    heterogeneous radios stay exact.
    """

    def __init__(self, transceivers):
        self.transceivers = list(transceivers)
        n = len(self.transceivers)
        self.ptab = np.empty((4, n), dtype=np.float64)
        for i, trx in enumerate(self.transceivers):
            p = trx.meter.params
            self.ptab[SLEEP, i] = p.sleep_w
            self.ptab[IDLE, i] = p.idle_w
            self.ptab[RX, i] = p.rx_w
            self.ptab[TX, i] = p.tx_w
        self.state = np.empty(n, dtype=np.int64)
        self.last_change = np.empty(n, dtype=np.float64)
        self.consumed = np.empty(n, dtype=np.float64)
        self.dwell = np.empty((4, n), dtype=np.float64)
        self.listening = np.empty(n, dtype=bool)
        self.frames_sent = np.empty(n, dtype=np.int64)
        self.frames_received = np.empty(n, dtype=np.int64)
        self.frames_garbled = np.empty(n, dtype=np.int64)
        # +inf marks "not listening" so the float view is total.
        self.listen_since = np.empty(n, dtype=np.float64)

    def load(self) -> None:
        for i, trx in enumerate(self.transceivers):
            m = trx.meter
            self.state[i] = _CODE[m.state]
            self.last_change[i] = m.last_change
            self.consumed[i] = m.consumed_j
            d = m.dwell_s
            self.dwell[SLEEP, i] = d[RadioState.SLEEP]
            self.dwell[IDLE, i] = d[RadioState.IDLE]
            self.dwell[RX, i] = d[RadioState.RX]
            self.dwell[TX, i] = d[RadioState.TX]
            self.listening[i] = trx._listening
            ls = trx._listen_since
            self.listen_since[i] = np.inf if ls is None else ls
            self.frames_sent[i] = trx.frames_sent
            self.frames_received[i] = trx.frames_received
            self.frames_garbled[i] = trx.frames_garbled

    def store(self) -> None:
        for i, trx in enumerate(self.transceivers):
            m = trx.meter
            m.state = _STATES[self.state[i]]
            m.last_change = float(self.last_change[i])
            m.consumed_j = float(self.consumed[i])
            d = m.dwell_s
            d[RadioState.SLEEP] = float(self.dwell[SLEEP, i])
            d[RadioState.IDLE] = float(self.dwell[IDLE, i])
            d[RadioState.RX] = float(self.dwell[RX, i])
            d[RadioState.TX] = float(self.dwell[TX, i])
            listening = bool(self.listening[i])
            trx._listening = listening
            ls = self.listen_since[i]
            trx._listen_since = float(ls) if np.isfinite(ls) else None
            trx.frames_sent = int(self.frames_sent[i])
            trx.frames_received = int(self.frames_received[i])
            trx.frames_garbled = int(self.frames_garbled[i])

    # -- exact replay of EnergyMeter.change_state over index sets ---------------
    #
    # Reference implementation; _run_slot uses the specialized scalar-dt
    # form inline.  Kept for the accumulation-order regression tests.

    def shift(self, idx: np.ndarray, now: float, prior: int, new: int) -> None:
        """Replay ``change_state(new, now)`` for radios *idx*, all currently
        in state *prior*.

        ``consumed[i] += power * dt`` is computed per element — one IEEE
        multiply and one IEEE add per radio, the same two roundings the
        scalar meter performs (numpy does not fuse them).  ``dt == 0`` adds
        an exact ``+0.0``, matching the scalar no-op branch bit-for-bit.
        """
        if idx.size == 0:
            return
        dt = now - self.last_change[idx]
        self.consumed[idx] += self.ptab[prior, idx] * dt
        self.dwell[prior, idx] += dt
        self.last_change[idx] = now
        self.state[idx] = new


class _PollCache:
    """Static decode geometry of the head's poll broadcast."""

    __slots__ = (
        "rx_ix",
        "ok_ix",
        "ok_nodes",
        "coll_idx",
        "n_coll",
        "pw_idle",
        "pw_rx",
        "mask_t1",
    )

    def __init__(self, rx_idx, ok_idx, coll_idx, ptab, head, n):
        self.rx_ix = _as_index(rx_idx)
        self.ok_ix = _as_index(ok_idx)
        self.ok_nodes = [int(x) for x in ok_idx]
        self.coll_idx = coll_idx
        self.n_coll = len(coll_idx)
        # Power slices for the two poll-side integrations (IDLE over
        # [last_change, t0], RX over [t0, t1]).
        self.pw_idle = ptab[IDLE, rx_idx]
        self.pw_rx = ptab[RX, rx_idx]
        # Radios whose last_change is t1 right after the poll exchange: the
        # flip set plus the head.  Group caches use this to tell constant-dt
        # data listeners from stragglers that missed the poll.
        mask = np.zeros(n, dtype=bool)
        mask[rx_idx] = True
        mask[head] = True
        self.mask_t1 = mask


class _GroupCache:
    """Static decode geometry for one set of concurrent data senders."""

    __slots__ = (
        "s_ix",
        "rx_ix",
        "n_rx",
        "rx_c_ix",
        "n_c",
        "rx_v_ix",
        "n_v",
        "t2_ix",
        "pw_s_idle",
        "pw_s_tx",
        "pw_c_idle",
        "pw_v_idle",
        "pw_rx",
        "records",
    )


class _GeomEntry:
    """Cross-phase cache of poll/group geometry for one listening roster.

    Geometry depends only on the listening roster, the medium's
    ``rx_power`` matrix, and its (immutable) thresholds — not on payload
    size — so it outlives any single phase.  The entry pins the matrix it
    was built from: mobility epochs *replace* ``rx_power`` (never mutate
    it), so an identity check detects staleness exactly.  Channel drift is
    irrelevant here: it retunes the Gilbert–Elliott chains, which the slot
    replay consults live per draw.
    """

    __slots__ = ("rxp", "pc", "groups")

    def __init__(self, rxp):
        self.rxp = rxp
        self.pc: _PollCache | None = None
        self.groups: dict[tuple[int, ...], _GroupCache] = {}


class VectorPhaseEngine:
    """Executes clean polling slots as closed-form array updates.

    One engine instance serves one ``_run_phase`` call.  The radio bank is
    loaded lazily on the first clean slot and flushed back before any
    scalar-fallback slot and at phase end, so live readers always see true
    state whenever real events can fire.
    """

    def __init__(self, mac: "PollingClusterMac", payload_bytes: int):
        self.mac = mac
        self.phy = mac.phy
        self.sim = mac.sim
        self.medium = med = self.phy.medium
        self.tracer = med.tracer
        self.head = self.phy.head_index
        self.air_poll = transmission_time(mac.sizes.poll, med.bitrate)
        self.air_payload = transmission_time(payload_bytes, med.bitrate)
        self.turnaround = mac.timings.turnaround
        self.slot_time = mac._slot_time(payload_bytes)
        self.bank = VectorRadioBank(self.phy.transceivers)
        self.head_idle_w = float(self.bank.ptab[IDLE, self.head])
        self.head_tx_w = float(self.bank.ptab[TX, self.head])
        self.loaded = False
        self.dynamic = med.frame_error_rate > 0.0 or med.link_loss is not None
        # Geometry store shared across phases (lives on the MAC), keyed by
        # the listening-roster bytes; rebound at every bank load because
        # fallback slots can change the roster mid-phase.
        self._geom_store: dict[bytes, _GeomEntry] = mac._vector_geom
        self._entry: _GeomEntry | None = None
        self._poll_cache: _PollCache | None = None
        self._group_cache: dict[tuple[int, ...], _GroupCache] = {}
        self.vector_slots = 0
        self.scalar_slots = 0

    # -- lifecycle ---------------------------------------------------------------

    def try_slot(self, payload: dict, group) -> bool:
        """Run the slot starting now in vector mode if it is clean.

        Returns False (after flushing the bank) when the slot must take the
        scalar path: a live transmission is already in the air, or a
        non-radio-neutral event (fault, wake, battery check, another
        process) is pending inside the slot window, boundaries included.
        """
        sim = self.sim
        t0 = sim.now
        if self.medium._active or not sim.quiet_until(t0 + self.slot_time):
            self.flush()
            self.scalar_slots += 1
            return False
        if not self.loaded:
            self.bank.load()
            self._bind_caches()
            self.loaded = True
        self._run_slot(t0, payload, group)
        self.vector_slots += 1
        return True

    def flush(self) -> None:
        """Write the bank back to the live transceivers (idempotent)."""
        if self.loaded:
            self.bank.store()
            self.loaded = False

    # -- cache builders ----------------------------------------------------------

    def _bind_caches(self) -> None:
        key = self.bank.listening.tobytes()
        entry = self._geom_store.get(key)
        if entry is None or entry.rxp is not self.medium.rx_power:
            entry = _GeomEntry(self.medium.rx_power)
            self._geom_store[key] = entry
        self._entry = entry
        self._poll_cache = entry.pc
        self._group_cache = entry.groups

    def _build_poll_cache(self) -> _PollCache:
        med = self.medium
        b = self.bank
        head = self.head
        sig = med.rx_power[:, head]
        listening = b.listening.copy()
        listening[head] = False  # half-duplex: the head is the sender
        flip = listening & (sig >= med.cs_threshold)
        audible = listening & (sig >= med.rx_sensitivity)
        # Sole frame in the air: interference is the scalar path's empty
        # sum (integer 0), so the capture threshold is beta * (noise + 0).
        coll = audible & (sig < med.beta * (med.noise + 0))
        ok = audible & ~coll
        cache = _PollCache(
            rx_idx=np.nonzero(flip)[0],
            ok_idx=np.nonzero(ok)[0],
            coll_idx=np.nonzero(coll)[0],
            ptab=b.ptab,
            head=head,
            n=len(b.transceivers),
        )
        self._poll_cache = cache
        self._entry.pc = cache
        return cache

    def _build_group_cache(self, key: tuple[int, ...], pc: _PollCache) -> _GroupCache:
        med = self.medium
        b = self.bank
        rxp = med.rx_power
        n = len(b.transceivers)
        smask = np.zeros(n, dtype=bool)
        sender_idx = np.array(key, dtype=np.int64)
        smask[sender_idx] = True
        listen = b.listening & ~smask
        # Carrier sense: the final in-air power each listener compares
        # against cs is the left-to-right sum over senders in begin order.
        total = ordered_sum(rxp[:, s] for s in key)
        rx_flip = listen & (total >= med.cs_threshold)
        records = []
        for sk in key:
            sig = rxp[:, sk]
            interf = ordered_sum(rxp[:, sj] for sj in key if sj != sk)
            if interf is None:
                thr = med.beta * (med.noise + 0)
            else:
                thr = med.beta * (med.noise + interf)
            audible = listen & (sig >= med.rx_sensitivity)
            coll = audible & (sig < thr)
            ok = audible & ~coll
            ok_idx = np.nonzero(ok)[0]
            records.append(
                (ok, _as_index(ok_idx), [int(x) for x in ok_idx], np.nonzero(coll)[0])
            )
        gc = _GroupCache()
        gc.s_ix = _as_index(sender_idx)
        rx_idx = np.nonzero(rx_flip)[0]
        gc.rx_ix = _as_index(rx_idx)
        gc.n_rx = len(rx_idx)
        # Listeners that took part in the poll exchange (or are the head)
        # have last_change == t1 at t_tx: their IDLE integration uses the
        # shared scalar dt.  The rest (heard the data but not the poll)
        # integrate against their own last_change.
        rx_c = rx_flip & pc.mask_t1
        rx_v = rx_flip & ~pc.mask_t1
        rx_c_idx = np.nonzero(rx_c)[0]
        rx_v_idx = np.nonzero(rx_v)[0]
        gc.rx_c_ix = _as_index(rx_c_idx)
        gc.n_c = len(rx_c_idx)
        gc.rx_v_ix = _as_index(rx_v_idx)
        gc.n_v = len(rx_v_idx)
        # Only ever used for scalar assignment (lc[...] = t2), so sorting
        # for the contiguity check is safe.
        gc.t2_ix = _as_index(np.sort(np.concatenate([sender_idx, rx_idx])))
        ptab = b.ptab
        gc.pw_s_idle = ptab[IDLE, sender_idx]
        gc.pw_s_tx = ptab[TX, sender_idx]
        gc.pw_c_idle = ptab[IDLE, rx_c_idx]
        gc.pw_v_idle = ptab[IDLE, rx_v_idx]
        gc.pw_rx = ptab[RX, rx_idx]
        gc.records = records
        self._group_cache[key] = gc
        return gc

    # -- stochastic decode (frame errors / bursty links) -------------------------

    def _draw_outcomes(self, cand_nodes, sender: int, now: float):
        """Replay the decode loop's RNG draws for candidates, in order.

        Candidates already pass sensitivity/listen/SINR; the scalar decode
        demotes them to collisions via the shared frame-error RNG and the
        per-link Gilbert–Elliott chains, consulted in node order.
        """
        med = self.medium
        fer = med.frame_error_rate
        rng = med._error_rng
        link = med.link_loss
        ok: list[int] = []
        coll: list[int] = []
        for node in cand_nodes:
            if fer > 0.0 and rng.random() < fer:
                coll.append(node)
            elif link is not None and link.frame_fails(node, sender, now):
                coll.append(node)
            else:
                ok.append(node)
        return ok, coll

    # -- the slot replay ---------------------------------------------------------

    def _run_slot(self, t0: float, payload: dict, group) -> None:
        b = self.bank
        counts = self.tracer.counts
        head = self.head
        mac = self.mac
        consumed = b.consumed
        dwell = b.dwell
        lc = b.last_change
        pc = self._poll_cache
        if pc is None:
            pc = self._build_poll_cache()
        rx1 = pc.rx_ix
        t1 = t0 + self.air_poll

        # t0: head IDLE->TX, poll-audible listeners IDLE->RX.  Only this
        # integration has per-radio dt (listeners enter the slot with
        # different last_change values); everything later shares scalar dts.
        dt0 = t0 - lc[rx1]
        consumed[rx1] += pc.pw_idle * dt0
        dwell[IDLE][rx1] += dt0
        h_dt = t0 - lc[head]
        consumed[head] += self.head_idle_w * h_dt
        dwell[IDLE, head] += h_dt
        b.frames_sent[head] += 1
        counts["phy_tx_start"] += 1

        # t1: poll decodes; listeners flip back to IDLE, head resumes
        # listening.  dt is the *timestamp difference* t1 - t0 (not the
        # airtime constant — (t0 + a) - t0 != a in floating point).
        dt1 = t1 - t0
        consumed[rx1] += pc.pw_rx * dt1
        dwell[RX][rx1] += dt1
        consumed[head] += self.head_tx_w * dt1
        dwell[TX, head] += dt1
        counts["phy_tx_end"] += 1
        if self.dynamic:
            ok_nodes, extra_coll = self._draw_outcomes(pc.ok_nodes, head, t1)
            n_coll = pc.n_coll + len(extra_coll)
            if ok_nodes:
                b.frames_received[np.array(ok_nodes, dtype=np.int64)] += 1
            if extra_coll:
                b.frames_garbled[np.array(extra_coll, dtype=np.int64)] += 1
        else:
            ok_nodes = pc.ok_nodes
            n_coll = pc.n_coll
            if ok_nodes:
                b.frames_received[pc.ok_ix] += 1
        if pc.n_coll:
            b.frames_garbled[pc.coll_idx] += 1
        if ok_nodes:
            counts["phy_rx_ok"] += len(ok_nodes)
        if n_coll:
            counts["phy_rx_collision"] += n_coll

        responses: list[tuple[int, Frame]] = []
        if group:
            senders = {tx.sender for tx in group}
            sensors = mac.sensors
            for node in ok_nodes:
                if node in senders:
                    frame = sensors[node].build_response(payload)
                    if frame is not None:
                        responses.append((node, frame))
        if not responses:
            lc[rx1] = t1
            lc[head] = t1
            b.listen_since[head] = t1
            return

        # t_tx: every responder transmits simultaneously (begin order =
        # node order); carrier-sensing listeners flip IDLE -> RX.
        t_tx = t1 + self.turnaround
        t2 = t_tx + self.air_payload
        key = tuple(x for x, _ in responses)
        gc = self._group_cache.get(key)
        if gc is None:
            gc = self._build_group_cache(key, pc)
        sidx = gc.s_ix
        dtt = t_tx - t1
        consumed[sidx] += gc.pw_s_idle * dtt
        dwell[IDLE][sidx] += dtt
        if gc.n_c:
            consumed[gc.rx_c_ix] += gc.pw_c_idle * dtt
            dwell[IDLE][gc.rx_c_ix] += dtt
        if gc.n_v:
            dtv = t_tx - lc[gc.rx_v_ix]
            consumed[gc.rx_v_ix] += gc.pw_v_idle * dtv
            dwell[IDLE][gc.rx_v_ix] += dtv
        b.frames_sent[sidx] += 1
        counts["phy_tx_start"] += len(responses)

        # t2: each record decodes in begin order; deliveries apply to the
        # addressed receiver (and the head, which overhears everything).
        recs = gc.records
        for k, (node_k, frame_k) in enumerate(responses):
            ok_mask, ok_ix, ok_list, coll_idx = recs[k]
            counts["phy_tx_end"] += 1
            if self.dynamic:
                ok_list, extra_coll = self._draw_outcomes(ok_list, node_k, t2)
                n_coll = len(coll_idx) + len(extra_coll)
                if ok_list:
                    b.frames_received[np.array(ok_list, dtype=np.int64)] += 1
                if extra_coll:
                    b.frames_garbled[np.array(extra_coll, dtype=np.int64)] += 1
                ok_set = set(ok_list)
                head_ok = head in ok_set
            else:
                n_coll = len(coll_idx)
                if ok_list:
                    b.frames_received[ok_ix] += 1
                ok_set = None
                head_ok = bool(ok_mask[head])
            if len(coll_idx):
                b.frames_garbled[coll_idx] += 1
            if ok_list:
                counts["phy_rx_ok"] += len(ok_list)
            if n_coll:
                counts["phy_rx_collision"] += n_coll
            ins = frame_k.payload["instruction"]
            rcv = ins.receiver
            if rcv == HEAD:
                if head_ok:
                    mac._head_receive(frame_k, t2)
            else:
                if (rcv in ok_set) if ok_set is not None else bool(ok_mask[rcv]):
                    agent = mac.sensors[rcv]
                    if frame_k.ftype is FrameType.DATA:
                        agent._on_data(frame_k.payload)
                    else:
                        agent._on_ack(frame_k.payload)
            if frame_k.ftype is FrameType.DATA:
                mac.sensors[node_k].packets_sent += 1

        # t2 energy: senders integrate TX, listeners RX; everyone ends the
        # slot idle.  last_change lands at t1 for poll-only participants and
        # t2 for the data participants (senders + data listeners).
        dtp = t2 - t_tx
        consumed[sidx] += gc.pw_s_tx * dtp
        dwell[TX][sidx] += dtp
        if gc.n_rx:
            rx2 = gc.rx_ix
            consumed[rx2] += gc.pw_rx * dtp
            dwell[RX][rx2] += dtp
        lc[rx1] = t1
        lc[head] = t1
        b.listen_since[head] = t1
        lc[gc.t2_ix] = t2
        b.listen_since[sidx] = t2


def maybe_vector_engine(
    mac: "PollingClusterMac", payload_bytes: int
) -> VectorPhaseEngine | None:
    """A phase engine when this MAC/PHY combination supports batch slots.

    Returns ``None`` (pure scalar phase) when the MAC asked for the scalar
    oracle, the PHY shares a multi-cluster medium (``index_map``), radios
    sit on different channels, a tracer consumer needs per-event records,
    or a garble callback is installed (S-MAC statistics) — every situation
    where per-event fidelity is observable from outside the slot.

    Each silent fallback is counted with its reason — on
    ``mac.engine_fallbacks`` always, and as an ``engine.scalar_fallback.
    <reason>`` obs counter when telemetry is active — so a run that
    *requested* the vector engine but ran scalar slots (every multi-cluster
    PHY today; see DESIGN.md §12/§13) shows up as a gated eligibility
    decision rather than masquerading as a perf regression.  The scalar
    *request* itself (``engine="scalar"``) is not a fallback and stays
    uncounted.
    """
    if mac.engine != "vector":
        return None
    phy = mac.phy
    if phy.index_map is not None:
        return _scalar_fallback(mac, "index_map")
    med = phy.medium
    tracer = med.tracer
    if tracer._subs or tracer._all_subs or tracer.keep_records:
        return _scalar_fallback(mac, "tracer")
    ch = med.channels
    if ch.size and bool(np.any(ch != ch[0])):
        return _scalar_fallback(mac, "channels")
    for trx in phy.transceivers:
        if trx._garble_callback is not None:
            return _scalar_fallback(mac, "garble_callback")
    return VectorPhaseEngine(mac, payload_bytes)


def _scalar_fallback(mac: "PollingClusterMac", reason: str) -> None:
    """Record one per-phase scalar fallback under *reason*; returns None."""
    counts = mac.engine_fallbacks
    counts[reason] = counts.get(reason, 0) + 1
    tel = _obs.current()
    if tel.enabled:
        tel.metrics.counter(f"engine.scalar_fallback.{reason}").inc()
    return None
