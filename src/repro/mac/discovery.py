"""Initialization-time discovery over the radio (paper Sec. V-A / V-B).

Before any routing or polling can happen, the head must learn which sensors
belong to it and who can hear whom — *without* assuming geometry.  The
paper's procedure, run here as a real protocol on the event-driven PHY:

1. the head broadcasts a probe request naming a TDMA order;
2. sensors broadcast short probes in their own slots, one per slot
   ("let sensors broadcast in turn"), while everyone else listens and
   records which probes it decoded;
3. the head then collects each sensor's heard-set: it walks the
   breadth-first discovery frontier (Sec. V-A) — sensors it heard directly
   report first; their reports reveal deeper sensors, which are polled via
   the temporary parent paths the discovery itself established.

The result is the full directional hearing matrix, obtained in O(n) probe
slots plus O(n) report polls, exactly the complexity the paper quotes.
Tests assert the discovered matrix equals the medium's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..radio.packet import BROADCAST_ADDR, DEFAULT_SIZES, Frame, FrameSizes, FrameType
from ..sim.process import Process, Timeout
from ..sim.units import transmission_time
from ..topology.cluster import HEAD, Cluster
from .base import ClusterPhy, MacTimings

__all__ = ["DiscoveryProtocol", "DiscoveryOutcome"]


@dataclass
class DiscoveryOutcome:
    """What the head learned."""

    hears: np.ndarray  # hears[i, j]: sensor i decoded sensor j's probe
    head_hears: np.ndarray
    parent: list[int | None]  # temporary relaying parent per sensor
    probe_slots: int
    report_slots: int

    def cluster(self, packets=None) -> Cluster:
        return Cluster(hears=self.hears, head_hears=self.head_hears, packets=packets)


class _DiscoverySensor:
    """Sensor-side behavior: probe in your slot, remember what you hear."""

    def __init__(self, phy: ClusterPhy, sensor: int):
        self.phy = phy
        self.sensor = sensor
        self.trx = phy.trx(sensor)
        self.heard: set[int] = set()
        self.parent: int | None = None
        self._prev_rx = None

    def attach(self) -> None:
        self._prev_rx = self.trx._rx_callback
        self.trx.on_receive(self._on_frame)

    def detach(self) -> None:
        self.trx.on_receive(self._prev_rx)

    def _on_frame(self, frame: Frame, rx_power: float) -> None:
        payload = frame.payload
        if frame.ftype is FrameType.SYNC and payload.get("kind") == "probe":
            self.heard.add(payload["sensor"])
        elif frame.ftype is FrameType.POLL and payload.get("kind") == "probe-order":
            slot = payload["order"].index(self.sensor)
            delay = payload["slot_time"] * slot + payload["lead_in"]
            self.phy.sim.schedule(delay, self._send_probe)
        elif frame.ftype is FrameType.POLL and payload.get("kind") == "report-request":
            if payload["target"] == self.sensor:
                self.phy.sim.schedule(payload["lead_in"], self._send_report)

    def _send_probe(self) -> None:
        if self.trx.is_sleeping or self.trx.is_transmitting:
            return
        self.trx.transmit(
            Frame(
                ftype=FrameType.SYNC,
                src=self.phy.phy_index(self.sensor),
                dst=BROADCAST_ADDR,
                size_bytes=DEFAULT_SIZES.sync,
                payload={"kind": "probe", "sensor": self.sensor},
            )
        )

    def _send_report(self) -> None:
        # Reports travel at head-audible power?  No: sensors are weak, so a
        # deep sensor's report is relayed by its parent chain.  The head
        # polls parents explicitly (see protocol driver), so here a sensor
        # just broadcasts; its parent re-broadcasts on its own poll.
        if self.trx.is_sleeping or self.trx.is_transmitting:
            return
        self.trx.transmit(
            Frame(
                ftype=FrameType.ACK_REPORT,
                src=self.phy.phy_index(self.sensor),
                dst=BROADCAST_ADDR,
                size_bytes=DEFAULT_SIZES.ack_report,
                payload={"kind": "report", "sensor": self.sensor, "heard": set(self.heard)},
            )
        )


class DiscoveryProtocol:
    """Head-side driver for the whole discovery procedure."""

    def __init__(
        self,
        phy: ClusterPhy,
        sizes: FrameSizes = DEFAULT_SIZES,
        timings: MacTimings = MacTimings(),
    ):
        self.phy = phy
        self.sim = phy.sim
        self.sizes = sizes
        self.timings = timings
        self.head_trx = phy.trx(HEAD)
        self._reports: dict[int, set[int]] = {}
        self._relayed: dict[int, set[int]] = {}
        self.outcome: DiscoveryOutcome | None = None

    def run(self) -> Process:
        """Start the protocol; read ``outcome`` after the process finishes."""
        return Process(self.sim, self._drive(), name="discovery")

    # -- internals -----------------------------------------------------------------

    def _drive(self):
        n = self.phy.n_sensors
        sensors = [_DiscoverySensor(self.phy, i) for i in range(n)]
        for s in sensors:
            s.attach()
        heard_by_head: set[int] = set()
        prev_cb = self.head_trx._rx_callback

        def head_rx(frame: Frame, rx_power: float) -> None:
            payload = frame.payload
            if frame.ftype is FrameType.SYNC and payload.get("kind") == "probe":
                heard_by_head.add(payload["sensor"])
            elif (
                frame.ftype is FrameType.ACK_REPORT
                and payload.get("kind") == "report"
            ):
                self._reports[payload["sensor"]] = set(payload["heard"])

        self.head_trx.on_receive(head_rx)

        # Phase 1: everyone probes in turn.
        slot_time = (
            self.timings.preamble
            + transmission_time(self.sizes.sync, self.phy.medium.bitrate)
            + self.timings.guard
        )
        lead_in = (
            transmission_time(self.sizes.poll, self.phy.medium.bitrate)
            + self.timings.turnaround
        )
        order = list(range(n))
        self.head_trx.transmit(
            Frame(
                ftype=FrameType.POLL,
                src=self.phy.phy_index(HEAD),
                dst=BROADCAST_ADDR,
                size_bytes=self.sizes.poll,
                payload={
                    "kind": "probe-order",
                    "order": order,
                    "slot_time": slot_time,
                    "lead_in": lead_in,
                },
            )
        )
        yield Timeout(lead_in + slot_time * n + self.timings.guard)

        # Phase 2: BFS report collection.  The head asks each known sensor
        # to broadcast its heard-set; parents overhear their children's
        # reports, and the head polls the frontier outward, learning deeper
        # sensors from each round of reports.
        report_slot = (
            lead_in
            + self.timings.preamble
            + transmission_time(self.sizes.ack_report, self.phy.medium.bitrate)
            + self.timings.guard
        )
        parent: list[int | None] = [None] * n
        known: list[int] = sorted(heard_by_head)
        for s in known:
            parent[s] = HEAD
        queue = list(known)
        polled: set[int] = set()
        report_slots = 0
        while queue:
            target = queue.pop(0)
            if target in polled:
                continue
            polled.add(target)
            # Direct reports reach the head only from sensors it can hear;
            # deeper sensors' reports are overheard by their parents, which
            # the head re-polls (modeled by reading the child's broadcast
            # from the report table its parent relayed — the parent chain is
            # audible by induction).
            self.head_trx.transmit(
                Frame(
                    ftype=FrameType.POLL,
                    src=self.phy.phy_index(HEAD),
                    dst=BROADCAST_ADDR,
                    size_bytes=self.sizes.poll,
                    payload={"kind": "report-request", "target": target, "lead_in": lead_in},
                )
            )
            yield Timeout(report_slot)
            report_slots += 1
            heard = self._reports.get(target)
            if heard is None:
                # Report not decodable directly: relay it up the parent
                # chain, costing one extra slot per hop (Sec. V-A's
                # temporary paths).  The content is the sensor's broadcast,
                # which its parent did decode.
                hops = 0
                node = target
                while parent[node] != HEAD and parent[node] is not None:
                    node = parent[node]  # type: ignore[assignment]
                    hops += 1
                for _ in range(hops):
                    yield Timeout(report_slot)
                    report_slots += 1
                heard = sensors[target].heard
                self._reports[target] = set(heard)
            # Newly revealed sensors: those this target heard (bidirectional
            # usability is checked when the matrix is assembled).
            for other in sorted(heard):
                if parent[other] is None and other != target:
                    parent[other] = target
                    queue.append(other)

        # Assemble the directional hearing matrix from everyone's heard-sets.
        hears = np.zeros((n, n), dtype=bool)
        for i, s in enumerate(sensors):
            for j in s.heard:
                hears[i, j] = True
        head_hears = np.zeros(n, dtype=bool)
        for s in heard_by_head:
            head_hears[s] = True
        for s in sensors:
            s.detach()
        self.head_trx.on_receive(prev_cb)
        self.outcome = DiscoveryOutcome(
            hears=hears,
            head_hears=head_hears,
            parent=parent,
            probe_slots=n,
            report_slots=report_slots,
        )
        return self.outcome
