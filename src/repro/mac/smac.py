"""S-MAC + AODV baseline (the paper's Fig. 7(b) comparison, refs [8]).

S-MAC essentials implemented here:

* a **shared periodic listen/sleep schedule** — every node wakes for
  ``duty_cycle * frame_length`` then sleeps the remainder (100% duty =
  always listening).  We give all nodes one synchronized virtual cluster
  schedule, S-MAC's steady state, so SYNC maintenance traffic is reduced to
  a small periodic beacon from the sink;
* **CSMA with binary backoff** plus RTS/CTS/DATA/ACK unicast handshakes and
  NAV-style deferral from overheard RTS/CTS;
* transfers that win the channel complete even if they spill past the
  listen period (both parties stay awake; everyone else sleeps on
  schedule).

Routing is on-demand **AODV** (:mod:`repro.routing.aodv`): RREQ floods when
a sensor holds data but no fresh route to the sink, RREP back-propagation,
RERR + re-flood when a handshake fails repeatedly.  These control packets
contend for the same channel as data — the overhead the paper blames for
S-MAC+AODV's throughput collapse, alongside collision losses from random
access.

Energy and active time fall out of the shared PHY transceivers, so the
comparison with the polling MAC is apples-to-apples.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..radio.packet import BROADCAST_ADDR, DEFAULT_SIZES, Frame, FrameSizes, FrameType
from ..routing.aodv import BROADCAST as AODV_BROADCAST
from ..routing.aodv import AodvAgent, Rerr, Rrep, Rreq
from ..sim.kernel import Simulator
from ..sim.process import AnyOf, Process, Signal, Timeout
from ..sim.rng import RngStreams
from ..sim.units import transmission_time
from .base import ClusterPhy
from .pollmac import AppPacket

__all__ = ["SmacParams", "SmacNode", "SmacNetwork"]

_packet_seq = itertools.count(1_000_000)


@dataclass(frozen=True)
class SmacParams:
    """Timing and protocol constants (S-MAC-paper ballpark at 200 kbps)."""

    frame_length: float = 1.0
    duty_cycle: float = 1.0  # fraction of the frame spent listening
    contention_slot: float = 1e-3
    contention_window: int = 16
    difs: float = 10e-3
    sifs: float = 5e-3
    cts_timeout: float = 45e-3
    ack_timeout: float = 45e-3
    max_link_retries: int = 3
    max_route_retries: int = 3
    route_lifetime: float = 30.0
    rreq_backoff: float = 1.5  # RFC-3561-scale net traversal wait
    queue_limit: int = 50

    def listen_time(self) -> float:
        return self.duty_cycle * self.frame_length


@dataclass
class _PendingTransfer:
    dest: int
    packet: AppPacket


class SmacNode:
    """One node running S-MAC + AODV (sensors and the sink alike)."""

    def __init__(
        self,
        net: "SmacNetwork",
        node: int,
        is_sink: bool = False,
    ):
        self.net = net
        self.node = node
        self.is_sink = is_sink
        self.phy = net.phy
        self.sim = net.phy.sim
        self.params = net.params
        self.trx = net.phy.transceivers[node]
        self.aodv = AodvAgent(node_id=node, route_lifetime=net.params.route_lifetime)
        self.queue: deque[_PendingTransfer] = deque()
        self.rng = net.rng.fork(node).get("backoff")
        # Handshake signals.
        self._cts_signal = Signal(f"smac{node}.cts")
        self._ack_signal = Signal(f"smac{node}.ack")
        self.nav_until = 0.0
        self._rreq_pending_until = 0.0
        self._route_retries = 0
        # stats
        self.generated = 0
        self.delivered: list[AppPacket] = []
        self.dropped_queue = 0
        self.dropped_route = 0
        self.data_tx = 0
        self.control_tx = 0
        self.trx.on_receive(self._on_frame)
        self.process: Process | None = None

    # -- application --------------------------------------------------------------

    def generate_packet(self) -> None:
        self.generated += 1
        self._enqueue(
            AppPacket(origin=self.node, seq=next(_packet_seq), created=self.sim.now)
        )

    def _enqueue(self, packet: AppPacket) -> None:
        if len(self.queue) >= self.params.queue_limit:
            self.dropped_queue += 1
            return
        self.queue.append(_PendingTransfer(dest=self.net.sink_index, packet=packet))

    # -- schedule helpers -----------------------------------------------------------

    def _frame_start(self, now: float) -> float:
        return (now // self.params.frame_length) * self.params.frame_length

    def _listen_end(self, now: float) -> float:
        return self._frame_start(now) + self.params.listen_time()

    def _in_listen(self, now: float) -> bool:
        return (now - self._frame_start(now)) < self.params.listen_time()

    # -- the node main loop ------------------------------------------------------------

    def start(self) -> Process:
        self.process = Process(self.sim, self._run(), name=f"smac-{self.node}")
        return self.process

    def _run(self):
        params = self.params
        while True:
            now = self.sim.now
            if not self._in_listen(now):
                # Sleep out the rest of the frame.
                next_wake = self._frame_start(now) + params.frame_length
                if not self.trx.is_transmitting:
                    self.trx.sleep()
                    self.sim.at(next_wake, self.trx.wake)
                yield Timeout(next_wake - now)
                continue
            if not self.queue:
                # Idle-listen until something arrives or listen ends.
                yield Timeout(
                    min(params.contention_slot * 4, self._listen_end(now) - now) or params.contention_slot
                )
                continue
            # Head-of-line packet: ensure a route, then handshake it over.
            head = self.queue[0]
            next_hop = self.aodv.route_to(head.dest, self.sim.now)
            if next_hop is None and not self.is_sink:
                yield from self._ensure_route(head)
                continue
            if next_hop is None:
                self.queue.popleft()
                continue
            success = yield from self._unicast_data(next_hop, head)
            if success:
                if self.queue and self.queue[0] is head:
                    self.queue.popleft()
                self._route_retries = 0
            else:
                # Link-level failure: AODV invalidation + RERR broadcast.
                for msg, _dst in self.aodv.invalidate(head.dest):
                    yield from self._broadcast_control(msg)

    # -- route discovery ------------------------------------------------------------

    def _ensure_route(self, head: _PendingTransfer):
        params = self.params
        if self.sim.now < self._rreq_pending_until:
            yield Timeout(params.contention_slot * 4)
            return
        if self._route_retries >= params.max_route_retries:
            self.queue.popleft()
            self.dropped_route += 1
            self._route_retries = 0
            return
        self._route_retries += 1
        self._rreq_pending_until = self.sim.now + params.rreq_backoff
        req, _ = self.aodv.make_rreq(head.dest)
        yield from self._broadcast_control(req)

    # -- channel access primitives --------------------------------------------------------

    def _backoff_delay(self) -> float:
        slots = int(self.rng.integers(0, self.params.contention_window))
        return self.params.difs + slots * self.params.contention_slot

    def _wait_channel(self):
        """Carrier sense + NAV + random backoff; returns when clear to send."""
        while True:
            yield Timeout(self._backoff_delay())
            now = self.sim.now
            if now < self.nav_until or self.trx.is_sleeping:
                yield Timeout(max(self.nav_until - now, self.params.contention_slot))
                continue
            if not self.trx.carrier_busy():
                return

    def _broadcast_control(self, payload):
        yield from self._wait_channel()
        if self.trx.is_sleeping or self.trx.is_transmitting:
            return
        frame = Frame(
            ftype=FrameType.AODV,
            src=self.node,
            dst=BROADCAST_ADDR,
            size_bytes=self.net.sizes.aodv,
            payload=payload,
        )
        self.control_tx += 1
        dur = self.trx.transmit(frame)
        yield Timeout(dur)

    def _unicast_data(self, next_hop: int, transfer: _PendingTransfer):
        """RTS/CTS/DATA/ACK with retries; returns True on MACK received."""
        params = self.params
        sizes = self.net.sizes
        bitrate = self.phy.medium.bitrate
        exchange = (
            transmission_time(sizes.cts, bitrate)
            + transmission_time(sizes.data, bitrate)
            + transmission_time(sizes.mack, bitrate)
            + 4 * params.sifs
        )
        for _attempt in range(params.max_link_retries):
            yield from self._wait_channel()
            if self.trx.is_sleeping or self.trx.is_transmitting:
                continue
            rts = Frame(
                ftype=FrameType.RTS,
                src=self.node,
                dst=next_hop,
                size_bytes=sizes.rts,
                payload={"duration": exchange},
            )
            self.control_tx += 1
            dur = self.trx.transmit(rts)
            yield Timeout(dur)
            kind, _val = yield AnyOf([self._cts_signal, Timeout(params.cts_timeout)])
            if kind != 0:
                continue  # CTS timeout: collided or receiver unavailable
            yield Timeout(params.sifs)
            if self.trx.is_transmitting or self.trx.is_sleeping:
                continue
            data = Frame(
                ftype=FrameType.DATA,
                src=self.node,
                dst=next_hop,
                size_bytes=sizes.data,
                payload={"packet": transfer.packet, "final_dest": transfer.dest},
            )
            self.data_tx += 1
            dur = self.trx.transmit(data)
            yield Timeout(dur)
            kind, _val = yield AnyOf([self._ack_signal, Timeout(params.ack_timeout)])
            if kind == 0:
                return True
        return False

    # -- reception ------------------------------------------------------------------

    def _on_frame(self, frame: Frame, rx_power: float) -> None:
        if frame.ftype is FrameType.RTS:
            self._on_rts(frame)
        elif frame.ftype is FrameType.CTS:
            self._on_cts(frame)
        elif frame.ftype is FrameType.DATA:
            self._on_data(frame)
        elif frame.ftype is FrameType.MACK:
            self._on_mack(frame)
        elif frame.ftype is FrameType.AODV:
            self._on_aodv(frame)

    def _on_rts(self, frame: Frame) -> None:
        duration = frame.payload["duration"]
        if frame.dst != self.node:
            self.nav_until = max(self.nav_until, self.sim.now + duration)
            return
        if self.trx.is_transmitting:
            return
        cts = Frame(
            ftype=FrameType.CTS,
            src=self.node,
            dst=frame.src,
            size_bytes=self.net.sizes.cts,
            payload={"duration": duration},
        )
        self.control_tx += 1
        self.sim.schedule(self.params.sifs, self._safe_transmit, cts)

    def _on_cts(self, frame: Frame) -> None:
        if frame.dst != self.node:
            self.nav_until = max(self.nav_until, self.sim.now + frame.payload["duration"])
            return
        self._cts_signal.fire(frame.src)

    def _on_data(self, frame: Frame) -> None:
        if frame.dst != self.node:
            return
        ack = Frame(
            ftype=FrameType.MACK,
            src=self.node,
            dst=frame.src,
            size_bytes=self.net.sizes.mack,
        )
        self.control_tx += 1
        self.sim.schedule(self.params.sifs, self._safe_transmit, ack)
        packet: AppPacket = frame.payload["packet"]
        final_dest: int = frame.payload["final_dest"]
        if final_dest == self.node:
            self.delivered.append(packet)
        else:
            self._enqueue_forward(packet, final_dest)

    def _enqueue_forward(self, packet: AppPacket, dest: int) -> None:
        if len(self.queue) >= self.params.queue_limit:
            self.dropped_queue += 1
            return
        self.queue.append(_PendingTransfer(dest=dest, packet=packet))

    def _on_mack(self, frame: Frame) -> None:
        if frame.dst == self.node:
            self._ack_signal.fire(frame.src)

    def _on_aodv(self, frame: Frame) -> None:
        if frame.dst != BROADCAST_ADDR and frame.dst != self.node:
            return  # someone else's unicast RREP, overheard; not ours to forward
        replies = self.aodv.on_receive(
            frame.payload, frame.src, self.sim.now, is_dest=self.is_sink
        )
        for msg, dst in replies:
            out = Frame(
                ftype=FrameType.AODV,
                src=self.node,
                dst=BROADCAST_ADDR if dst == AODV_BROADCAST else dst,
                size_bytes=self.net.sizes.aodv,
                payload=msg,
            )
            self.control_tx += 1
            # Wide jitter decorrelates the flood re-broadcasts; 30 nodes
            # answering within a frame-time would be a guaranteed pile-up.
            jitter = float(self.rng.uniform(1.0, 20.0)) * self.params.contention_slot
            self.sim.schedule(self.params.sifs + jitter, self._safe_transmit, out)

    def _safe_transmit(self, frame: Frame, attempts: int = 6) -> None:
        """Carrier-sensed control transmission with random retry backoff.

        Immediate protocol responses (CTS/MACK) go out regardless — the
        medium is reserved for them; everything else defers while busy.
        """
        if self.trx.is_sleeping or self.trx.is_transmitting:
            return
        urgent = frame.ftype in (FrameType.CTS, FrameType.MACK)
        if not urgent and (self.trx.carrier_busy() or self.sim.now < self.nav_until):
            if attempts > 1:
                backoff = float(self.rng.uniform(2.0, 16.0)) * self.params.contention_slot
                self.sim.schedule(backoff, self._safe_transmit, frame, attempts - 1)
            return
        self.trx.transmit(frame)


class SmacNetwork:
    """All S-MAC nodes of one cluster plus the sink (the cluster head)."""

    def __init__(
        self,
        phy: ClusterPhy,
        params: SmacParams = SmacParams(),
        sizes: FrameSizes = DEFAULT_SIZES,
        seed: int = 0,
    ):
        self.phy = phy
        self.params = params
        self.sizes = sizes
        self.rng = RngStreams(seed)
        self.sink_index = phy.head_index
        self.nodes: list[SmacNode] = [
            SmacNode(self, i, is_sink=(i == self.sink_index))
            for i in range(phy.n_sensors + 1)
        ]

    @property
    def sensors(self) -> list[SmacNode]:
        return self.nodes[: self.phy.n_sensors]

    @property
    def sink(self) -> SmacNode:
        return self.nodes[self.sink_index]

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    # -- measurements ----------------------------------------------------------------

    @property
    def packets_delivered(self) -> int:
        return len(self.sink.delivered)

    @property
    def packets_generated(self) -> int:
        return sum(n.generated for n in self.sensors)

    def throughput_bps(self, elapsed: float, packet_bytes: int = 80) -> float:
        if elapsed <= 0:
            return 0.0
        return self.packets_delivered * packet_bytes / elapsed

    def control_overhead(self) -> int:
        return sum(n.control_tx + n.aodv.control_tx for n in self.nodes)
