"""Shared MAC plumbing: node stacks, PHY indexing, timing parameters.

PHY node indexing convention: sensors occupy medium indices ``0..n-1`` in
cluster order; the cluster head is medium index ``n``.  MAC code translates
between the scheduling layer's :data:`repro.topology.HEAD` (= -1) and the
PHY index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..radio.channel import RadioMedium
from ..radio.energy import EnergyParams
from ..radio.packet import DEFAULT_SIZES, FrameSizes
from ..radio.propagation import TwoRayGround
from ..radio.transceiver import Transceiver
from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from ..sim.units import transmission_time
from ..topology.cluster import HEAD, Cluster

__all__ = [
    "MacTimings",
    "ClusterPhy",
    "build_cluster_phy",
    "sensor_power_for_range",
    "geometric_oracle",
    "GROUND_SENSOR_PROPAGATION",
]

# Ground-level sensor nodes have antennas centimeters off the soil; at
# 914 MHz and 0.3 m heights the two-ray crossover is ~3.5 m, so in-cluster
# links live in the 4th-power regime.  This is what makes spatial reuse
# (the paper's Fig. 2 concurrency) physically possible inside a cluster a
# few hop-lengths across: interference from across the cluster falls off
# much faster than the wanted short-link signal.
GROUND_SENSOR_PROPAGATION = TwoRayGround(ht=0.3, hr=0.3)


@dataclass(frozen=True)
class MacTimings:
    """Guard/turnaround/preamble timings shared by the slotted MACs (s).

    ``preamble`` models the PHY synchronization header every frame carries
    (ns-2 charges a PLCP-style preamble per frame too); cheap sensor radios
    at 200 kbps need a substantial one, and it is pure dead air as far as
    the schedule is concerned.
    """

    turnaround: float = 250e-6  # rx->tx switch after hearing a poll
    guard: float = 250e-6  # slack at the end of each slot
    preamble: float = 500e-6  # PHY preamble per frame (poll and data alike)

    def poll_slot_time(self, bitrate: float, sizes: FrameSizes, payload_bytes: int) -> float:
        """One polling slot: poll broadcast + turnaround + payload + guard."""
        return (
            self.preamble
            + transmission_time(sizes.poll, bitrate)
            + self.turnaround
            + self.preamble
            + transmission_time(payload_bytes, bitrate)
            + self.guard
        )


@dataclass
class ClusterPhy:
    """The PHY stack of one cluster: medium + a transceiver per node.

    ``index_map`` (optional) maps local indices (0..n-1 sensors, n = head)
    to medium indices when several clusters share one
    :class:`~repro.radio.channel.RadioMedium` (Sec. V-G multi-cluster
    operation).  Without it, local and medium indices coincide.
    """

    sim: Simulator
    cluster: Cluster
    medium: RadioMedium
    transceivers: list[Transceiver]  # local index 0..n-1 sensors, n = head
    tracer: Tracer
    index_map: list[int] | None = None

    @property
    def n_sensors(self) -> int:
        return self.cluster.n_sensors

    @property
    def head_index(self) -> int:
        return self.n_sensors

    def phy_index(self, node: int) -> int:
        """Scheduler node id (HEAD = -1) -> medium index."""
        local = self.head_index if node == HEAD else node
        if self.index_map is not None:
            return self.index_map[local]
        return local

    def node_id(self, phy_index: int) -> int:
        """Medium index -> scheduler node id (single-cluster layout only)."""
        if self.index_map is not None:
            local = self.index_map.index(phy_index)
        else:
            local = phy_index
        return HEAD if local == self.head_index else local

    def trx(self, node: int) -> Transceiver:
        local = self.head_index if node == HEAD else node
        return self.transceivers[local]

    def finalize(self) -> None:
        for trx in self.transceivers:
            trx.finalize()

    def sensor_active_fraction(self) -> np.ndarray:
        """Per-sensor fraction of elapsed time spent awake (Fig. 7a metric)."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return np.zeros(self.n_sensors)
        return np.array(
            [
                self.transceivers[i].meter.active_time_s() / elapsed
                for i in range(self.n_sensors)
            ]
        )


def sensor_power_for_range(propagation, range_m: float, rx_sensitivity_w: float) -> float:
    """Transmit power that reaches exactly *range_m* at the sensitivity."""
    if range_m <= 0:
        raise ValueError(f"range must be positive, got {range_m}")
    return rx_sensitivity_w / propagation.gain(range_m)


def geometric_oracle(
    cluster: Cluster,
    sensor_range_m: float = 60.0,
    propagation=None,
    rx_sensitivity_w: float = 1e-11,
    capture_beta: float = 10.0,
    noise_w: float = 1e-13,
    max_group_size: int = 2,
):
    """A physical-model oracle for a geometric cluster, no DES required.

    Uses the same power derivation as :func:`build_cluster_phy`, so the
    schedule-level experiments and the event-driven MAC agree on which
    transmission groups are compatible (tests assert this equivalence).
    Returns ``(oracle, discovered_cluster)`` where the cluster's hearing
    matrix comes from the oracle's single-link audibility.
    """
    from ..interference.physical import PhysicalModelOracle

    if cluster.positions is None or cluster.head_position is None:
        raise ValueError("geometric oracle needs positions")
    prop = propagation or GROUND_SENSOR_PROPAGATION
    n = cluster.n_sensors
    positions = np.vstack([cluster.positions, cluster.head_position[np.newaxis, :]])
    sensor_power = sensor_power_for_range(prop, sensor_range_m, rx_sensitivity_w)
    diffs = cluster.positions - cluster.head_position
    max_dist = float(np.sqrt((diffs**2).sum(axis=1)).max()) if n else 1.0
    head_power = 4.0 * sensor_power_for_range(
        prop, max(max_dist, sensor_range_m), rx_sensitivity_w
    )
    tx_power = np.full(n + 1, sensor_power)
    tx_power[n] = head_power
    diff = positions[:, np.newaxis, :] - positions[np.newaxis, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    power = prop.gain_matrix(dist) * tx_power[np.newaxis, :]
    np.fill_diagonal(power, 0.0)
    effective_noise = max(noise_w, rx_sensitivity_w / capture_beta)
    oracle = PhysicalModelOracle(
        power=power,
        beta=capture_beta,
        noise=effective_noise,
        max_group_size=max_group_size,
    )
    hearing = (power >= rx_sensitivity_w) & (power >= capture_beta * effective_noise)
    np.fill_diagonal(hearing, False)
    discovered = Cluster(
        hears=hearing[:n, :n],
        head_hears=hearing[n, :n],
        packets=cluster.packets.copy(),
        energy=cluster.energy.copy(),
        positions=cluster.positions.copy(),
        head_position=cluster.head_position.copy(),
    )
    return oracle, discovered


def build_cluster_phy(
    sim: Simulator,
    cluster: Cluster,
    sensor_range_m: float = 60.0,
    bitrate: float = 200_000.0,
    propagation=None,
    energy: EnergyParams | None = None,
    frame_error_rate: float = 0.0,
    error_seed: int = 0,
    capture_beta: float = 10.0,
    rx_sensitivity_w: float = 1e-11,
    tracer: Tracer | None = None,
    homogeneous_head: bool = False,
) -> ClusterPhy:
    """Assemble medium + transceivers for a geometric cluster.

    Sensor transmit power is derived from *sensor_range_m* under the chosen
    propagation model (two-ray ground by default, matching Sec. VI); the
    head's power is sized to cover the farthest sensor with a 6 dB margin,
    realizing "the message sent by a cluster head can be received by all
    sensors in the cluster".

    ``homogeneous_head`` gives the head sensor-level power instead — used
    by the S-MAC baseline, which models a conventional homogeneous network
    (a high-power sink would also create asymmetric links that break AODV's
    symmetric-link assumption).
    """
    if cluster.positions is None or cluster.head_position is None:
        raise ValueError("DES simulation needs a geometric cluster (positions)")
    tracer = tracer or Tracer()
    prop = propagation or GROUND_SENSOR_PROPAGATION
    positions = np.vstack(
        [cluster.positions, cluster.head_position[np.newaxis, :]]
    )
    n = cluster.n_sensors
    sensor_power = sensor_power_for_range(prop, sensor_range_m, rx_sensitivity_w)
    diffs = cluster.positions - cluster.head_position
    max_dist = float(np.sqrt((diffs**2).sum(axis=1)).max()) if n else 1.0
    head_power = 4.0 * sensor_power_for_range(
        prop, max(max_dist, sensor_range_m), rx_sensitivity_w
    )
    tx_power = np.full(n + 1, sensor_power)
    tx_power[n] = sensor_power if homogeneous_head else head_power
    medium = RadioMedium(
        sim=sim,
        positions=positions,
        tx_power_w=tx_power,
        propagation=prop,
        bitrate_bps=bitrate,
        rx_sensitivity_w=rx_sensitivity_w,
        capture_beta=capture_beta,
        tracer=tracer,
        frame_error_rate=frame_error_rate,
        error_seed=error_seed,
    )
    transceivers = [
        Transceiver(sim, medium, i, energy=energy) for i in range(n + 1)
    ]
    return ClusterPhy(
        sim=sim, cluster=cluster, medium=medium, transceivers=transceivers, tracer=tracer
    )
