"""Cluster forming for the two-layer network (paper Sec. V-A).

The paper's suggested scheme: cluster heads compute the Voronoi diagram of
head positions and every sensor joins the cluster of its Voronoi cell (i.e.
its nearest head).  After forming, each head discovers its members hop by
hop: first the sensors it hears directly, then sensors those can hear, and
so on — each newly discovered sensor remembers its discoverer as a temporary
relaying parent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import HEAD, Cluster
from .geometry import as_positions, within_range_adjacency

__all__ = [
    "voronoi_assignment",
    "DiscoveryResult",
    "bfs_discover",
    "form_clusters",
    "FormedNetwork",
    "cluster_adjacency",
]


def voronoi_assignment(sensor_positions, head_positions) -> np.ndarray:
    """Assign each sensor to its nearest head (Voronoi cells).

    Returns an ``(n,)`` int array of head indices.  Ties break toward the
    lower head index (argmin semantics), which keeps assignment deterministic.
    """
    sensors = as_positions(sensor_positions)
    heads = as_positions(head_positions)
    if heads.shape[0] == 0:
        raise ValueError("need at least one head")
    diff = sensors[:, np.newaxis, :] - heads[np.newaxis, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    return np.argmin(d2, axis=1).astype(np.int64)


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of hop-by-hop membership discovery inside one cluster.

    ``parent[i]`` is the sensor that first discovered sensor *i* (or
    :data:`HEAD` for sensors the head discovered directly, or ``None`` for
    sensors never reached).  ``order`` lists sensors in discovery order;
    ``hops[i]`` is the discovery round (1 = heard by the head).
    """

    parent: list[int | None]
    order: list[int]
    hops: np.ndarray

    @property
    def discovered(self) -> list[int]:
        return list(self.order)

    def temporary_path(self, sensor: int) -> tuple[int, ...]:
        """The provisional relaying path set up during discovery."""
        if self.parent[sensor] is None:
            raise ValueError(f"sensor {sensor} was never discovered")
        path: list[int] = [sensor]
        node = sensor
        while node != HEAD:
            nxt = self.parent[node]
            assert nxt is not None
            path.append(nxt)
            node = nxt
        return tuple(path)


def bfs_discover(cluster: Cluster) -> DiscoveryResult:
    """Hop-by-hop discovery (Sec. V-A): head finds level-1, they find level-2...

    Mirrors the paper's description: "each sensor can remember the first
    sensor that discovered it as its parent, who will be in charge of
    forwarding its packets" — a temporary tree used until the flow-based
    routing replaces it.
    """
    n = cluster.n_sensors
    parent: list[int | None] = [None] * n
    hops = np.full(n, np.inf)
    order: list[int] = []
    frontier: list[int] = []
    for s in cluster.first_level_sensors():
        parent[s] = HEAD
        hops[s] = 1
        order.append(s)
        frontier.append(s)
    level = 1
    while frontier:
        level += 1
        next_frontier: list[int] = []
        for discoverer in frontier:
            # Sensors that can hear `discoverer`'s probe *and* that it can
            # hear back (we require a usable bidirectional link for relaying).
            for cand in range(n):
                if parent[cand] is not None:
                    continue
                if cluster.hears[cand, discoverer] and cluster.hears[discoverer, cand]:
                    parent[cand] = discoverer
                    hops[cand] = level
                    order.append(cand)
                    next_frontier.append(cand)
        frontier = next_frontier
    return DiscoveryResult(parent=parent, order=order, hops=hops)


@dataclass(frozen=True)
class FormedNetwork:
    """A multi-cluster network produced by :func:`form_clusters`.

    ``clusters[h]`` is the :class:`Cluster` of head *h*, whose sensor indices
    are local; ``members[h]`` maps local index -> global sensor index.
    """

    head_positions: np.ndarray
    sensor_positions: np.ndarray
    assignment: np.ndarray
    clusters: list[Cluster]
    members: list[np.ndarray]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


def form_clusters(
    sensor_positions,
    head_positions,
    comm_range: float,
) -> FormedNetwork:
    """Voronoi-partition sensors among heads and build per-cluster structures.

    Only links between sensors of the *same* cluster are kept inside each
    :class:`Cluster` (in-cluster operation, Sec. II); cross-cluster
    interference is handled separately by :mod:`repro.net.multicluster`.
    """
    sensors = as_positions(sensor_positions)
    heads = as_positions(head_positions)
    assignment = voronoi_assignment(sensors, heads)
    adj = within_range_adjacency(sensors, comm_range)
    clusters: list[Cluster] = []
    members: list[np.ndarray] = []
    for h in range(heads.shape[0]):
        idx = np.flatnonzero(assignment == h)
        members.append(idx)
        sub = adj[np.ix_(idx, idx)]
        if idx.size:
            diff = sensors[idx] - heads[h]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            head_hears = dist <= comm_range
        else:
            head_hears = np.zeros(0, dtype=bool)
        clusters.append(
            Cluster(
                hears=sub,
                head_hears=head_hears,
                positions=sensors[idx].copy(),
                head_position=heads[h].copy(),
            )
        )
    return FormedNetwork(
        head_positions=heads,
        sensor_positions=sensors,
        assignment=assignment,
        clusters=clusters,
        members=members,
    )


def cluster_adjacency(net: FormedNetwork, interference_range: float) -> np.ndarray:
    """Which cluster pairs can interfere at their boundaries.

    Clusters *a* and *b* are adjacent when some sensor of *a* is within
    *interference_range* of some sensor of *b* — those are the pairs that
    must not poll simultaneously on the same channel (Sec. V-G).
    """
    k = net.n_clusters
    out = np.zeros((k, k), dtype=bool)
    for a in range(k):
        pa = net.sensor_positions[net.members[a]]
        if pa.shape[0] == 0:
            continue
        for b in range(a + 1, k):
            pb = net.sensor_positions[net.members[b]]
            if pb.shape[0] == 0:
                continue
            diff = pa[:, np.newaxis, :] - pb[np.newaxis, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            if (d2 <= interference_range * interference_range).any():
                out[a, b] = out[b, a] = True
    return out
