"""Field-level re-forming: cross-cluster handoff planning (DESIGN.md §13).

PR 6 made the field dynamic but deliberately froze multi-cluster membership:
``final_assignment_staleness`` measures how badly the deploy-time Voronoi
forming decays under mobility, and nothing acts on it.  This module is the
pure decision side of the loop that closes it — a field-scope analogue of
:mod:`repro.topology.recluster`, consumed by the coordinator in
:mod:`repro.net.multicluster_sim`:

* :class:`FieldStalenessTracker` — the :class:`~repro.topology.recluster.
  StalenessTrigger` machinery reused at field scope: the per-boundary
  "membership delta" is the number of sensors whose nearest live head no
  longer matches the head that serves them, and the periodic condition
  works unchanged;
* :func:`quantization_head_step` — one bounded Lloyd/quantization iteration
  (Karimi-Bidhendi et al., two-tier quantization; Tandon, optimal cluster
  count): each live head steps toward the centroid of its *current* Voronoi
  cell over live sensor positions, no further than a physical displacement
  budget;
* :func:`plan_field_reform` — re-run Voronoi forming over live positions
  (with the quantization-guided head placement folded in) and distill the
  difference into a **bounded** set of :class:`HandoffMove`\\ s, largest
  geometric gain first; moves beyond the budget are returned as
  ``deferred`` so the next boundary can pick them up.

Everything here is pure computation over position snapshots — no simulator
access, no RNG, no radio state.  The coordinator owns execution (radio
retune, queue transplant, CBR re-target) and crash safety.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .forming import voronoi_assignment
from .recluster import StalenessTracker, StalenessTrigger

__all__ = [
    "HandoffMove",
    "FieldReformPlan",
    "FieldStalenessTracker",
    "quantization_head_step",
    "plan_field_reform",
    "serving_staleness",
]


@dataclass(frozen=True)
class HandoffMove:
    """One planned cross-cluster sensor handoff (global ids throughout)."""

    sensor: int
    src: int  # head currently serving the sensor
    dst: int  # nearest live head at plan time
    gain_m: float  # distance improvement the move buys (src_d - dst_d)


@dataclass(frozen=True)
class FieldReformPlan:
    """Outcome of one field-level planning pass."""

    reason: str  # why the trigger fired ("membership" | "periodic" | ...)
    staleness: float  # serving staleness at plan time (fraction misassigned)
    moves: tuple[HandoffMove, ...]  # the bounded batch to execute
    deferred: tuple[HandoffMove, ...]  # misassignments beyond the budget
    head_positions: np.ndarray  # (k, 2) placements after the Lloyd step

    @property
    def n_moves(self) -> int:
        return len(self.moves)


@dataclass
class FieldStalenessTracker:
    """The :class:`StalenessTrigger` machinery reused at field scope.

    The per-cluster tracker counts joins/leaves between re-forms; at field
    scope the analogous quantity is the number of sensors whose nearest
    live head differs from the head serving them — a "pending membership
    change" the deploy-time forming never applied.  ``observe_boundary``
    loads that count into the tracker and asks :meth:`StalenessTracker.due`
    for a verdict, so the thresholds (``membership_delta``,
    ``period_cycles``) keep their exact per-cluster semantics; the repair/
    overload conditions have no field-scope feeder and simply never fire
    unless the caller notes them explicitly.
    """

    trigger: StalenessTrigger = field(
        default_factory=lambda: StalenessTrigger(membership_delta=3)
    )
    tracker: StalenessTracker = field(init=False)

    def __post_init__(self) -> None:
        self.tracker = StalenessTracker(trigger=self.trigger)

    def observe_boundary(self, misassigned: int) -> str | None:
        """Feed one duty-cycle boundary; returns the firing reason or None.

        *misassigned* replaces (not accumulates into) the pending membership
        delta: the field either is or is not out of shape right now, and a
        sensor that drifts out and back between boundaries owes no re-form.
        """
        self.tracker.note_cycle()
        self.tracker.joins_pending = int(misassigned)
        self.tracker.leaves_pending = 0
        return self.tracker.due()

    def fired(self) -> None:
        """A re-form executed: reset the counters, count the re-form."""
        self.tracker.reset()

    @property
    def reforms(self) -> int:
        return self.tracker.reforms


def serving_staleness(
    sensor_positions: np.ndarray,
    head_positions: np.ndarray,
    serving: np.ndarray,
    live_heads: list[int] | None = None,
) -> float:
    """Fraction of sensors whose nearest *live* head differs from the head
    currently serving them.

    The field-scope twin of :func:`~repro.topology.recluster.
    assignment_staleness`, except measured against the *current serving*
    assignment (which handoffs update) rather than the deploy-time one, and
    restricted to surviving heads — a sensor cannot be less stale by
    preferring a crashed head.
    """
    serving = np.asarray(serving)
    if serving.size == 0:
        return 0.0
    heads = np.asarray(head_positions, dtype=np.float64)
    if live_heads is None:
        live_heads = list(range(heads.shape[0]))
    if not live_heads:
        return 0.0
    live = np.asarray(sorted(live_heads), dtype=np.int64)
    fresh = live[voronoi_assignment(sensor_positions, heads[live])]
    return float(np.mean(fresh != serving))


def quantization_head_step(
    sensor_positions: np.ndarray,
    head_positions: np.ndarray,
    live_heads: list[int],
    max_step_m: float,
) -> np.ndarray:
    """One bounded Lloyd iteration over live geometry (Karimi-Bidhendi).

    Each live head moves toward the centroid of its current Voronoi cell
    (computed over live heads only), clipped to ``max_step_m`` of physical
    displacement — heads are real relocatable nodes, not free codebook
    points, so one boundary buys one bounded step of the quantization
    descent rather than the converged placement.  Dead heads and heads with
    empty cells stay put.  Returns a new ``(k, 2)`` array; the input is
    never mutated.
    """
    heads = np.asarray(head_positions, dtype=np.float64).copy()
    if max_step_m <= 0.0 or not live_heads:
        return heads
    sensors = np.asarray(sensor_positions, dtype=np.float64)
    live = sorted(live_heads)
    cells = voronoi_assignment(sensors, heads[np.asarray(live, dtype=np.int64)])
    for slot, h in enumerate(live):
        members = sensors[cells == slot]
        if members.shape[0] == 0:
            continue
        delta = members.mean(axis=0) - heads[h]
        norm = float(np.hypot(delta[0], delta[1]))
        if norm > max_step_m:
            delta = delta * (max_step_m / norm)
        heads[h] = heads[h] + delta
    return heads


def plan_field_reform(
    sensor_positions: np.ndarray,
    head_positions: np.ndarray,
    serving: np.ndarray,
    reason: str,
    live_heads: list[int],
    max_moves: int = 8,
    head_step_m: float = 0.0,
    frozen_sensors: set[int] | None = None,
) -> FieldReformPlan:
    """Re-run Voronoi forming over live positions; emit a bounded move set.

    *serving* maps each global sensor to the head currently serving it.
    *frozen_sensors* never move (the coordinator freezes blacklisted /
    departed / absent sensors — a dead radio cannot retune — and sensors of
    busy or dead source heads).  ``head_step_m > 0`` folds in one
    quantization placement step before the assignment, so placement and
    partition descend together as in the two-tier quantization scheme.

    Moves are ranked by geometric gain (current serving distance minus
    distance to the new head), and only the top ``max_moves`` make the
    batch — a bounded handoff burst keeps the boundary's control work and
    roster announcements small.  The remainder is returned as ``deferred``;
    the field stays misassigned, the tracker sees that again next boundary,
    and the backlog drains a batch per cycle.
    """
    sensors = np.asarray(sensor_positions, dtype=np.float64)
    serving = np.asarray(serving, dtype=np.int64)
    frozen = frozen_sensors or set()
    live = sorted(live_heads)
    heads = quantization_head_step(sensors, head_positions, live, head_step_m)
    staleness = serving_staleness(sensors, heads, serving, live)
    if not live:
        return FieldReformPlan(
            reason=reason,
            staleness=staleness,
            moves=(),
            deferred=(),
            head_positions=heads,
        )
    live_arr = np.asarray(live, dtype=np.int64)
    fresh = live_arr[voronoi_assignment(sensors, heads[live_arr])]
    candidates: list[HandoffMove] = []
    for g in range(sensors.shape[0]):
        src, dst = int(serving[g]), int(fresh[g])
        if src == dst or g in frozen:
            continue
        if src not in live:
            # Orphans of a dead head belong to the failover adoption path
            # (HeadFailoverCoordinator), not to a live-to-live handoff —
            # two mechanisms moving the same sensor is how dual membership
            # happens.
            continue
        src_d = float(np.hypot(*(sensors[g] - heads[src])))
        dst_d = float(np.hypot(*(sensors[g] - heads[dst])))
        candidates.append(
            HandoffMove(sensor=g, src=src, dst=dst, gain_m=src_d - dst_d)
        )
    # Largest gain first; sensor id breaks ties so the plan is deterministic.
    candidates.sort(key=lambda m: (-m.gain_m, m.sensor))
    bound = max(0, int(max_moves))
    return FieldReformPlan(
        reason=reason,
        staleness=staleness,
        moves=tuple(candidates[:bound]),
        deferred=tuple(candidates[bound:]),
        head_positions=heads,
    )
