"""TSRF: the "Two-level Star with Relaying only in the First level" gadget.

A TSRF (paper Sec. III-C.1, Fig. 4a) is a tree rooted at the cluster head
with *k* branches; branch *i* consists of a first-level sensor ``s_i``
(heard by the head) and a second-level sensor ``s'_i`` heard only by
``s_i``.  Each second-level sensor has exactly one packet; first-level
sensors have none.  The relaying path for branch *i*'s packet is
``s'_i -> s_i -> t``.

This module builds the cluster structure; the NP-hardness reduction logic
(arbitrary interference patterns from a graph, Hamiltonian-path
equivalence) lives in :mod:`repro.hardness.tsrfp`.

Node numbering convention: first-level sensor of branch *i* is node ``i``;
second-level sensor of branch *i* is node ``k + i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import HEAD, Cluster

__all__ = ["Tsrf", "build_tsrf"]


@dataclass(frozen=True)
class Tsrf:
    """A TSRF instance: the cluster plus branch-index helpers."""

    cluster: Cluster
    n_branches: int

    def first_level(self, branch: int) -> int:
        """Node id of ``s_branch`` (the relay)."""
        self._check(branch)
        return branch

    def second_level(self, branch: int) -> int:
        """Node id of ``s'_branch`` (the packet source)."""
        self._check(branch)
        return self.n_branches + branch

    def branch_of(self, node: int) -> int:
        """Which branch a node belongs to."""
        if node == HEAD:
            raise ValueError("the head belongs to no branch")
        if not 0 <= node < 2 * self.n_branches:
            raise ValueError(f"node {node} out of range")
        return node % self.n_branches

    def relaying_path(self, branch: int) -> tuple[int, ...]:
        """The forced path ``(s'_i, s_i, HEAD)`` for branch *i*'s packet."""
        self._check(branch)
        return (self.second_level(branch), self.first_level(branch), HEAD)

    def _check(self, branch: int) -> None:
        if not 0 <= branch < self.n_branches:
            raise ValueError(
                f"branch {branch} out of range (TSRF has {self.n_branches})"
            )


def build_tsrf(n_branches: int) -> Tsrf:
    """Construct a TSRF cluster with *n_branches* branches.

    Second-level sensors carry one packet each; first-level sensors carry
    none (matching the gadget in the NP-completeness proof of Lemma 1).
    """
    if n_branches < 1:
        raise ValueError(f"TSRF needs at least one branch, got {n_branches}")
    k = n_branches
    n = 2 * k
    hears = np.zeros((n, n), dtype=bool)
    for i in range(k):
        # s_i and s'_i hear each other; no other sensor links exist.
        hears[i, k + i] = True
        hears[k + i, i] = True
    head_hears = np.zeros(n, dtype=bool)
    head_hears[:k] = True
    packets = np.zeros(n, dtype=np.int64)
    packets[k:] = 1
    cluster = Cluster(hears=hears, head_hears=head_hears, packets=packets)
    return Tsrf(cluster=cluster, n_branches=k)
