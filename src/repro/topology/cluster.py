"""The cluster abstraction: one head plus its basic sensors.

Node identifiers
----------------
Sensors are integers ``0..n-1``; the cluster head is the sentinel
:data:`HEAD` (= -1).  Every layer above (routing, scheduling, MAC) uses these
identifiers.

Connectivity is *directional* and *arbitrary* — the paper explicitly refuses
to assume disc-shaped coverage (Sec. III-B), so a :class:`Cluster` stores an
explicit boolean hearing matrix.  Geometric deployments produce symmetric
matrices; gadget constructions and probing-discovered clusters need not.

The head is special (Sec. I): its broadcasts reach every sensor in the
cluster, so only the *uplink* direction (which sensors the head can hear) is
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .deployment import Deployment

__all__ = ["HEAD", "Cluster", "node_name"]

HEAD: int = -1
"""Sentinel node id for the cluster head."""


def node_name(node: int) -> str:
    """Human-readable node label used in schedules and error messages."""
    return "t" if node == HEAD else f"s{node}"


@dataclass
class Cluster:
    """A cluster: hearing relationships, per-sensor packet counts and energy.

    Parameters
    ----------
    hears:
        ``(n, n)`` boolean; ``hears[i, j]`` is True when sensor *i* can
        correctly receive transmissions from sensor *j*.  The diagonal must
        be False.
    head_hears:
        ``(n,)`` boolean; which sensors the head receives directly
        ("level-1" / "first-level" sensors).
    packets:
        ``(n,)`` non-negative ints; packets each sensor must deliver this
        duty cycle.  Defaults to one each (the X1MHP case).
    energy:
        ``(n,)`` positive floats; relative residual energy levels used by
        the energy-aware routing variant.  Defaults to all-equal.
    positions / head_position:
        optional geometry carried along for PHY-backed simulations.
    """

    hears: np.ndarray
    head_hears: np.ndarray
    packets: np.ndarray = field(default=None)  # type: ignore[assignment]
    energy: np.ndarray = field(default=None)  # type: ignore[assignment]
    positions: np.ndarray | None = None
    head_position: np.ndarray | None = None

    # ``hears`` / ``head_hears`` are treated as immutable once the cluster is
    # constructed (topology changes go through copies, e.g. ``prune_dead_nodes``),
    # which lets connectivity queries be computed once and cached.  ``packets``
    # and ``energy`` may be rewritten in place; nothing below depends on them.

    def __post_init__(self) -> None:
        self.hears = np.asarray(self.hears, dtype=bool)
        self.head_hears = np.asarray(self.head_hears, dtype=bool)
        n = self.hears.shape[0]
        if self.hears.shape != (n, n):
            raise ValueError(f"hears must be square, got {self.hears.shape}")
        if self.head_hears.shape != (n,):
            raise ValueError(
                f"head_hears must have shape ({n},), got {self.head_hears.shape}"
            )
        if np.diagonal(self.hears).any():
            raise ValueError("a sensor cannot hear itself (diagonal must be False)")
        if self.packets is None:
            self.packets = np.ones(n, dtype=np.int64)
        else:
            self.packets = np.asarray(self.packets, dtype=np.int64)
            if self.packets.shape != (n,):
                raise ValueError(f"packets must have shape ({n},)")
            if (self.packets < 0).any():
                raise ValueError("packet counts must be non-negative")
        if self.energy is None:
            self.energy = np.ones(n, dtype=np.float64)
        else:
            self.energy = np.asarray(self.energy, dtype=np.float64)
            if self.energy.shape != (n,):
                raise ValueError(f"energy must have shape ({n},)")
            if (self.energy <= 0).any():
                raise ValueError("energy levels must be positive")
        # Lazy caches over the (immutable) hearing topology.
        self._hops_cache: np.ndarray | None = None
        self._connected_cache: bool | None = None
        self._neighbors_cache: dict[int, list[int]] = {}

    # -- basic queries --------------------------------------------------------

    @property
    def n_sensors(self) -> int:
        return int(self.hears.shape[0])

    @property
    def total_packets(self) -> int:
        return int(self.packets.sum())

    def can_hear(self, receiver: int, sender: int) -> bool:
        """Can *receiver* decode transmissions from *sender*?

        The head hears exactly the ``head_hears`` sensors; every sensor hears
        the head (the head's transmission power covers the cluster).
        """
        if sender == receiver:
            return False
        if receiver == HEAD:
            return bool(self.head_hears[sender])
        if sender == HEAD:
            return True
        return bool(self.hears[receiver, sender])

    def neighbors_of(self, sensor: int) -> list[int]:
        """Nodes that can hear *sensor* (possible next hops), head included.

        Cached per sensor (topology is immutable); treat as read-only.
        """
        cached = self._neighbors_cache.get(sensor)
        if cached is not None:
            return cached
        out: list[int] = [int(x) for x in np.flatnonzero(self.hears[:, sensor])]
        if self.head_hears[sensor]:
            out.append(HEAD)
        self._neighbors_cache[sensor] = out
        return out

    def first_level_sensors(self) -> list[int]:
        """Sensors the head hears directly (hop count 1 candidates)."""
        return [int(i) for i in np.flatnonzero(self.head_hears)]

    def is_connected(self) -> bool:
        """Does every sensor have some multi-hop path to the head?  Cached."""
        if self._connected_cache is None:
            self._connected_cache = bool(
                np.isfinite(self.min_hop_counts()).all()
            ) if self.n_sensors else True
        return self._connected_cache

    def min_hop_counts(self) -> np.ndarray:
        """BFS hop count of each sensor to the head (np.inf if unreachable).

        Computed once and cached; the returned array is marked read-only.
        """
        if self._hops_cache is not None:
            return self._hops_cache
        n = self.n_sensors
        hops = np.full(n, np.inf)
        frontier = self.head_hears.copy()
        hops[frontier] = 1
        level = 1
        while frontier.any():
            level += 1
            # next: unvisited sensors j such that some frontier sensor hears j.
            audible = self.hears[frontier, :].any(axis=0)
            newly = audible & np.isinf(hops)
            hops[newly] = level
            frontier = newly
        hops.flags.writeable = False
        self._hops_cache = hops
        return hops

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_deployment(
        cls,
        dep: Deployment,
        packets: np.ndarray | None = None,
        energy: np.ndarray | None = None,
    ) -> "Cluster":
        """Build a cluster from a geometric deployment (symmetric hearing)."""
        return cls(
            hears=dep.sensor_adjacency(),
            head_hears=dep.head_reachable(),
            packets=packets,
            energy=energy,
            positions=dep.positions.copy(),
            head_position=dep.head_position.copy(),
        )

    @classmethod
    def from_edges(
        cls,
        n_sensors: int,
        sensor_edges: list[tuple[int, int]],
        head_links: list[int],
        packets: np.ndarray | list[int] | None = None,
        symmetric: bool = True,
    ) -> "Cluster":
        """Build a cluster from explicit edges.

        ``sensor_edges`` lists ``(a, b)`` meaning *a hears b* (and *b hears a*
        when ``symmetric``); ``head_links`` lists sensors the head hears.
        """
        hears = np.zeros((n_sensors, n_sensors), dtype=bool)
        for a, b in sensor_edges:
            if not (0 <= a < n_sensors and 0 <= b < n_sensors):
                raise ValueError(f"edge ({a},{b}) out of range for n={n_sensors}")
            if a == b:
                raise ValueError(f"self-loop ({a},{b}) not allowed")
            hears[a, b] = True
            if symmetric:
                hears[b, a] = True
        head_hears = np.zeros(n_sensors, dtype=bool)
        for s in head_links:
            if not 0 <= s < n_sensors:
                raise ValueError(f"head link {s} out of range for n={n_sensors}")
            head_hears[s] = True
        pk = None if packets is None else np.asarray(packets, dtype=np.int64)
        return cls(hears=hears, head_hears=head_hears, packets=pk)

    def with_packets(self, packets: np.ndarray | list[int]) -> "Cluster":
        """A copy of this cluster with different per-sensor packet counts."""
        return Cluster(
            hears=self.hears.copy(),
            head_hears=self.head_hears.copy(),
            packets=np.asarray(packets, dtype=np.int64),
            energy=self.energy.copy(),
            positions=None if self.positions is None else self.positions.copy(),
            head_position=None
            if self.head_position is None
            else self.head_position.copy(),
        )
