"""Deployments, clusters and the TSRF gadget."""

from .cluster import HEAD, Cluster, node_name
from .deployment import (
    DEFAULT_RANGE_M,
    DEFAULT_SIDE_M,
    Deployment,
    grid,
    line,
    uniform_square,
)
from .forming import (
    DiscoveryResult,
    FormedNetwork,
    bfs_discover,
    cluster_adjacency,
    form_clusters,
    voronoi_assignment,
)
from .recluster import (
    ReformResult,
    StalenessTracker,
    StalenessTrigger,
    assignment_staleness,
    discovered_cluster,
    reform_cluster,
)
from .handoff import (
    FieldReformPlan,
    FieldStalenessTracker,
    HandoffMove,
    plan_field_reform,
    quantization_head_step,
    serving_staleness,
)
from .geometry import (
    as_positions,
    distances_to_point,
    nearest_index,
    pairwise_distances,
    within_range_adjacency,
)
from .tsrf import Tsrf, build_tsrf

__all__ = [
    "HEAD",
    "Cluster",
    "node_name",
    "Deployment",
    "uniform_square",
    "grid",
    "line",
    "DEFAULT_SIDE_M",
    "DEFAULT_RANGE_M",
    "Tsrf",
    "build_tsrf",
    "voronoi_assignment",
    "bfs_discover",
    "DiscoveryResult",
    "form_clusters",
    "FormedNetwork",
    "cluster_adjacency",
    "StalenessTrigger",
    "StalenessTracker",
    "ReformResult",
    "discovered_cluster",
    "reform_cluster",
    "assignment_staleness",
    "HandoffMove",
    "FieldReformPlan",
    "FieldStalenessTracker",
    "plan_field_reform",
    "quantization_head_step",
    "serving_staleness",
    "as_positions",
    "pairwise_distances",
    "distances_to_point",
    "within_range_adjacency",
    "nearest_index",
]
