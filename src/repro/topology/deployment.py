"""Sensor deployments matching the paper's Sec. VI setup.

The evaluation deploys sensors "uniformly within a two-dimensional square"
with "the cluster head placed at the center of the square".  We reproduce
that, plus grid and ring deployments used by tests and ablations, with the
guarantee that the deployed cluster is *connected* (every sensor can reach
the head over some multi-hop path) — disconnected draws are resampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..sim.rng import RngStreams
from .geometry import as_positions, within_range_adjacency

__all__ = [
    "Deployment",
    "uniform_square",
    "grid",
    "line",
    "DEFAULT_SIDE_M",
    "DEFAULT_RANGE_M",
]

# Defaults chosen to mirror the paper's scale: a square around 200 m per side
# with a sensor communication range of 55 m gives clusters 1-4 hops deep, so
# the multi-hop machinery is genuinely exercised.  (The paper's exact figures
# are garbled in the available text; only the *ratio* side/range matters for
# hop depth.)
DEFAULT_SIDE_M: float = 200.0
DEFAULT_RANGE_M: float = 55.0


@dataclass(frozen=True)
class Deployment:
    """A deployed cluster: head position, sensor positions, comm range.

    ``positions`` holds the *sensor* coordinates only; the head sits at
    ``head_position``.  Sensor indices are 0..n-1 everywhere downstream.
    """

    head_position: np.ndarray
    positions: np.ndarray
    comm_range: float
    side: float

    @property
    def n_sensors(self) -> int:
        return int(self.positions.shape[0])

    # The O(n^2) pairwise-distance products are computed once per deployment
    # (cached_property stores into __dict__, which frozen dataclasses allow);
    # the arrays are shared with every caller, so treat them as read-only —
    # Cluster documents the same immutability contract for its hearing state.

    @cached_property
    def _sensor_adjacency(self) -> np.ndarray:
        adj = within_range_adjacency(self.positions, self.comm_range)
        adj.flags.writeable = False
        return adj

    @cached_property
    def _head_reachable(self) -> np.ndarray:
        diff = self.positions - self.head_position
        dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        reach = dist <= self.comm_range
        reach.flags.writeable = False
        return reach

    def sensor_adjacency(self) -> np.ndarray:
        """Boolean sensor-to-sensor hearing matrix (symmetric, no self-loops).

        Cached; the returned array is read-only.
        """
        return self._sensor_adjacency

    def head_reachable(self) -> np.ndarray:
        """Boolean vector: which sensors the head can *hear directly*.

        The head's own broadcasts reach everyone (its transmission power is
        large, Sec. I); this is the reverse direction, i.e. level-1 sensors.
        Cached; the returned array is read-only.
        """
        return self._head_reachable

    def with_positions(self, positions: np.ndarray) -> "Deployment":
        """A copy of this deployment with different sensor positions.

        Mirrors :meth:`Cluster.with_packets`: the adjacency caches
        (``_sensor_adjacency`` / ``_head_reachable``) have no invalidation
        path — they are computed once per instance — so position changes
        (mobility steps, joiner admission) must go through a fresh instance
        rather than mutate ``positions`` in place and silently serve stale
        adjacency.  The sensor count may change (joins extend it).
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(
                f"positions must be an (n, 2) array, got shape {positions.shape}"
            )
        return Deployment(
            head_position=self.head_position.copy(),
            positions=positions.copy(),
            comm_range=self.comm_range,
            side=self.side,
        )

    def is_connected(self) -> bool:
        """Can every sensor reach the head over sensor-to-sensor hops?"""
        n = self.n_sensors
        if n == 0:
            return True
        adj = self.sensor_adjacency()
        reached = self.head_reachable().copy()
        if not reached.any():
            return False
        frontier = reached.copy()
        while frontier.any():
            # All sensors that can hear any frontier sensor join the reached set.
            newly = adj[frontier].any(axis=0) & ~reached
            reached |= newly
            frontier = newly
        return bool(reached.all())


def uniform_square(
    n_sensors: int,
    seed: int = 0,
    side: float = DEFAULT_SIDE_M,
    comm_range: float = DEFAULT_RANGE_M,
    max_attempts: int = 200,
) -> Deployment:
    """Uniform random deployment in a ``side x side`` square, head at center.

    Resamples until the cluster is connected (all sensors can reach the head
    multi-hop); raises after *max_attempts* failures so parameter mistakes
    (range too small for the density) fail loudly instead of looping forever.
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    rng = RngStreams(seed).get("deployment")
    head = np.array([side / 2.0, side / 2.0])
    for _ in range(max_attempts):
        pts = rng.uniform(0.0, side, size=(n_sensors, 2))
        dep = Deployment(head_position=head, positions=pts, comm_range=comm_range, side=side)
        if dep.is_connected():
            return dep
    raise RuntimeError(
        f"could not draw a connected deployment of {n_sensors} sensors in "
        f"{side}x{side} m with range {comm_range} m after {max_attempts} attempts"
    )


def grid(
    rows: int,
    cols: int,
    spacing: float,
    comm_range: float | None = None,
) -> Deployment:
    """Regular grid deployment, head at the grid centroid.

    Default range is 1.5x the spacing, connecting 4- and diagonal neighbours.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least one row and one column")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    xs, ys = np.meshgrid(np.arange(cols) * spacing, np.arange(rows) * spacing)
    pts = np.column_stack([xs.ravel(), ys.ravel()]).astype(np.float64)
    head = pts.mean(axis=0)
    rng_m = comm_range if comm_range is not None else spacing * 1.5
    side = max(rows, cols) * spacing
    return Deployment(head_position=head, positions=pts, comm_range=rng_m, side=side)


def line(
    n_sensors: int,
    spacing: float,
    comm_range: float | None = None,
) -> Deployment:
    """A chain: head at the origin, sensors at spacing, 2*spacing, ...

    The deepest-possible topology for a given sensor count (hop count i for
    sensor i), generalizing the paper's Fig. 2 example; the default range
    (1.05x spacing) connects consecutive sensors only.
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    xs = spacing * np.arange(1, n_sensors + 1, dtype=np.float64)
    pts = np.column_stack([xs, np.zeros(n_sensors)])
    head = np.array([0.0, 0.0])
    rng_m = float(comm_range) if comm_range is not None else spacing * 1.05
    return Deployment(
        head_position=head,
        positions=as_positions(pts),
        comm_range=rng_m,
        side=spacing * (n_sensors + 1),
    )
