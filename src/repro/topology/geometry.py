"""Vectorized planar geometry helpers.

Positions throughout the library are ``(n, 2)`` float arrays in meters.
These helpers centralize the distance computations that the propagation,
deployment, and cluster-forming code all need, vectorized with numpy per the
hpc-parallel guides (no per-pair Python loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_positions",
    "pairwise_distances",
    "distances_to_point",
    "within_range_adjacency",
    "nearest_index",
]


def as_positions(points) -> np.ndarray:
    """Coerce input to a C-contiguous ``(n, 2)`` float64 array, validating shape."""
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1 and arr.shape[0] == 2:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {arr.shape}")
    return arr


def pairwise_distances(positions) -> np.ndarray:
    """Full symmetric Euclidean distance matrix, shape ``(n, n)``."""
    pos = as_positions(positions)
    diff = pos[:, np.newaxis, :] - pos[np.newaxis, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_to_point(positions, point) -> np.ndarray:
    """Distances from each position to a single *point*, shape ``(n,)``."""
    pos = as_positions(positions)
    pt = np.asarray(point, dtype=np.float64).reshape(2)
    diff = pos - pt
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def within_range_adjacency(positions, comm_range: float) -> np.ndarray:
    """Boolean adjacency: ``adj[i, j]`` iff ``0 < dist(i, j) <= comm_range``."""
    if comm_range <= 0:
        raise ValueError(f"communication range must be positive, got {comm_range}")
    dist = pairwise_distances(positions)
    adj = dist <= comm_range
    np.fill_diagonal(adj, False)
    return adj


def nearest_index(positions, point) -> int:
    """Index of the position closest to *point*."""
    return int(np.argmin(distances_to_point(positions, point)))
