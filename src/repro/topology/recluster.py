"""Online re-clustering: when and how a head re-forms its cluster (§11).

The paper computes cluster membership and routing once, at forming time
(Sec. V-A/V-B), and assumes the graph never changes.  Under churn and
mobility that plan goes *stale*: joiners sit unserved, movers drag their
links away from the routes planned over them, and repeated repair fallbacks
signal that the static structure no longer matches the field.  Related work
(quantization-based two-tier deployment, optimal-cluster-count analysis)
treats membership as a quantity to re-optimize online; this module supplies
the decision side of that loop for the polling MAC:

* :class:`StalenessTrigger` — the declarative thresholds (membership delta,
  repair fallbacks, load overload, optional fixed period);
* :class:`StalenessTracker` — the per-head counters the MAC feeds between
  re-forms, with :meth:`StalenessTracker.due` deciding at each duty-cycle
  boundary whether a re-form fires and why;
* :func:`discovered_cluster` — fresh connectivity discovery from the live
  medium (Sec. V-B against *current* positions);
* :func:`reform_cluster` — the actual pass: re-discover, then migrate
  demand incrementally through :func:`~repro.routing.repair.repair_routing`
  (never a cold re-solve of a hand-built topology), carrying exclusions
  (blacklist, departures, pre-join absentees) across the re-form.

Everything here is pure computation over snapshots — the MAC decides when
to call it (duty-cycle boundaries only) and owns the state handoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..obs import profile_span as _profile_span
from .cluster import Cluster
from .forming import voronoi_assignment

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from ..routing.repair import RepairResult

__all__ = [
    "StalenessTrigger",
    "StalenessTracker",
    "ReformResult",
    "discovered_cluster",
    "reform_cluster",
    "assignment_staleness",
]


@dataclass(frozen=True)
class StalenessTrigger:
    """Thresholds deciding when a cluster's plan is too stale to keep.

    Any satisfied condition fires a re-form at the next duty-cycle boundary:

    * ``membership_delta`` — pending joins + announced leaves since the last
      re-form (new nodes deserve service; departures free capacity);
      ``0`` disables;
    * ``repair_fallbacks`` — boundary route repairs since the last re-form
      (each repair is a local patch; enough of them mean the global plan is
      wrong); ``0`` disables;
    * ``overload_factor`` — max relay load vs. the mean loaded relay
      (``0`` disables): sustained imbalance says the min-max solution was
      computed over a graph that no longer exists;
    * ``period_cycles`` — unconditional re-form every so many cycles (the
      "periodic" policy; ``0`` disables).
    """

    membership_delta: int = 1
    repair_fallbacks: int = 3
    overload_factor: float = 0.0
    period_cycles: int = 0

    def __post_init__(self) -> None:
        if self.membership_delta < 0:
            raise ValueError(
                f"membership_delta must be >= 0, got {self.membership_delta}"
            )
        if self.repair_fallbacks < 0:
            raise ValueError(
                f"repair_fallbacks must be >= 0, got {self.repair_fallbacks}"
            )
        if self.overload_factor < 0:
            raise ValueError(
                f"overload_factor must be >= 0, got {self.overload_factor}"
            )
        if self.period_cycles < 0:
            raise ValueError(
                f"period_cycles must be >= 0, got {self.period_cycles}"
            )


@dataclass
class StalenessTracker:
    """Counters one head feeds between re-forms; ``due()`` is the decision.

    The MAC calls ``note_*`` as events arrive and ``due(...)`` once per
    duty-cycle boundary; a fired re-form calls ``reset()``.  Plain counters,
    no RNG, no simulator access — adding a tracker to a run perturbs
    nothing.
    """

    trigger: StalenessTrigger = field(default_factory=StalenessTrigger)
    joins_pending: int = 0
    leaves_pending: int = 0
    repairs_pending: int = 0
    cycles_since_reform: int = 0
    reforms: int = 0

    def note_join(self, node: int) -> None:
        self.joins_pending += 1

    def note_leave(self, node: int) -> None:
        self.leaves_pending += 1

    def note_repair(self) -> None:
        self.repairs_pending += 1

    def note_cycle(self) -> None:
        self.cycles_since_reform += 1

    def due(self, loads: np.ndarray | None = None) -> str | None:
        """Why a re-form should fire now, or ``None`` to keep the plan.

        *loads* is the current routing solution's per-relay load vector
        (only consulted when the overload condition is armed).
        """
        t = self.trigger
        if (
            t.membership_delta > 0
            and self.joins_pending + self.leaves_pending >= t.membership_delta
        ):
            return "membership"
        if t.repair_fallbacks > 0 and self.repairs_pending >= t.repair_fallbacks:
            return "repairs"
        if t.overload_factor > 0 and loads is not None:
            loads = np.asarray(loads, dtype=float)
            loaded = loads[loads > 0]
            if loaded.size and float(loaded.max()) >= t.overload_factor * float(
                loaded.mean()
            ):
                return "overload"
        if t.period_cycles > 0 and self.cycles_since_reform >= t.period_cycles:
            return "periodic"
        return None

    def reset(self) -> None:
        self.joins_pending = 0
        self.leaves_pending = 0
        self.repairs_pending = 0
        self.cycles_since_reform = 0
        self.reforms += 1


def discovered_cluster(phy) -> Cluster:
    """Re-discover one cluster's topology from the live medium (Sec. V-B).

    Connectivity comes from the medium's *current* receive powers (so moved
    nodes contribute their moved links) and positions are copied back from
    the medium — the head learns where its members are now, not where the
    deployment put them.  Packet demand and residual energy are carried over
    from the PHY's current cluster (discovery changes the graph, not the
    workload).  Works for both the single-cluster layout and shared-medium
    operation through ``index_map``.
    """
    medium = phy.medium
    n = phy.n_sensors
    hearing = medium.hearing_matrix()
    if phy.index_map is not None:
        idx = np.asarray(phy.index_map)
        hearing = hearing[np.ix_(idx, idx)]
        positions = medium.positions[idx[:n]].copy()
        head_position = medium.positions[idx[n]].copy()
    else:
        positions = medium.positions[:n].copy()
        head_position = medium.positions[n].copy()
    return Cluster(
        hears=hearing[:n, :n],
        head_hears=hearing[n, :n],
        packets=phy.cluster.packets.copy(),
        energy=phy.cluster.energy.copy(),
        positions=positions,
        head_position=head_position,
    )


@dataclass
class ReformResult:
    """Outcome of one re-form pass."""

    cluster: Cluster  # freshly discovered topology (nothing pruned yet)
    repair: "RepairResult"  # incremental demand migration over it
    admitted: frozenset[int]  # joiners newly planned into routing
    excluded: frozenset[int]  # blacklist + departures + pre-join absentees

    @property
    def routing(self):
        return self.repair.solution


def reform_cluster(
    phy,
    excluded: set[int],
    admitted: set[int] = frozenset(),
) -> ReformResult:
    """One re-form: re-discover connectivity, migrate demand incrementally.

    *excluded* nodes (the head's blacklist, announced departures, sensors
    not yet joined) are pruned exactly as a route repair prunes the dead —
    the migration *is* a :func:`~repro.routing.repair.repair_routing` call
    over the re-discovered graph, so partial coverage, dropped-demand
    accounting and the warm-start solve all behave identically to the
    failure path.  *admitted* is bookkeeping for the caller (joiners being
    planned for the first time); admission needs no special mechanics
    because discovery already sees their radios.
    """
    # Imported here, not at module scope: repro.routing.repair itself imports
    # repro.topology, and this module is pulled in by the package __init__.
    from ..routing.repair import repair_routing

    with _profile_span(
        "topology.recluster",
        histogram="recluster.reform_wall_s",
        excluded=len(excluded),
        admitted=len(admitted),
    ):
        fresh = discovered_cluster(phy)
        base = fresh.with_packets(np.maximum(fresh.packets, 1))
        repair = repair_routing(base, set(excluded))
        return ReformResult(
            cluster=fresh,
            repair=repair,
            admitted=frozenset(admitted),
            excluded=frozenset(excluded),
        )


def assignment_staleness(
    sensor_positions: np.ndarray,
    head_positions: np.ndarray,
    assignment: np.ndarray,
) -> float:
    """Fraction of sensors whose nearest head differs from *assignment*.

    The network-level staleness gauge: a Voronoi forming computed at deploy
    time drifts out of date as sensors move; this measures how far.  ``0``
    means the forming is still optimal, ``1`` means every sensor would pick
    a different head today.
    """
    assignment = np.asarray(assignment)
    if assignment.size == 0:
        return 0.0
    fresh = voronoi_assignment(sensor_positions, head_positions)
    return float(np.mean(fresh != assignment))
