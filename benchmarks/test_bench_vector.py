"""Benchmarks for the vectorized slot engine + solver warm-start (DESIGN.md §12).

``BENCH_vector.json`` couples the two sweep timings CI's ``perf-vector``
job compares: the shipped configuration (vector engine + cross-trial
solver cache) against the pre-engine path (scalar oracle, cold solves).
``check_vector_speedup.py`` asserts the scalar/vector median ratio stays
above the gate; ``compare_benchmarks.py`` additionally holds both absolute
numbers inside the 30% regression window.

The workload is the fig. 4-scale sweep (one seeded 60-sensor deployment
over the offered-load grid).  Both engines must produce identical physics
— the rows' delivered counts and total energy are cross-checked here, so
the timing comparison can never silently drift onto diverging simulations.
"""

from repro.experiments import fig4_sweep

ROUNDS = 3


def _check(rows, engine):
    assert [r["engine"] for r in rows] == [engine] * len(fig4_sweep.DEFAULT_RATES)
    assert all(r["delivered"] > 0 for r in rows)
    assert all(r["delivery_ratio"] == 1.0 for r in rows)
    return {
        "delivered": tuple(r["delivered"] for r in rows),
        "energy": tuple(r["energy_j"] for r in rows),
    }


def test_bench_fig4_sweep_vector(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_sweep.run(engine="vector", reuse_solver=True),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    physics = _check(rows, "vector")
    # Static sweep: every slot must take the batch path (fallbacks are
    # deterministic, so any nonzero count is a real eligibility regression).
    assert all(r["scalar_slots"] == 0 for r in rows)
    # Grid points 2..n reuse the first solve.
    assert rows[-1]["solver_hits"] == len(rows) - 1
    test_bench_fig4_sweep_vector.physics = physics


def test_bench_fig4_sweep_scalar(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_sweep.run(engine="scalar", reuse_solver=False),
        rounds=ROUNDS,
        iterations=1,
    )
    physics = _check(rows, "scalar")
    assert all(r["vector_slots"] == 0 for r in rows)
    # Engine parity on the benchmark workload itself: identical deliveries
    # and bit-identical total energy (runs in file order, vector first).
    prior = getattr(test_bench_fig4_sweep_vector, "physics", None)
    if prior is not None:
        assert physics["delivered"] == prior["delivered"]
        assert physics["energy"] == prior["energy"]
