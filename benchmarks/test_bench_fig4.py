"""Bench: Fig. 4 — TSRFP construction, exact solve, certificate round trip."""

from repro.core import solve_optimal
from repro.experiments import fig4
from repro.hardness import (
    find_hamiltonian_path,
    hamiltonian_path_from_schedule,
    is_hamiltonian_path,
    tsrfp_from_graph,
)


def test_bench_fig4_regenerates(benchmark):
    rows = benchmark(fig4.run)
    by = {r["quantity"]: r["value"] for r in rows}
    assert by["optimal schedule slots"] == by["deadline T = n+1 slots"] == 6


def test_bench_tsrfp_exact_solve(benchmark):
    adj = fig4.fig4_graph()
    inst = tsrfp_from_graph(adj)
    plan = inst.routing_plan()

    result = benchmark(lambda: solve_optimal(plan, inst.oracle))
    assert result.makespan == 6
    back = hamiltonian_path_from_schedule(inst, result.schedule)
    assert is_hamiltonian_path(adj, back)


def test_bench_hamiltonian_dp(benchmark):
    adj = fig4.fig4_graph()
    path = benchmark(lambda: find_hamiltonian_path(adj))
    assert path is not None
