"""Bench: Fig. 7(c) — lifetime ratio of sectored vs unsectored clusters."""

import pytest

from repro.experiments import fig7c
from repro.metrics import evaluate_lifetime_ratio

SIZES = (10, 25, 40)


@pytest.fixture(scope="module")
def sweep():
    return fig7c.run(sizes=SIZES, seeds=(0, 1))


def test_bench_fig7c_point(benchmark):
    res = benchmark(lambda: evaluate_lifetime_ratio(n_sensors=25, seed=0))
    assert res.lifetime_ratio > 1.0


def test_fig7c_ratio_grows_with_cluster_size(sweep):
    ratios = [r["lifetime_ratio"] for r in sweep]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0] * 1.2


def test_fig7c_sectoring_always_helps_beyond_small(sweep):
    # paper: ratio always > 1; at our smallest size it can graze 1.0
    for row in sweep:
        if row["n_sensors"] >= 20:
            assert row["lifetime_ratio"] > 1.1


def test_fig7c_band_matches_paper(sweep):
    """Paper band: ~1.55 (n=10) to ~2.05 (n=50); ours lands in the same
    regime (EXPERIMENTS.md discusses the constant-dependent offset)."""
    by_n = {r["n_sensors"]: r["lifetime_ratio"] for r in sweep}
    assert 0.9 <= by_n[10] <= 2.2
    assert 1.3 <= by_n[40] <= 3.2
