"""Bench: the Fig. 2 worked example (3 slots sequential vs 2 multi-hop)."""

from repro.experiments import fig2


def test_bench_fig2_regenerates(benchmark):
    rows = benchmark(fig2.run)
    by = {r["schedule"]: r["slots"] for r in rows}
    assert by["one sensor at a time"] == 3
    assert by["greedy multi-hop polling"] == 2
    assert by["optimal"] == 2
