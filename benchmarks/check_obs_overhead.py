"""Enforce the telemetry overhead budget from a BENCH_obs_overhead.json.

Usage (what the CI obs-overhead job runs)::

    python benchmarks/check_obs_overhead.py fresh/BENCH_obs_overhead.json

Fails (exit 1) when the telemetry-on median exceeds ``--max-ratio`` (default
2.0) times the telemetry-off median of the *same* run.  Comparing on/off
within one file keeps the check host-independent: both medians move with
the machine, the ratio doesn't.  The off median's historical trend is
guarded separately by ``compare_benchmarks.py`` against the committed
baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def medians(path: pathlib.Path) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", type=pathlib.Path,
                        help="BENCH_obs_overhead.json from a fresh run")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="budget for on/off median ratio (default 2.0)")
    parser.add_argument("--off-suffix", default="test_bench_polling_telemetry_off",
                        help="fullname suffix of the instrumentation-off bench")
    parser.add_argument("--on-suffix", default="test_bench_polling_telemetry_on",
                        help="fullname suffix of the instrumentation-on bench")
    args = parser.parse_args(argv)

    by_name = medians(args.bench_json)
    off = on = None
    for name, median in by_name.items():
        if name.endswith(args.off_suffix):
            off = median
        elif name.endswith(args.on_suffix):
            on = median
    if off is None or on is None:
        print(f"missing off/on benchmarks in {args.bench_json}: {sorted(by_name)}",
              file=sys.stderr)
        return 1
    ratio = on / off if off > 0 else float("inf")
    print(f"telemetry off median: {off * 1e3:.3f} ms")
    print(f"telemetry on  median: {on * 1e3:.3f} ms")
    print(f"overhead ratio: {ratio:.2f}x (budget {args.max_ratio:.2f}x)")
    if ratio > args.max_ratio:
        print(f"telemetry overhead {ratio:.2f}x exceeds the "
              f"{args.max_ratio:.2f}x budget", file=sys.stderr)
        return 1
    print("telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
