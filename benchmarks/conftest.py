"""Benchmark-suite configuration.

Every ``test_bench_*`` module regenerates one paper artifact (figure or
table) at a benchmark-friendly scale, asserts its qualitative shape, and
times the dominant computation with pytest-benchmark.  Full-scale sweeps
live in ``repro.experiments`` (run them via ``python -m``).
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered so cheap gadget benches run before DES sweeps.
    order = {"fig2": 0, "fig4": 1, "fig6": 2, "fig7a": 3, "fig7c": 4, "fig7b": 5}
    items.sort(key=lambda item: order.get(item.module.__name__.split("_")[-1], 9))
