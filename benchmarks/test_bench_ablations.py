"""Benches for the ablation studies (design choices the paper asserts)."""

import pytest

from repro.experiments import ablations


def test_bench_greedy_vs_optimal(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.greedy_vs_optimal(n_sensors=5, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    # Table-1 greedy stays close to optimal on small instances
    for r in rows:
        assert r["greedy_slots"] >= r["optimal_slots"]
        assert r["ratio"] <= 1.6


def test_bench_m_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.m_sensitivity(n_sensors=20, seed=0, ms=(1, 2)),
        rounds=1,
        iterations=1,
    )
    by_m = {r["M"]: r for r in rows}
    # more probed concurrency never hurts polling time...
    assert by_m[2]["polling_slots"] <= by_m[1]["polling_slots"]
    # ...but costs combinatorially more probing
    assert by_m[2]["probe_groups"] > by_m[1]["probe_groups"] * 5


def test_bench_routing_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.routing_minmax_vs_shortest(n_sensors=20, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    # min-max flow routing dominates BFS on the bottleneck load
    assert all(r["minmax_max_load"] <= r["bfs_max_load"] for r in rows)
    assert any(r["minmax_max_load"] < r["bfs_max_load"] for r in rows)


def test_bench_scan_order(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.scan_order(n_sensors=20, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 3


def test_bench_sector_rules(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.sector_rules(n_sensors=20, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    by = {r["rules"]: r["lifetime_ratio"] for r in rows}
    assert all(v > 0.8 for v in by.values())


def test_bench_delay_thm2(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.delay_vs_nodelay(n_vertices=4, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    assert all(not r["delay_helps"] for r in rows)
