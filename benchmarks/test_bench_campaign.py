"""Bench: campaign feed overhead on run_sweep (off vs on).

Two medians over the same small fig7c sweep: ``off`` is the plain
``run_sweep`` path (no campaign dir), ``on`` streams every trial event to
an fsynced JSONL feed in a scratch dir.  ``check_obs_overhead.py
--off-suffix test_bench_sweep_feed_off --on-suffix test_bench_sweep_feed_on``
holds the ratio to the 2x budget; ``compare_benchmarks.py`` separately
guards the ``off`` median against historical regression.
"""

import shutil
import tempfile

from repro.experiments.runner import Trial, run_sweep

TRIALS = [
    Trial("fig7c", {"sizes": [8], "seeds": [3]}),
    Trial("fig7c", {"sizes": [8], "seeds": [4]}),
]


def _sweep_plain():
    return run_sweep(TRIALS)


def _sweep_feed():
    root = tempfile.mkdtemp(prefix="bench-campaign-")
    try:
        return run_sweep(TRIALS, campaign_dir=root)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_bench_sweep_feed_off(benchmark):
    results = benchmark(_sweep_plain)
    assert len(results) == len(TRIALS)


def test_bench_sweep_feed_on(benchmark):
    results = benchmark(_sweep_feed)
    assert len(results) == len(TRIALS)
