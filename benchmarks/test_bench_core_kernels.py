"""Micro-benchmarks of the computational kernels (profiling guardrails).

Not paper artifacts — these watch the hot paths the experiments lean on so
a future change that regresses them is caught by the benchmark run.
"""

import time

import numpy as np

from repro.core import OnlinePollingScheduler
from repro.mac.base import geometric_oracle
from repro.routing import FlowNetwork, solve_min_max_load
from repro.topology import Cluster, uniform_square


def test_bench_maxflow_kernel(benchmark):
    rng = np.random.default_rng(0)
    n = 60
    g = FlowNetwork(n)
    for _ in range(400):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), int(rng.integers(1, 10)))

    def solve():
        g.reset_flow()
        return g.max_flow(0, n - 1)

    value = benchmark(solve)
    assert value >= 0


def test_bench_maxflow_kernel_dinic(benchmark):
    rng = np.random.default_rng(0)
    n = 60
    g = FlowNetwork(n)
    for _ in range(400):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), int(rng.integers(1, 10)))
    g2 = FlowNetwork(n)  # reference value via Edmonds-Karp on a twin
    for eid in range(0, len(g._edges), 2):
        u, v = g.edge_endpoints(eid)
        g2.add_edge(u, v, g._edges[eid].cap)
    expected = g2.max_flow(0, n - 1)

    def solve():
        g.reset_flow()
        return g.max_flow(0, n - 1, method="dinic")

    assert benchmark(solve) == expected


def test_bench_minmax_routing(benchmark):
    dep = uniform_square(40, seed=0)
    cluster = Cluster.from_deployment(dep)
    sol = benchmark(lambda: solve_min_max_load(cluster))
    assert sol.max_load >= 1


def _energy_cluster(n: int = 60, seed: int = 0) -> Cluster:
    dep = uniform_square(n, seed=seed)
    cluster = Cluster.from_deployment(dep)
    rng = np.random.default_rng(seed)
    cluster.energy[:] = rng.uniform(0.3, 1.0, size=n)
    return cluster


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_minmax_energy_aware_warm_dinic(benchmark):
    """The ISSUE-2 tentpole receipt: warm-start Dinic vs cold Edmonds-Karp.

    Asserts (a) the two engines return identical solutions and (b) the
    warm path is at least 3x faster on the energy-aware δ/λ search, then
    records the warm path's timing in the benchmark JSON.
    """
    cluster = _energy_cluster()
    cold = lambda: solve_min_max_load(
        cluster, energy_aware=True, engine="cold", method="edmonds-karp"
    )
    warm = lambda: solve_min_max_load(
        cluster, energy_aware=True, engine="warm", method="dinic"
    )
    sol_cold, sol_warm = cold(), warm()
    assert sol_cold.max_load == sol_warm.max_load
    assert (sol_cold.loads == sol_warm.loads).all()
    assert sol_cold.flow_paths == sol_warm.flow_paths
    assert sol_warm.stats.builds == 1

    t_cold = _best_of(cold)
    t_warm = _best_of(warm)
    assert t_cold >= 3.0 * t_warm, (
        f"warm-start speedup regressed: cold {t_cold*1e3:.1f} ms "
        f"vs warm {t_warm*1e3:.1f} ms ({t_cold/t_warm:.2f}x < 3x)"
    )
    benchmark(warm)


def test_bench_minmax_energy_aware_cold_ek(benchmark):
    """The cold baseline, recorded so BENCH JSONs show both trajectories."""
    cluster = _energy_cluster()
    sol = benchmark(
        lambda: solve_min_max_load(
            cluster, energy_aware=True, engine="cold", method="edmonds-karp"
        )
    )
    assert sol.max_load > 0


def test_bench_online_scheduler_30_sensors(benchmark):
    dep = uniform_square(30, seed=0)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    cluster = cluster.with_packets(np.full(30, 3, dtype=np.int64))
    plan = solve_min_max_load(cluster).routing_plan()

    result = benchmark(lambda: OnlinePollingScheduler.poll(plan, oracle))
    assert result.pool.all_deleted()


def test_bench_event_kernel(benchmark):
    from repro.sim import Simulator

    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count["n"]

    assert benchmark(run) == 20_000
