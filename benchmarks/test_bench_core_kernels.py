"""Micro-benchmarks of the computational kernels (profiling guardrails).

Not paper artifacts — these watch the hot paths the experiments lean on so
a future change that regresses them is caught by the benchmark run.
"""

import numpy as np

from repro.core import OnlinePollingScheduler
from repro.mac.base import geometric_oracle
from repro.routing import FlowNetwork, solve_min_max_load
from repro.topology import Cluster, uniform_square


def test_bench_maxflow_kernel(benchmark):
    rng = np.random.default_rng(0)
    n = 60
    g = FlowNetwork(n)
    for _ in range(400):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), int(rng.integers(1, 10)))

    def solve():
        g.reset_flow()
        return g.max_flow(0, n - 1)

    value = benchmark(solve)
    assert value >= 0


def test_bench_minmax_routing(benchmark):
    dep = uniform_square(40, seed=0)
    cluster = Cluster.from_deployment(dep)
    sol = benchmark(lambda: solve_min_max_load(cluster))
    assert sol.max_load >= 1


def test_bench_online_scheduler_30_sensors(benchmark):
    dep = uniform_square(30, seed=0)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    cluster = cluster.with_packets(np.full(30, 3, dtype=np.int64))
    plan = solve_min_max_load(cluster).routing_plan()

    result = benchmark(lambda: OnlinePollingScheduler.poll(plan, oracle))
    assert result.pool.all_deleted()


def test_bench_event_kernel(benchmark):
    from repro.sim import Simulator

    def run():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count["n"]

    assert benchmark(run) == 20_000
