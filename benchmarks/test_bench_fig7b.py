"""Bench: Fig. 7(b) — throughput vs offered load, polling vs S-MAC + AODV.

Runs the full event-driven comparison at a reduced scale (20 sensors, two
offered loads, two duty cycles; the paper-scale sweep is
``python -m repro.experiments.fig7b``) and asserts the paper's three
claims: polling delivers 100% everywhere, S-MAC undershoots at high load
even without sleeping, and lower duty cycles lose more.
"""

import pytest

from repro.net import (
    PollingSimConfig,
    SmacSimConfig,
    run_polling_simulation,
    run_smac_simulation,
)

N = 20
HIGH_RATE = 60.0  # 1200 Bps total: past the S-MAC saturation knee
LOW_RATE = 7.0  # 140 Bps total


@pytest.fixture(scope="module")
def results():
    out = {}
    for tag, rate in (("low", LOW_RATE), ("high", HIGH_RATE)):
        out[("poll", tag)] = run_polling_simulation(
            PollingSimConfig(
                n_sensors=N, rate_bps=rate, cycle_length=5.0, n_cycles=8, seed=4
            )
        )
        for duty in (1.0, 0.3):
            out[("smac", tag, duty)] = run_smac_simulation(
                SmacSimConfig(
                    n_sensors=N,
                    rate_bps=rate,
                    duty_cycle=duty,
                    duration=40.0,
                    warmup=8.0,
                    seed=4,
                )
            )
    return out


def test_bench_fig7b_polling_point(benchmark):
    res = benchmark.pedantic(
        lambda: run_polling_simulation(
            PollingSimConfig(
                n_sensors=N, rate_bps=LOW_RATE, cycle_length=5.0, n_cycles=4, seed=4
            )
        ),
        rounds=1,
        iterations=1,
    )
    assert res.throughput_ratio == 1.0


def test_bench_fig7b_smac_point(benchmark):
    res = benchmark.pedantic(
        lambda: run_smac_simulation(
            SmacSimConfig(
                n_sensors=N, rate_bps=LOW_RATE, duty_cycle=0.5,
                duration=20.0, warmup=5.0, seed=4,
            )
        ),
        rounds=1,
        iterations=1,
    )
    assert res.packets_delivered > 0


def test_polling_full_throughput_all_loads(results):
    assert results[("poll", "low")].throughput_ratio == 1.0
    assert results[("poll", "high")].throughput_ratio == 1.0


def test_smac_undershoots_at_high_load_even_awake(results):
    smac = results[("smac", "high", 1.0)]
    assert smac.throughput_bps < smac.offered_bps * 0.9


def test_smac_degrades_with_duty_cycle(results):
    full = results[("smac", "high", 1.0)]
    low = results[("smac", "high", 0.3)]
    assert low.throughput_bps < full.throughput_bps


def test_polling_sleeps_more_than_any_smac(results):
    poll_active = results[("poll", "high")].mean_active_fraction
    for duty in (1.0, 0.3):
        smac_active = float(results[("smac", "high", duty)].active_fraction.mean())
        assert poll_active < smac_active
