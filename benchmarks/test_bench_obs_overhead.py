"""Bench: telemetry overhead on the polling DES (off vs on).

Two medians over the same seeded cluster run: ``off`` is the default
untraced path (the bit-for-bit guarantee makes it the true baseline), ``on``
activates a run-local collector.  ``check_obs_overhead.py`` holds the ratio
to the 2x budget; ``compare_benchmarks.py`` separately guards the ``off``
median against historical regression like every other bench.
"""

from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation


def _config(telemetry: bool) -> PollingSimConfig:
    return PollingSimConfig(n_sensors=20, n_cycles=4, seed=7, telemetry=telemetry)


def test_bench_polling_telemetry_off(benchmark):
    res = benchmark(run_polling_simulation, _config(False))
    assert res.telemetry is None
    assert res.packets_delivered > 0


def test_bench_polling_telemetry_on(benchmark):
    res = benchmark(run_polling_simulation, _config(True))
    assert res.telemetry is not None
    assert res.telemetry.spans_of("cycle")
    assert res.packets_delivered > 0
