"""Bench: Fig. 7(a) — % active time vs cluster size x data generating rate.

A reduced sweep (the full 10-sizes x 4-rates grid lives in
``python -m repro.experiments.fig7a``) asserting the paper's shape: active
time grows along both axes and approaches saturation for large, fast
clusters.
"""

import pytest

from repro.experiments import fig7a

SIZES = (10, 30, 60)
RATES = (20.0, 80.0)


@pytest.fixture(scope="module")
def sweep():
    return fig7a.run(sizes=SIZES, rates=RATES, seeds=(0,), n_cycles=4)


def test_bench_fig7a_sweep(benchmark, sweep):
    # time a single representative mid-size point
    row = benchmark.pedantic(
        lambda: fig7a.run_point(30, 40.0, seeds=(0,), n_cycles=4),
        rounds=1,
        iterations=1,
    )
    assert 0 < row["active_pct"] <= 100


def test_fig7a_monotone_in_size(sweep):
    for rate in RATES:
        pcts = [r["active_pct"] for r in sweep if r["rate_bps"] == rate]
        assert pcts == sorted(pcts)


def test_fig7a_monotone_in_rate(sweep):
    for n in SIZES:
        pcts = [r["active_pct"] for r in sweep if r["n_sensors"] == n]
        assert pcts == sorted(pcts)


def test_fig7a_small_cluster_sleeps_most(sweep):
    small = next(r for r in sweep if r["n_sensors"] == 10 and r["rate_bps"] == 20.0)
    assert small["active_pct"] < 12.0


def test_fig7a_saturation_cliff():
    """The paper's 90-node/80-Bps cliff: big fast clusters approach 100%."""
    row = fig7a.run_point(90, 80.0, seeds=(3,), n_cycles=5, warmup_cycles=1)
    assert row["active_pct"] > 75.0
