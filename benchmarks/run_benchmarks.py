"""Emit the committed perf baselines: ``BENCH_<name>.json`` at the repo root.

Runs the cheap benchmark modules (the gadget figures and the core kernels —
the DES sweeps stay manual) through pytest-benchmark and writes one JSON
per module::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # refresh baselines
    PYTHONPATH=src python benchmarks/run_benchmarks.py --out-dir fresh

CI regenerates them into a scratch dir and fails if any benchmark's median
regressed >30% against the committed file (see ``compare_benchmarks.py``).
Commit the refreshed files whenever a change legitimately moves a number —
the JSON trail is the repo's perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.campaign import host_fingerprint  # noqa: E402

CHEAP_BENCHES = {
    "fig2": "test_bench_fig2.py",
    "fig4": "test_bench_fig4.py",
    "core_kernels": "test_bench_core_kernels.py",
    "failover": "test_bench_failover.py",
    "churn": "test_bench_churn.py",
    "handoff": "test_bench_handoff.py",
    "obs_overhead": "test_bench_obs_overhead.py",
    "vector": "test_bench_vector.py",
    "campaign": "test_bench_campaign.py",
}


def stamp_host(path: pathlib.Path) -> None:
    """Embed the host fingerprint so comparisons can tell drift from regression."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["host_fingerprint"] = host_fingerprint()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="where to write BENCH_<name>.json (default: repo root)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(CHEAP_BENCHES),
        help="subset of benches to run (default: all)",
    )
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    failures = 0
    for name, module in CHEAP_BENCHES.items():
        if args.only and name not in args.only:
            continue
        out = args.out_dir / f"BENCH_{name}.json"
        code = pytest.main(
            [
                str(pathlib.Path(__file__).parent / module),
                "-q",
                "--benchmark-json",
                str(out),
            ]
        )
        if code != 0:
            print(f"[run_benchmarks] {module} FAILED (exit {code})", file=sys.stderr)
            failures += 1
        else:
            stamp_host(out)
            print(f"[run_benchmarks] wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
