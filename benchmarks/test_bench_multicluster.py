"""Bench: Sec. V-G inter-cluster coordination on a shared medium (ours)."""

import pytest

from repro.net import MultiClusterConfig, run_multicluster_simulation


def _run(mode):
    return run_multicluster_simulation(
        MultiClusterConfig(
            mode=mode, n_sensors=40, n_heads=3, n_cycles=3, seed=2,
            rate_bps=20.0, cycle_length=5.0, field_m=330.0,
        )
    )


def test_bench_multicluster_channels(benchmark):
    res = benchmark.pedantic(lambda: _run("channels"), rounds=1, iterations=1)
    assert res.delivery_ratio == 1.0


def test_bench_multicluster_modes_ordering():
    un = _run("uncoordinated")
    tok = _run("token")
    ch = _run("channels")
    assert un.collisions > 10 * max(tok.collisions, ch.collisions, 1)
    assert tok.delivery_ratio == ch.delivery_ratio == 1.0
