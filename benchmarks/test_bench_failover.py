"""Benchmarks guarding the survivability machinery's cost.

Two promises are on the line: ``compute_backup_routes`` (warm-start Dinic
on the node-split graph) must stay cheap enough to run at every route
repair, and a faulted run at ``backup_k=0`` must cost the same as before
the failover feature existed — the k=0 path is contractually bit-for-bit
identical, so any slowdown here is pure overhead leaking into the off
switch.  The committed BENCH_failover.json baseline holds both inside the
CI 30% regression gate.
"""

from repro.faults import FaultPlan, NodeCrash
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.routing import compute_backup_routes, solve_min_max_load
from repro.topology import Cluster, uniform_square

PLAN = FaultPlan(crashes=[NodeCrash(node=7, at=20.3)])


def test_bench_backup_routes_kernel(benchmark):
    dep = uniform_square(40, seed=0)
    solution = solve_min_max_load(Cluster.from_deployment(dep))
    routes = benchmark(lambda: compute_backup_routes(solution, k=2))
    assert any(routes.paths_for(s) for s in solution.flow_paths)


def test_bench_faulted_sim_k0(benchmark):
    cfg = PollingSimConfig(
        n_sensors=30, n_cycles=4, seed=3, fault_plan=PLAN, backup_k=0
    )
    res = benchmark(lambda: run_polling_simulation(cfg))
    assert res.mac.backups is None
    assert res.packets_delivered > 0


def test_bench_faulted_sim_k1(benchmark):
    cfg = PollingSimConfig(
        n_sensors=30, n_cycles=4, seed=3, fault_plan=PLAN, backup_k=1
    )
    res = benchmark(lambda: run_polling_simulation(cfg))
    assert res.mac.backups is not None
    assert res.packets_delivered > 0
