"""Compare fresh pytest-benchmark JSON against the committed baselines.

Usage (what CI runs)::

    python benchmarks/compare_benchmarks.py --baseline-dir . --fresh-dir fresh

Matches benchmarks by fully-qualified name and fails (exit 1) when any
fresh *median* exceeds the baseline median by more than ``--max-regression``
(default 0.30 = +30%).  New benchmarks with no baseline are reported but
never fail the run; a baseline benchmark missing from the fresh run does
fail (a silently dropped bench would otherwise hide a regression forever).

Host-drift vs regression
------------------------
``run_benchmarks.py`` stamps a host fingerprint (CPU model, core count,
Python/numpy versions) into every BENCH_*.json.  When the baseline and the
fresh run carry the *same* fingerprint the 30% gate applies verbatim.  When
they differ, absolute medians are incomparable — a slower CI runner would
flag every bench.  In that case the comparison

* estimates a host scale factor as the median of per-bench fresh/baseline
  ratios (most benches move together when only the host changed),
* classifies each over-budget bench as ``HOST-DRIFT`` (within budget after
  rescaling) or ``REGRESSION?`` (over budget even after rescaling — one
  bench moved much more than its peers), and
* warns instead of failing, unless ``--strict-host`` is given (CI passes
  it so a suspected cross-host regression still blocks).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import Any


def load_bench(path: pathlib.Path) -> tuple[dict[str, float], dict[str, Any] | None]:
    """(medians by fullname, host fingerprint or None) for one JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    medians = {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }
    return medians, payload.get("host_fingerprint")


def load_medians(path: pathlib.Path) -> dict[str, float]:
    return load_bench(path)[0]


def _same_host(a: dict[str, Any] | None, b: dict[str, Any] | None) -> bool:
    # Unstamped files (pre-fingerprint baselines) get the conservative
    # same-host gate: better a spurious failure than a silent regression.
    if a is None or b is None:
        return True
    return a.get("id") == b.get("id")


def host_scale(base: dict[str, float], new: dict[str, float]) -> float:
    """Median of per-bench fresh/baseline ratios — the host speed factor."""
    ratios = [
        new[name] / base[name]
        for name in base
        if name in new and base[name] > 0
    ]
    return statistics.median(ratios) if ratios else 1.0


def compare_file(
    baseline: pathlib.Path,
    fresh: pathlib.Path,
    max_regression: float,
    strict_host: bool = False,
) -> list[str]:
    """Human-readable failure strings for one baseline/fresh pair."""
    base, base_host = load_bench(baseline)
    new, new_host = load_bench(fresh)
    same_host = _same_host(base_host, new_host)
    scale = 1.0
    if not same_host:
        scale = host_scale(base, new)
        print(
            f"  (cross-host: baseline {base_host.get('id') if base_host else '?'} "
            f"[{(base_host or {}).get('cpu_model', '?')}] vs fresh "
            f"{new_host.get('id') if new_host else '?'} "
            f"[{(new_host or {}).get('cpu_model', '?')}]; "
            f"host scale x{scale:.2f} — "
            f"{'strict' if strict_host else 'warn-only'} mode)"
        )
    limit = 1.0 + max_regression
    failures: list[str] = []
    for name, base_median in sorted(base.items()):
        if name not in new:
            failures.append(f"{name}: present in baseline but missing from fresh run")
            continue
        ratio = new[name] / base_median if base_median > 0 else float("inf")
        adjusted = ratio / scale if scale > 0 else float("inf")
        verdict = "OK"
        if same_host:
            if ratio > limit:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: median {base_median*1e3:.3f} ms -> {new[name]*1e3:.3f} ms "
                    f"({ratio:.2f}x, limit {limit:.2f}x)"
                )
        elif adjusted > limit:
            verdict = "REGRESSION?"
            msg = (
                f"{name}: median {base_median*1e3:.3f} ms -> {new[name]*1e3:.3f} ms "
                f"({ratio:.2f}x raw, {adjusted:.2f}x host-adjusted, limit {limit:.2f}x) "
                f"[cross-host]"
            )
            if strict_host:
                failures.append(msg)
            else:
                print(f"  WARNING    {msg}")
        elif ratio > limit:
            verdict = "HOST-DRIFT"
        print(f"  {verdict:<10} {name}  x{ratio:.2f}")
    for name in sorted(set(new) - set(base)):
        print(f"  NEW        {name} (no baseline; recorded only)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=pathlib.Path, default=pathlib.Path("."))
    parser.add_argument("--fresh-dir", type=pathlib.Path, required=True)
    parser.add_argument("--max-regression", type=float, default=0.30)
    parser.add_argument(
        "--strict-host",
        action="store_true",
        help="fail on suspected cross-host regressions instead of warning",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        help="bench names (the <name> in BENCH_<name>.json) to compare; "
        "default: every committed baseline",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if args.only:
        wanted = {f"BENCH_{name}.json" for name in args.only}
        baselines = [b for b in baselines if b.name in wanted]
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 1
    all_failures: list[str] = []
    for baseline in baselines:
        fresh = args.fresh_dir / baseline.name
        print(f"{baseline.name}:")
        if not fresh.exists():
            all_failures.append(f"{baseline.name}: fresh run produced no file")
            print("  MISSING    (fresh run produced no file)")
            continue
        all_failures.extend(
            compare_file(baseline, fresh, args.max_regression, args.strict_host)
        )
    if all_failures:
        print("\nperf regressions:", file=sys.stderr)
        for line in all_failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nall benchmarks within the regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
