"""Compare fresh pytest-benchmark JSON against the committed baselines.

Usage (what CI runs)::

    python benchmarks/compare_benchmarks.py --baseline-dir . --fresh-dir fresh

Matches benchmarks by fully-qualified name and fails (exit 1) when any
fresh *median* exceeds the baseline median by more than ``--max-regression``
(default 0.30 = +30%).  New benchmarks with no baseline are reported but
never fail the run; a baseline benchmark missing from the fresh run does
fail (a silently dropped bench would otherwise hide a regression forever).

Caveat: absolute medians move with the host, so cross-machine comparisons
are a coarse tripwire, not a precision instrument — the 30% slack absorbs
runner-to-runner variance while still catching algorithmic regressions
(which tend to be integer multiples, not percentages).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_medians(path: pathlib.Path) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def compare_file(
    baseline: pathlib.Path, fresh: pathlib.Path, max_regression: float
) -> list[str]:
    """Human-readable failure strings for one baseline/fresh pair."""
    base = load_medians(baseline)
    new = load_medians(fresh)
    failures: list[str] = []
    for name, base_median in sorted(base.items()):
        if name not in new:
            failures.append(f"{name}: present in baseline but missing from fresh run")
            continue
        ratio = new[name] / base_median if base_median > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: median {base_median*1e3:.3f} ms -> {new[name]*1e3:.3f} ms "
                f"({ratio:.2f}x, limit {1.0 + max_regression:.2f}x)"
            )
        print(f"  {verdict:<10} {name}  x{ratio:.2f}")
    for name in sorted(set(new) - set(base)):
        print(f"  NEW        {name} (no baseline; recorded only)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=pathlib.Path, default=pathlib.Path("."))
    parser.add_argument("--fresh-dir", type=pathlib.Path, required=True)
    parser.add_argument("--max-regression", type=float, default=0.30)
    parser.add_argument(
        "--only",
        nargs="*",
        help="bench names (the <name> in BENCH_<name>.json) to compare; "
        "default: every committed baseline",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if args.only:
        wanted = {f"BENCH_{name}.json" for name in args.only}
        baselines = [b for b in baselines if b.name in wanted]
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 1
    all_failures: list[str] = []
    for baseline in baselines:
        fresh = args.fresh_dir / baseline.name
        print(f"{baseline.name}:")
        if not fresh.exists():
            all_failures.append(f"{baseline.name}: fresh run produced no file")
            print("  MISSING    (fresh run produced no file)")
            continue
        all_failures.extend(compare_file(baseline, fresh, args.max_regression))
    if all_failures:
        print("\nperf regressions:", file=sys.stderr)
        for line in all_failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nall benchmarks within the regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
