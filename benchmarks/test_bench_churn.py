"""Benchmarks guarding the dynamic-network machinery's cost.

Two promises: a static run with churn/mobility/re-clustering disabled must
cost the same as before the feature existed (the disabled machinery is
contractually bit-for-bit identical, so any slowdown here is pure overhead
leaking into the off switch), and one ``reform_cluster`` pass — discovery
plus incremental demand migration — must stay cheap enough to run at a
duty-cycle boundary.  The committed BENCH_churn.json baseline holds both
inside the CI 30% regression gate.
"""

from repro.faults import FaultPlan, Mobility, NodeJoin, NodeLeave
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.topology import reform_cluster

CHURN_PLAN = FaultPlan(
    joins=[NodeJoin(at=12.0, position=(60.0, 150.0))],
    leaves=[NodeLeave(node=4, at=22.0)],
    mobility=Mobility(speed_mps=0.4),
)


def test_bench_static_sim_recluster_off(benchmark):
    # The off switch: no dynamic plan, recluster disabled — this is the
    # pre-churn hot path and must not pay for the feature's existence.
    cfg = PollingSimConfig(n_sensors=30, n_cycles=4, seed=3)
    res = benchmark(lambda: run_polling_simulation(cfg))
    assert res.mac.reclusters == 0
    assert res.packets_delivered > 0


def test_bench_churn_sim_staleness(benchmark):
    cfg = PollingSimConfig(
        n_sensors=30,
        n_cycles=4,
        seed=3,
        fault_plan=CHURN_PLAN,
        recluster="staleness",
    )
    res = benchmark(lambda: run_polling_simulation(cfg))
    assert res.mac.reclusters >= 1
    assert res.packets_delivered > 0


def test_bench_reform_kernel(benchmark):
    probe = run_polling_simulation(PollingSimConfig(n_sensors=40, n_cycles=2, seed=0))
    phy = probe.phy
    result = benchmark(lambda: reform_cluster(phy, excluded={3, 11}))
    assert result.repair.solution is not None
    assert 3 not in result.routing.routing_plan().paths
