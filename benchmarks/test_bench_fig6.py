"""Bench: Fig. 6 — CPAR gadget construction and brute-force optimum."""

from repro.experiments import fig6
from repro.hardness import brute_force_min_pseudo_rate, cpar_from_partition


def test_bench_fig6_regenerates(benchmark):
    rows = benchmark(fig6.run)
    by = {r["quantity"]: r["value"] for r in rows}
    assert by["meets threshold"] is True
    assert by["best achievable max pseudo rate"] == by["threshold B = A + 2"]


def test_bench_cpar_brute_force(benchmark):
    inst = cpar_from_partition([4, 3, 2, 3, 2])
    best, partition = benchmark(lambda: brute_force_min_pseudo_rate(inst))
    assert best <= inst.threshold  # {4,3}/{3,2,2} splits evenly
    assert partition.n_sectors == 2
