"""CI gate: vector engine speedup over the scalar oracle (DESIGN.md §12).

Reads a ``BENCH_vector.json`` produced by ``test_bench_vector.py`` and
fails (exit 1) unless the scalar sweep's median divided by the vector
sweep's median meets the required ratio::

    python benchmarks/check_vector_speedup.py BENCH_vector.json --min-ratio 5.0

The two benchmarks time the *same* fig. 4-scale sweep (same seed, same
grid), so the ratio is a clean engine-vs-engine measurement on one host —
immune to the cross-machine drift that makes absolute medians coarse.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

VECTOR = "test_bench_fig4_sweep_vector"
SCALAR = "test_bench_fig4_sweep_scalar"


def medians(path: pathlib.Path) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in payload.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "json_path",
        type=pathlib.Path,
        nargs="?",
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_vector.json",
    )
    parser.add_argument("--min-ratio", type=float, default=5.0)
    args = parser.parse_args(argv)

    med = medians(args.json_path)
    missing = [n for n in (VECTOR, SCALAR) if n not in med]
    if missing:
        print(f"[check_vector_speedup] missing benchmarks: {missing}", file=sys.stderr)
        return 1
    ratio = med[SCALAR] / med[VECTOR]
    print(
        f"[check_vector_speedup] scalar {med[SCALAR]:.3f}s / "
        f"vector {med[VECTOR]:.3f}s = {ratio:.2f}x (gate >= {args.min_ratio:.1f}x)"
    )
    if ratio < args.min_ratio:
        print(
            f"[check_vector_speedup] FAIL: {ratio:.2f}x < {args.min_ratio:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
