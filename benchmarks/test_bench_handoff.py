"""Benchmarks guarding the field-handoff machinery's cost.

Two promises, mirroring the churn bench: a multi-cluster run with
``handoff="off"`` must cost what it did before the feature existed (off is
contractually bit-for-bit identical, so any slowdown here is coordinator
overhead leaking into the off switch), and the pure planning kernel —
staleness probe, quantization head step, gain-sorted move batch — must
stay cheap enough to run at every duty-cycle boundary.  The committed
BENCH_handoff.json baseline holds both inside the CI 30% regression gate.
"""

import numpy as np

from repro.net.multicluster_sim import MultiClusterConfig, run_multicluster_simulation
from repro.topology.handoff import plan_field_reform


def test_bench_multicluster_handoff_off(benchmark):
    # The off switch: no coordinator is even constructed — this is the
    # pre-handoff hot path and must not pay for the feature's existence.
    cfg = MultiClusterConfig(n_cycles=4, seed=2, mobility_speed_mps=2.0)
    res = benchmark(lambda: run_multicluster_simulation(cfg))
    assert res.field_coordinator is None
    assert res.packets_delivered > 0


def test_bench_multicluster_handoff_staleness(benchmark):
    cfg = MultiClusterConfig(
        n_cycles=4, seed=2, mobility_speed_mps=2.0, handoff="periodic"
    )
    res = benchmark(lambda: run_multicluster_simulation(cfg))
    assert res.field_reforms >= 1
    assert res.packets_delivered > 0


def test_bench_plan_kernel(benchmark):
    # The boundary-time planning kernel alone, at a field size well above
    # the simulated one so the vectorized distance math is what's timed.
    rng = np.random.default_rng(7)
    n, k = 600, 8
    sensors = rng.uniform(0.0, 1000.0, size=(n, 2))
    heads = rng.uniform(0.0, 1000.0, size=(k, 2))
    serving = rng.integers(0, k, size=n)
    live = list(range(k))

    plan = benchmark(
        lambda: plan_field_reform(
            sensors,
            heads,
            serving,
            reason="staleness",
            live_heads=live,
            max_moves=16,
            head_step_m=5.0,
        )
    )
    assert plan.n_moves == 16
    assert plan.deferred
