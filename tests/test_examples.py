"""Smoke tests: every example script runs clean as a subprocess.

The examples are a deliverable; these keep them from rotting as the API
evolves.  The two DES-heavy scripts run with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "polling finished in 2 slots" in out
    assert "validated" in out


def test_hardness_gadgets_runs():
    out = run_example("hardness_gadgets.py")
    assert "physical-model realization agrees with gadget oracle: True" in out
    assert "meets threshold: True" in out


def test_fault_injection_runs():
    out = run_example("fault_injection.py")
    assert "killing relay" in out
    assert "route repairs    : 1" in out
    assert "repaired routing, and kept polling" in out


def test_parallel_sweep_runs():
    out = run_example("parallel_sweep.py")
    assert "parallel rows match sequential: True" in out
    assert "cache hit: True" in out
    assert "pool, sequential, and cached paths all agree" in out


def test_resilient_sweep_runs():
    out = run_example("resilient_sweep.py")
    assert "TrialFailure after 2 attempts" in out
    assert "resumed rows match uninterrupted run: True" in out
    assert "no progress lost" in out


def test_campaign_monitor_runs():
    out = run_example("campaign_monitor.py")
    assert "event kinds: completed, failed, launched, retry" in out
    assert "FAILED" in out and "repro: run_trial(Trial(" in out
    assert "reconciles to 4 unique done trials (duplicate-free)" in out
    assert "MAD score" in out
    assert "every trial accounted for, every anomaly traceable" in out


def test_churn_recluster_runs():
    out = run_example("churn_recluster.py")
    assert "re-form (membership)" in out
    assert "joiners were admitted, departures repaired" in out


@pytest.mark.slow
def test_field_handoff_runs():
    out = run_example("field_handoff.py")
    assert "re-form (membership)" in out
    assert "the forming stayed fresh" in out


@pytest.mark.slow
def test_environment_monitoring_runs():
    out = run_example("environment_monitoring.py")
    assert "throughput ratio 1.000" in out
    assert "lifetime ratio" in out


@pytest.mark.slow
def test_multicluster_runs():
    out = run_example("multicluster.py")
    assert "channel assignment" in out
    assert "token or the channel coloring removes the loss" in out


@pytest.mark.slow
def test_smac_comparison_runs():
    out = run_example("smac_comparison.py", timeout=600)
    assert "Multihop Polling" in out
    assert "SMAC" in out


@pytest.mark.slow
def test_trace_inspect_runs():
    out = run_example("trace_inspect.py")
    assert "collected" in out and "spans" in out
    assert "head blacklists" in out
    assert "re-routes around" in out
    assert "per-phase simulation time" in out
    assert "per-radio energy" in out
    assert "traces to its originating poll request" in out
