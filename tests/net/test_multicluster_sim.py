"""Tests for multi-cluster operation on a shared medium (Sec. V-G executed)."""

import numpy as np
import pytest

from repro.net import MultiClusterConfig, run_multicluster_simulation


def run(mode, **kw):
    cfg = dict(n_sensors=40, n_heads=3, n_cycles=3, seed=2, rate_bps=20.0,
               cycle_length=5.0, field_m=330.0)
    cfg.update(kw)
    return run_multicluster_simulation(MultiClusterConfig(mode=mode, **cfg))


@pytest.fixture(scope="module")
def trio():
    return {m: run(m) for m in ("uncoordinated", "token", "channels")}


def test_uncoordinated_clusters_collide(trio):
    un = trio["uncoordinated"]
    assert un.collisions > 10 * trio["channels"].collisions
    assert un.delivery_ratio < 1.0 or un.packets_failed > 0


def test_token_rotation_removes_interference(trio):
    tok = trio["token"]
    assert tok.delivery_ratio == 1.0
    assert tok.collisions < trio["uncoordinated"].collisions / 10


def test_channel_coloring_removes_interference(trio):
    ch = trio["channels"]
    assert ch.delivery_ratio == 1.0
    # adjacent clusters actually got different channels
    from repro.topology import cluster_adjacency

    adj = cluster_adjacency(ch.net, 2 * ch.config.sensor_range_m)
    for a, b in zip(*np.nonzero(adj)):
        assert ch.channels[a] != ch.channels[b]


def test_every_cluster_delivers(trio):
    for mode in ("token", "channels"):
        per = trio[mode].per_cluster_delivery()
        assert sum(d for _, d in per) == trio[mode].packets_delivered
        assert sum(d > 0 for _, d in per) >= 2  # most clusters carried traffic


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        run("carrier-pigeon")


def test_deterministic_given_seed():
    a = run("channels", n_cycles=2)
    b = run("channels", n_cycles=2)
    assert a.packets_delivered == b.packets_delivered
    assert a.collisions == b.collisions
