"""Tests for channel coloring and inter-cluster coordination."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    TokenSchedule,
    assign_channels,
    concurrency_gain,
    greedy_coloring,
    is_proper_coloring,
    six_color_planar,
)
from repro.topology import form_clusters
from repro.sim import RngStreams


def planar_grid_adjacency(rows, cols):
    """Grid graphs are planar; adjacency of the rows x cols lattice."""
    n = rows * cols
    adj = np.zeros((n, n), dtype=bool)
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                adj[i, i + 1] = adj[i + 1, i] = True
            if r + 1 < rows:
                adj[i, i + cols] = adj[i + cols, i] = True
    return adj


def test_six_coloring_proper_on_grid():
    adj = planar_grid_adjacency(4, 5)
    colors = six_color_planar(adj)
    assert is_proper_coloring(adj, colors)
    assert colors.max() < 6
    # grids are bipartite: min-degree peeling should use very few colors
    assert colors.max() <= 3


def test_six_coloring_triangle():
    adj = np.array(
        [[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=bool
    )
    colors = six_color_planar(adj)
    assert is_proper_coloring(adj, colors)
    assert len(set(colors.tolist())) == 3


def test_coloring_empty_graph():
    adj = np.zeros((5, 5), dtype=bool)
    colors = six_color_planar(adj)
    assert (colors == 0).all()


def test_greedy_coloring_proper_and_order_dependent():
    adj = planar_grid_adjacency(3, 3)
    c1 = greedy_coloring(adj)
    assert is_proper_coloring(adj, c1)
    c2 = greedy_coloring(adj, order=list(range(8, -1, -1)))
    assert is_proper_coloring(adj, c2)
    with pytest.raises(ValueError):
        greedy_coloring(adj, order=[0, 0, 1, 2, 3, 4, 5, 6, 7])


def test_is_proper_coloring_detects_violations():
    adj = planar_grid_adjacency(2, 2)
    assert not is_proper_coloring(adj, np.zeros(4, dtype=int))
    assert not is_proper_coloring(adj, np.array([0, 1, 1, -1]))


def test_coloring_validation():
    with pytest.raises(ValueError):
        six_color_planar(np.triu(np.ones((3, 3), dtype=bool), 1))
    with pytest.raises(ValueError):
        six_color_planar(np.ones((2, 2), dtype=bool))


@given(st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_coloring_proper_on_random_geometric(seed):
    """Cluster-adjacency graphs from head layouts: always properly colored,
    <= 6 colors (disc graphs of spread-out heads stay planar-ish and sparse)."""
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 9))
    heads = rng.uniform(0, 400, size=(k, 2))
    sensors = rng.uniform(0, 400, size=(40, 2))
    net = form_clusters(sensors, heads, comm_range=50.0)
    colors = assign_channels(net, interference_range=100.0)
    from repro.topology import cluster_adjacency

    adj = cluster_adjacency(net, 100.0)
    assert is_proper_coloring(adj, colors)


# --- token rotation ------------------------------------------------------------------

def test_token_schedule_windows():
    sched = TokenSchedule(duty_durations=[1.0, 2.0, 0.5], handoff_cost=0.1)
    assert sched.period == pytest.approx(3.5 + 0.3)
    windows = sched.windows()
    assert windows[0] == (0.0, 1.0)
    assert windows[1] == pytest.approx((1.1, 3.1))
    assert sched.utilization() == pytest.approx(3.5 / 3.8)


def test_token_holder_at():
    sched = TokenSchedule(duty_durations=[1.0, 1.0], handoff_cost=0.5)
    assert sched.holder_at(0.5) == 0
    assert sched.holder_at(1.2) is None  # handoff gap
    assert sched.holder_at(2.0) == 1
    assert sched.holder_at(3.5) == 0  # wraps around


def test_token_validation():
    with pytest.raises(ValueError):
        TokenSchedule(duty_durations=[-1.0])
    with pytest.raises(ValueError):
        TokenSchedule(duty_durations=[1.0], handoff_cost=-0.1)


def test_concurrency_gain_vs_token():
    rng = RngStreams(3).get("x")
    sensors = rng.uniform(0, 500, size=(40, 2))
    heads = np.array([[100.0, 100.0], [400.0, 100.0], [100.0, 400.0], [400.0, 400.0]])
    net = form_clusters(sensors, heads, comm_range=60.0)
    duties = [0.2, 0.3, 0.25, 0.25]
    gain = concurrency_gain(net, 120.0, duties)
    # token period = 1.0, colored period = max duty 0.3 -> gain ~3.33
    assert gain == pytest.approx(1.0 / 0.3, rel=0.01)
    with pytest.raises(ValueError):
        concurrency_gain(net, 120.0, [0.1])
