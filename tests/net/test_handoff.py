"""Field-level re-forming: cross-cluster handoff under mobility (DESIGN.md §13).

Three contracts under test:

* **off ≡ HEAD** — ``handoff="off"`` is bit-for-bit the pre-handoff code
  path: the golden fingerprints below (which include every radio's energy
  ledger as float hex) were captured before the coordinator existed and
  must never change while the feature is off;
* **crash safety** — a head dying inside the prepare->commit window aborts
  its moves cleanly (no stranded queues, no dual membership), and the
  failover adoption path composes with handoff under strict invariants;
* **payoff** — under the PR 6 mobility regimes the staleness-triggered
  re-forming strictly improves delivery, final staleness and ground-truth
  field coverage over the frozen deploy-time forming.
"""

import dataclasses
import hashlib
import json

import pytest

from repro import validate
from repro.net import MultiClusterConfig, run_multicluster_simulation

# The prepare event fires handoff_commit_lead before each boundary; a crash
# scheduled inside (boundary - lead, boundary) lands in the protocol's
# crash window.
LEAD = 0.25


def fingerprint(res) -> str:
    """Full behavioral digest, per-radio energy floats included."""
    seen, energies = set(), []
    for mac in res.macs:
        for trx in mac.phy.transceivers:
            if id(trx) not in seen:
                seen.add(id(trx))
                energies.append((trx.node, trx.meter.consumed_j.hex()))
    payload = {
        "delivered": res.packets_delivered,
        "failed": res.packets_failed,
        "generated": res.packets_generated,
        "collisions": res.collisions,
        "elapsed": res.elapsed.hex(),
        "staleness": res.final_assignment_staleness.hex(),
        "per_cluster": res.per_cluster_delivery(),
        "energies": sorted(energies),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


# Captured at the commit immediately preceding this feature (handoff knob
# absent from the config entirely).  handoff="off" must reproduce them.
GOLDEN = {
    "static-ch-seed2": (
        MultiClusterConfig(n_cycles=6, seed=2),
        "7c2795a3c02995906b5b2805709f46588fa566d06207f4090ced0bd2a6f42457",
    ),
    "static-token-seed0": (
        MultiClusterConfig(n_cycles=4, seed=0, mode="token"),
        "793aad1ff51aa5fd8bb714dc7b5898162a0e05ace2e67c4423ab2715aa677236",
    ),
    "mobility-2.0-seed2": (
        MultiClusterConfig(n_cycles=6, seed=2, mobility_speed_mps=2.0),
        "5b2cd60dfff72f600fa7bc16c532c85f8e3ec8a34b7df8f69cb16628f5d40868",
    ),
    "mobility-4.0-seed5": (
        MultiClusterConfig(n_cycles=8, seed=5, mobility_speed_mps=4.0),
        "1ae9765842db4c60b8f8a70aa829b325efaf700c604d9969e2f12322794110dd",
    ),
    "mobility-crash-failover-seed2": (
        MultiClusterConfig(
            n_cycles=8, seed=2, mobility_speed_mps=2.0,
            head_failover=True, head_crashes=((1, 8.0),),
        ),
        "bce00476e6889d1b98e26e938d39096643d21c8b09bd99f7a571f566c489e70e",
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_handoff_off_is_bit_for_bit_head(name):
    cfg, want = GOLDEN[name]
    assert cfg.handoff == "off"
    assert fingerprint(run_multicluster_simulation(cfg)) == want


def test_off_creates_no_field_coordinator():
    res = run_multicluster_simulation(MultiClusterConfig(n_cycles=2))
    assert res.field_coordinator is None
    assert res.handoff_events == []
    assert res.field_reforms == 0
    assert res.staleness_trajectory == ()


def test_unknown_handoff_policy_rejected():
    with pytest.raises(ValueError, match="handoff"):
        run_multicluster_simulation(MultiClusterConfig(handoff="sometimes"))


def test_handoff_run_is_deterministic():
    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0,
        handoff="staleness", handoff_head_step_m=6.0,
    )
    a = run_multicluster_simulation(cfg)
    b = run_multicluster_simulation(cfg)
    assert fingerprint(a) == fingerprint(b)
    assert a.handoff_events == b.handoff_events
    assert a.staleness_trajectory == b.staleness_trajectory


def test_mobility_run_samples_staleness_every_epoch():
    cfg = MultiClusterConfig(n_cycles=6, seed=2, mobility_speed_mps=2.0)
    res = run_multicluster_simulation(cfg)
    # one sample per mobility epoch (cycle boundaries 1..n-1)
    assert len(res.staleness_trajectory) == res.mobility_epochs == 5
    assert all(0.0 <= s <= 1.0 for s in res.staleness_trajectory)
    # the final end-of-run figure matches the deploy-assignment measure the
    # trajectory is sampled from (positions do not move after the last epoch)
    assert res.staleness_trajectory[-1] == pytest.approx(
        res.final_assignment_staleness
    )


def test_staleness_payoff_under_mobility():
    """The acceptance regime: re-forming strictly beats the frozen forming."""
    base = dict(n_cycles=10, seed=0, mobility_speed_mps=4.0)
    off = run_multicluster_simulation(MultiClusterConfig(**base))
    with validate.strict():
        on = run_multicluster_simulation(
            MultiClusterConfig(**base, handoff="staleness")
        )
    assert on.field_reforms >= 1
    assert on.field_handoffs >= 1
    assert on.packets_delivered > off.packets_delivered
    assert on.final_assignment_staleness < off.final_assignment_staleness
    assert on.field_coverage > off.field_coverage


def test_committed_sensors_change_cluster_and_queues_survive():
    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0, handoff="staleness"
    )
    with validate.strict():
        res = run_multicluster_simulation(cfg)
    committed = [e for e in res.handoff_events if e.state == "committed"]
    assert committed, "regime chosen to produce at least one handoff"
    coord = res.field_coordinator
    for e in committed:
        assert int(coord.serving[e.sensor]) != e.src or any(
            later.sensor == e.sensor and later.time > e.time
            for later in res.handoff_events
        )
    # every sensor appears in exactly one live roster (no dual membership)
    owners: dict[int, int] = {}
    for mac in res.macs:
        if mac.halted:
            continue
        for g in mac.phy.index_map[:-1]:
            assert g not in owners, f"sensor {g} in clusters {owners[g]} and {mac.cluster_id}"
            owners[int(g)] = mac.cluster_id


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_chaos_mobility_crash_mid_handoff_strict_clean(seed):
    """Head crashes inside the prepare->commit window, strict invariants on.

    The crash lands at boundary - 0.1 (prepare fired at boundary - 0.25),
    so staged moves whose endpoints died must abort; the failover watchdog
    then adopts the orphans.  Strict mode raises on any conservation or
    membership violation — passing means the composed machinery is clean.
    """
    boundary = 2 * 6.0  # cycle 2 boundary of the default 6 s cycles
    cfg = MultiClusterConfig(
        n_cycles=8,
        seed=seed,
        mobility_speed_mps=3.0,
        handoff="staleness",
        handoff_head_step_m=4.0,
        head_failover=True,
        head_crashes=((seed % 3, boundary - 0.1),),
    )
    with validate.strict():
        res = run_multicluster_simulation(cfg)
    assert res.field_coordinator is not None
    # the crashed head stays halted; everyone else finishes the run
    assert res.macs[seed % 3].halted
    states = {e.state for e in res.handoff_events}
    assert states <= {
        "committed",
        "aborted-src-dead",
        "aborted-dst-dead",
        "deferred-busy",
        "deferred-src-empty",
        "deferred-unreachable",
        "deferred-bridge",
    }
    # no stranded queues: pending packets live in exactly the agents the
    # live (or dark, pre-adoption) rosters point at, and every CBR source
    # targets an agent that exists
    for mac in res.macs:
        for agent in mac.sensors:
            assert agent.pending_count >= 0


def test_crash_of_destination_head_in_window_aborts_moves():
    """Force a dst-dead abort: kill a head right after prepare retunes."""
    # Find a seed/boundary where the staleness trigger stages moves into a
    # head we then crash inside the window.
    base = dict(
        n_cycles=8, seed=2, mobility_speed_mps=4.0, handoff="staleness"
    )
    probe = run_multicluster_simulation(MultiClusterConfig(**base))
    committed = [e for e in probe.handoff_events if e.state == "committed"]
    assert committed
    first = min(committed, key=lambda e: e.time)
    with validate.strict():
        res = run_multicluster_simulation(
            MultiClusterConfig(
                **base,
                head_failover=True,
                head_crashes=((first.dst, first.time - 0.1),),
            )
        )
    aborted = [e for e in res.handoff_events if e.state.startswith("aborted")]
    assert aborted, "crashing the destination inside the window must abort"
    # aborted movers stayed with a cluster (their source, or an adopter if
    # the source died later) — never orphaned by the handoff machinery
    for e in aborted:
        owners = [
            mac.cluster_id
            for mac in res.macs
            if not mac.halted and e.sensor in set(mac.phy.index_map[:-1])
        ]
        assert len(owners) <= 1


def test_head_replacement_moves_heads_within_budget():
    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0,
        handoff="staleness", handoff_head_step_m=5.0,
    )
    res = run_multicluster_simulation(cfg)
    assert res.field_reforms >= 1
    # heads physically moved: the shared medium's head rows differ from the
    # deploy layout by at most reforms * budget
    deploy = run_multicluster_simulation(
        dataclasses.replace(cfg, handoff="off", n_cycles=1)
    )
    # deploy head layout is seed-determined, identical across both runs
    import numpy as np

    n = cfg.n_sensors
    moved = 0.0
    for h in range(cfg.n_heads):
        a = res.field_coordinator.head_positions[h]
        b = deploy.net.clusters[h].head_position
        moved = max(moved, float(np.hypot(*(a - b))))
    assert moved > 0.0
    assert moved <= res.field_reforms * cfg.handoff_head_step_m + 1e-9


def test_periodic_policy_reforms_every_cycle():
    cfg = MultiClusterConfig(
        n_cycles=6, seed=2, mobility_speed_mps=2.0, handoff="periodic"
    )
    res = run_multicluster_simulation(cfg)
    # a periodic trigger with period 1 commits a plan at every boundary
    assert res.field_reforms == 5


def test_solver_cache_and_liveness_passthroughs():
    """The PR 4/PR 7 knobs thread through and stay strict-clean."""
    from repro.topology import StalenessTrigger

    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0,
        handoff="staleness", use_solver_cache=True,
        failure_detection=True, backup_k=1,
        # failure detection blacklists (and therefore freezes) some of the
        # drifters the default threshold counts on; fire on the first one
        handoff_trigger=StalenessTrigger(membership_delta=1, repair_fallbacks=0),
    )
    with validate.strict():
        res = run_multicluster_simulation(cfg)
    assert res.field_reforms >= 1
    assert all(mac.solver_cache is not None for mac in res.macs)
    assert len({id(mac.solver_cache) for mac in res.macs}) == 1  # shared
    stats = res.macs[0].solver_cache.stats
    assert stats.routing_misses + stats.routing_hits > 0


def test_field_coverage_bounds_and_static_value():
    static = run_multicluster_simulation(MultiClusterConfig(n_cycles=2, seed=2))
    assert 0.0 <= static.field_coverage <= 1.0
    mobile = run_multicluster_simulation(
        MultiClusterConfig(n_cycles=8, seed=2, mobility_speed_mps=4.0)
    )
    # drift strands sensors the frozen rosters cannot reach
    assert mobile.field_coverage < static.field_coverage
