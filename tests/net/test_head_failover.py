"""Cluster-head crash, beacon detection, and sensor adoption (Sec. V-G +).

A crashed head is detected by its peers through missed inter-cluster
beacons; the orphaned sensors are adopted by the nearest surviving head
(radios retuned, agents re-bound, queued data carried over, demand merged
by the standard boundary repair).  With failover off the orphans simply go
dark — the comparison baseline.  With everything off the coordinator must
not even exist.

The field here is dense enough that neighbor clusters overlap in radio
range — adoption can only help orphans a surviving head can physically
reach; ones beyond reach fall under the partial-coverage contract.
"""

import pytest

from repro import validate
from repro.net import MultiClusterConfig, run_multicluster_simulation

BASE = dict(
    n_sensors=60,
    n_heads=3,
    n_cycles=6,
    seed=2,
    cycle_length=6.0,
    field_m=360.0,
    mode="channels",
)
CRASH_AT = 8.0  # inside cycle 1 of 6


@pytest.fixture(scope="module")
def healthy():
    return run_multicluster_simulation(MultiClusterConfig(**BASE))


@pytest.fixture(scope="module")
def crashed_dark():
    cfg = MultiClusterConfig(**BASE, head_crashes=((0, CRASH_AT),))
    return run_multicluster_simulation(cfg)


@pytest.fixture(scope="module")
def adopted():
    cfg = MultiClusterConfig(
        **BASE, head_crashes=((0, CRASH_AT),), head_failover=True
    )
    with validate.strict():
        return run_multicluster_simulation(cfg)


def test_defaults_create_no_coordinator(healthy):
    assert healthy.coordinator is None


def test_crash_without_failover_goes_dark(healthy, crashed_dark):
    coord = crashed_dark.coordinator
    assert coord is not None
    assert coord.crashed == [(0, CRASH_AT)]
    assert coord.adoption_events == []
    assert crashed_dark.macs[0].halted
    # the dead cluster stops delivering; the network as a whole loses data
    per_healthy = dict(healthy.per_cluster_delivery())
    per_dark = dict(crashed_dark.per_cluster_delivery())
    assert per_dark[0] < per_healthy[0]
    assert crashed_dark.packets_delivered < healthy.packets_delivered


def test_beacon_watchdog_detects_within_miss_limit(adopted):
    coord = adopted.coordinator
    assert coord.adoption_events, "watchdog never declared the dead head"
    cfg = adopted.config
    detection = min(ev.time for ev in coord.adoption_events)
    latency = detection - CRASH_AT
    assert 0 < latency <= (cfg.beacon_miss_limit + 1) * cfg.beacon_interval


def test_orphans_are_adopted_by_surviving_heads(adopted):
    coord = adopted.coordinator
    orphans = {int(g) for g in adopted.net.members[0]}
    adopted_sensors = {s for ev in coord.adoption_events for s in ev.sensors}
    assert adopted_sensors == orphans
    for ev in coord.adoption_events:
        assert ev.dead_head == 0
        assert ev.adopter in (1, 2)
        assert not adopted.macs[ev.adopter].halted
    # adopter MACs actually grew and re-solved routing around the merge
    assert sum(mac.adoptions for mac in adopted.macs) == len(orphans)
    for mac in adopted.macs:
        if mac.adoptions:
            assert mac.route_repairs >= 1


def test_takeover_restores_delivery(crashed_dark, adopted):
    # adopting heads pick up the orphans' traffic: strictly more of the
    # network's data arrives than in the gone-dark baseline, and adopted
    # sensors (local ids past the adopter's original roster) deliver.
    assert adopted.packets_delivered > crashed_dark.packets_delivered
    takeover_at = max(ev.time for ev in adopted.coordinator.adoption_events)
    adopted_origin_deliveries = 0
    for mac in adopted.macs:
        if not mac.adoptions:
            continue
        first_new_local = mac.phy.n_sensors - mac.adoptions
        adopted_origin_deliveries += sum(
            1
            for t, origin in mac.delivery_times
            if t > takeover_at and origin >= first_new_local
        )
    assert adopted_origin_deliveries > 0


def test_adopted_agents_rebind_their_radios(adopted):
    coord = adopted.coordinator
    for ev in coord.adoption_events:
        mac = adopted.macs[ev.adopter]
        new_agents = mac.sensors[-len(ev.sensors) :]
        index_map = mac.phy.index_map
        assert [index_map[a.sensor] for a in new_agents] == list(ev.sensors)
        dead_phy_map = list(adopted.macs[ev.dead_head].phy.index_map)
        for agent in new_agents:
            assert agent.cluster_id == ev.adopter
            # same physical radio object the dead cluster used, now bound
            # to the new agent and tuned to the adopter's channel
            assert agent.trx is mac.phy.trx(agent.sensor)
            g = index_map[agent.sensor]
            assert agent.trx is adopted.macs[ev.dead_head].phy.transceivers[
                dead_phy_map.index(g)
            ]
            assert int(adopted.coordinator.medium.channels[g]) == int(
                adopted.channels[ev.adopter]
            )


def test_head_failover_run_is_deterministic():
    cfg = MultiClusterConfig(
        **BASE, head_crashes=((0, CRASH_AT),), head_failover=True
    )
    a = run_multicluster_simulation(cfg)
    b = run_multicluster_simulation(cfg)
    assert a.packets_delivered == b.packets_delivered
    assert a.per_cluster_delivery() == b.per_cluster_delivery()
    assert [
        (e.time, e.dead_head, e.adopter, e.sensors)
        for e in a.coordinator.adoption_events
    ] == [
        (e.time, e.dead_head, e.adopter, e.sensors)
        for e in b.coordinator.adoption_events
    ]
