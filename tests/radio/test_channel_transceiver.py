"""Tests for the shared medium and the half-duplex transceiver."""

import numpy as np
import pytest

from repro.radio import (
    BROADCAST_ADDR,
    Frame,
    FrameType,
    RadioError,
    RadioMedium,
    RadioState,
    Transceiver,
    TwoRayGround,
)
from repro.sim import Simulator


def make_medium(
    positions,
    sim=None,
    tx_power=1e-2,  # ~45 m range under the 0.3 m-antenna ground model
    frame_error_rate=0.0,
    beta=10.0,
):
    sim = sim or Simulator()
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    medium = RadioMedium(
        sim=sim,
        positions=positions,
        tx_power_w=np.full(n, tx_power),
        propagation=TwoRayGround(ht=0.3, hr=0.3),
        bitrate_bps=200_000.0,
        rx_sensitivity_w=1e-11,
        capture_beta=beta,
        frame_error_rate=frame_error_rate,
    )
    trx = [Transceiver(sim, medium, i) for i in range(n)]
    return sim, medium, trx


def data_frame(src, dst=BROADCAST_ADDR, size=80):
    return Frame(ftype=FrameType.DATA, src=src, dst=dst, size_bytes=size)


def collect(trx):
    inbox = []
    trx.on_receive(lambda frame, p: inbox.append(frame))
    return inbox


def test_clean_delivery_between_near_nodes():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    inbox = collect(trx[1])
    trx[0].transmit(data_frame(0))
    sim.run()
    assert len(inbox) == 1
    assert trx[1].frames_received == 1


def test_out_of_range_not_delivered():
    sim, medium, trx = make_medium([[0, 0], [5000, 0]])
    inbox = collect(trx[1])
    trx[0].transmit(data_frame(0))
    sim.run()
    assert inbox == []


def test_airtime_80_bytes():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    assert medium.airtime(data_frame(0)) == pytest.approx(3.2e-3)


def test_collision_of_equal_power_senders():
    # receiver equidistant from two simultaneous senders: SINR ~1 -> garbled
    sim, medium, trx = make_medium([[0, 0], [100, 0], [50, 0]])
    inbox = collect(trx[2])
    trx[0].transmit(data_frame(0))
    trx[1].transmit(data_frame(1))
    sim.run()
    assert inbox == []
    assert trx[2].frames_garbled == 2


def test_capture_of_much_stronger_signal():
    # sender 1 is 10x closer to the receiver: d^-4 gives ~40 dB advantage
    sim, medium, trx = make_medium([[0, 0], [95, 0], [100, 0]])
    inbox = collect(trx[2])
    trx[0].transmit(data_frame(0))
    trx[1].transmit(data_frame(1))
    sim.run()
    assert [f.src for f in inbox] == [1]  # strong one captured, weak lost


def test_partial_overlap_still_counts_as_interference():
    sim, medium, trx = make_medium([[0, 0], [100, 0], [50, 0]])
    inbox = collect(trx[2])
    trx[0].transmit(data_frame(0))
    # second transmission starts halfway through the first
    sim.schedule(1.6e-3, lambda: trx[1].transmit(data_frame(1)))
    sim.run()
    assert inbox == []  # both garbled at the midpoint receiver


def test_sleeping_receiver_misses_frame():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    inbox = collect(trx[1])
    trx[1].sleep()
    trx[0].transmit(data_frame(0))
    sim.run()
    assert inbox == []
    assert trx[1].meter.state is RadioState.SLEEP


def test_waking_mid_frame_misses_it():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    inbox = collect(trx[1])
    trx[1].sleep()
    trx[0].transmit(data_frame(0))
    sim.schedule(1e-3, trx[1].wake)  # mid-air wake: no continuous listen
    sim.run()
    assert inbox == []


def test_half_duplex_transmitter_cannot_receive():
    sim, medium, trx = make_medium([[0, 0], [20, 0], [40, 0]])
    inbox = collect(trx[1])
    trx[0].transmit(data_frame(0))
    trx[1].transmit(data_frame(1))  # busy talking
    sim.run()
    assert inbox == []


def test_radio_misuse_raises():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    trx[0].transmit(data_frame(0))
    with pytest.raises(RadioError):
        trx[0].transmit(data_frame(0))  # nested tx
    with pytest.raises(RadioError):
        trx[0].sleep()  # mid transmission
    trx[1].sleep()
    with pytest.raises(RadioError):
        trx[1].transmit(data_frame(1))  # asleep


def test_carrier_sense_sees_in_air_frames():
    sim, medium, trx = make_medium([[0, 0], [30, 0]])
    states = []
    trx[0].transmit(data_frame(0))
    sim.schedule(1e-3, lambda: states.append(trx[1].carrier_busy()))
    sim.schedule(10e-3, lambda: states.append(trx[1].carrier_busy()))
    sim.run()
    assert states == [True, False]


def test_listener_draws_rx_power_while_air_busy():
    sim, medium, trx = make_medium([[0, 0], [30, 0]])
    trx[0].transmit(data_frame(0))
    sim.run()
    trx[1].finalize()
    # 3.2 ms of RX dwell while the frame was in the air
    assert trx[1].meter.dwell_s[RadioState.RX] == pytest.approx(3.2e-3, rel=0.05)


def test_overhearing_costs_energy_even_for_foreign_frames():
    sim, medium, trx = make_medium([[0, 0], [30, 0], [60, 0]])
    trx[0].transmit(data_frame(0, dst=2))  # addressed to node 2
    sim.run()
    trx[1].finalize()
    assert trx[1].meter.dwell_s[RadioState.RX] > 0  # paid to overhear


def test_frame_error_injection_degrades_delivery():
    deliveries = 0
    for seed in range(30):
        sim, medium, trx = make_medium([[0, 0], [20, 0]])
        medium.frame_error_rate = 0.5
        medium._error_rng = np.random.default_rng(seed)
        inbox = collect(trx[1])
        trx[0].transmit(data_frame(0))
        sim.run()
        deliveries += len(inbox)
    assert 5 <= deliveries <= 25  # ~50% loss


def test_tx_done_signal_fires():
    sim, medium, trx = make_medium([[0, 0], [20, 0]])
    fired = []
    trx[0].tx_done._subscribe(fired.append)
    trx[0].transmit(data_frame(0))
    sim.run()
    assert fired == [0]


def test_hearing_matrix_symmetric_for_equal_power():
    sim, medium, trx = make_medium([[0, 0], [40, 0], [500, 0]])
    h = medium.hearing_matrix()
    assert h[0, 1] and h[1, 0]
    assert not h[0, 2] and not h[2, 0]
    assert not np.diagonal(h).any()


def test_medium_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        RadioMedium(
            sim=sim,
            positions=np.zeros((2, 2)),
            tx_power_w=np.ones(3),
            propagation=TwoRayGround(),
        )
    with pytest.raises(ValueError):
        RadioMedium(
            sim=sim,
            positions=np.zeros((2, 2)),
            tx_power_w=np.ones(2),
            propagation=TwoRayGround(),
            frame_error_rate=1.5,
        )
