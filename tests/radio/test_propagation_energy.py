"""Tests for propagation models and energy accounting."""

import numpy as np
import pytest

from repro.radio import (
    EnergyMeter,
    EnergyParams,
    FreeSpace,
    LogNormalShadowing,
    RadioState,
    TwoRayGround,
    range_for_threshold,
)


# --- propagation ---------------------------------------------------------------

def test_free_space_inverse_square():
    m = FreeSpace()
    assert m.gain(20.0) == pytest.approx(m.gain(10.0) / 4.0)


def test_two_ray_matches_friis_below_crossover():
    m = TwoRayGround(ht=1.5, hr=1.5)
    f = FreeSpace()
    d = m.crossover_distance * 0.5
    assert m.gain(d) == pytest.approx(f.gain(d))


def test_two_ray_fourth_power_above_crossover():
    m = TwoRayGround(ht=0.3, hr=0.3)
    d = m.crossover_distance * 4
    assert m.gain(2 * d) == pytest.approx(m.gain(d) / 16.0)


def test_two_ray_continuous_at_crossover():
    m = TwoRayGround()
    d = m.crossover_distance
    assert m.gain(d * 0.999) == pytest.approx(m.gain(d * 1.001), rel=0.02)


def test_gain_matrix_matches_scalar():
    m = TwoRayGround(ht=0.3, hr=0.3)
    dist = np.array([[0.0, 10.0], [10.0, 0.0]])
    g = m.gain_matrix(dist)
    assert g[0, 1] == pytest.approx(m.gain(10.0))
    assert g[0, 0] == 0.0  # diagonal zeroed, not inf


def test_gain_positive_distance_required():
    with pytest.raises(ValueError):
        TwoRayGround().gain(0.0)
    with pytest.raises(ValueError):
        FreeSpace().gain(-5.0)


def test_shadowing_symmetric_and_reproducible():
    m = LogNormalShadowing(sigma_db=6.0, seed=3)
    dist = np.full((4, 4), 50.0)
    np.fill_diagonal(dist, 0.0)
    g1 = m.gain_matrix(dist)
    g2 = LogNormalShadowing(sigma_db=6.0, seed=3).gain_matrix(dist)
    assert np.allclose(g1, g2)
    assert np.allclose(g1, g1.T)  # link fades identically both ways
    # different seed, different fades
    g3 = LogNormalShadowing(sigma_db=6.0, seed=4).gain_matrix(dist)
    assert not np.allclose(g1, g3)


def test_shadowing_makes_coverage_non_disc():
    """The Sec. III-B point: same distance, different link quality."""
    m = LogNormalShadowing(sigma_db=8.0, seed=1)
    dist = np.full((6, 6), 60.0)
    np.fill_diagonal(dist, 0.0)
    g = m.gain_matrix(dist)
    off = g[~np.eye(6, dtype=bool)]
    assert off.max() / off.min() > 2.0  # equal-distance links differ a lot


def test_range_for_threshold_inverts_gain():
    m = TwoRayGround(ht=0.3, hr=0.3)
    tx = 1e-3
    rng = range_for_threshold(m, tx, rx_threshold_w=1e-11)
    assert tx * m.gain(rng) == pytest.approx(1e-11, rel=1e-6)
    with pytest.raises(ValueError):
        range_for_threshold(m, -1.0, 1e-11)


# --- energy ------------------------------------------------------------------------

def test_energy_params_defaults_sane():
    p = EnergyParams()
    p.validate()
    assert p.sleep_w < p.idle_w < p.tx_w
    assert p.rx_w == pytest.approx(p.idle_w * 1.05, rel=0.05)
    assert p.tx_w == pytest.approx(p.idle_w * 1.4, rel=0.05)


def test_energy_meter_integrates_dwell():
    p = EnergyParams()
    m = EnergyMeter(params=p, state=RadioState.IDLE, last_change=0.0)
    m.change_state(RadioState.TX, now=2.0)  # 2 s idle
    m.change_state(RadioState.SLEEP, now=3.0)  # 1 s tx
    m.finalize(now=10.0)  # 7 s sleep
    assert m.dwell_s[RadioState.IDLE] == pytest.approx(2.0)
    assert m.dwell_s[RadioState.TX] == pytest.approx(1.0)
    assert m.dwell_s[RadioState.SLEEP] == pytest.approx(7.0)
    expected = 2.0 * p.idle_w + 1.0 * p.tx_w + 7.0 * p.sleep_w
    assert m.consumed_j == pytest.approx(expected)
    assert m.active_time_s() == pytest.approx(3.0)


def test_energy_meter_rejects_time_travel():
    m = EnergyMeter(params=EnergyParams(), last_change=5.0)
    with pytest.raises(ValueError):
        m.change_state(RadioState.TX, now=1.0)


def test_energy_meter_battery():
    p = EnergyParams(battery_j=1e-3)
    m = EnergyMeter(params=p, state=RadioState.TX, last_change=0.0)
    m.finalize(now=1.0)  # tx for 1 s >> 1 mJ
    assert m.depleted
    assert m.remaining_j == 0.0


def test_energy_breakdown_sums_to_total():
    m = EnergyMeter(params=EnergyParams(), state=RadioState.RX, last_change=0.0)
    m.change_state(RadioState.IDLE, now=1.5)
    m.finalize(now=4.0)
    assert sum(m.breakdown().values()) == pytest.approx(m.consumed_j)


def test_energy_params_validation():
    with pytest.raises(ValueError):
        EnergyParams(sleep_w=1.0, idle_w=0.5).validate()
    with pytest.raises(ValueError):
        EnergyParams(idle_w=-1.0).validate()
