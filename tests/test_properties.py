"""Cross-cutting property-based tests (hypothesis) on core invariants.

These go beyond per-module units: they throw randomized clusters, oracles
and request mixes at the whole scheduling stack and assert the invariants
the paper's correctness rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OnlinePollingScheduler,
    RequestPool,
    BernoulliLoss,
    makespan_lower_bound,
)
from repro.interference import TabulatedOracle
from repro.routing import RoutingPlan, build_one_hop_tables, route_packet, solve_min_max_load
from repro.topology import HEAD, Cluster


@st.composite
def random_cluster(draw):
    """A random connected-ish cluster with explicit links and packets."""
    n = draw(st.integers(2, 9))
    rng_seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(rng_seed)
    hears = np.zeros((n, n), dtype=bool)
    # random symmetric links
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.45:
                hears[i, j] = hears[j, i] = True
    head_hears = rng.random(n) < 0.5
    if not head_hears.any():
        head_hears[int(rng.integers(0, n))] = True
    packets = rng.integers(0, 3, size=n)
    cluster = Cluster(hears=hears, head_hears=head_hears, packets=packets)
    # silence unreachable sensors so routing is feasible
    hops = cluster.min_hop_counts()
    packets = np.where(np.isfinite(hops), packets, 0)
    return Cluster(hears=hears, head_hears=head_hears, packets=packets)


@st.composite
def random_pairwise_oracle(draw, cluster):
    """A random tabulated pairwise oracle over the cluster's usable links."""
    links = []
    n = cluster.n_sensors
    for i in range(n):
        for j in range(n):
            if cluster.hears[j, i]:
                links.append((i, j))
        if cluster.head_hears[i]:
            links.append((i, HEAD))
    pairs = []
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    for a in links:
        for b in links:
            if a < b and len({a[0], a[1], b[0], b[1]}) == 4 and rng.random() < 0.4:
                pairs.append((a, b))
    return TabulatedOracle(pairs, valid_links=links, max_group_size=2)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_scheduler_invariants_on_arbitrary_interference(data):
    """On arbitrary clusters with arbitrary pairwise interference, the
    greedy scheduler (a) terminates, (b) emits a fully legal schedule,
    (c) respects every lower bound, (d) delivers each packet exactly once."""
    cluster = data.draw(random_cluster())
    if cluster.total_packets == 0:
        return
    oracle = data.draw(random_pairwise_oracle(cluster))
    plan = solve_min_max_load(cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    result.schedule.validate(list(result.pool), oracle)
    assert result.makespan >= makespan_lower_bound(list(result.pool), 2)
    assert sorted(result.schedule.delivered) == [
        r.request_id for r in result.pool.requests
    ]


@given(st.data(), st.floats(0.0, 0.6), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_loss_preserves_legality_and_completeness(data, loss_p, loss_seed):
    cluster = data.draw(random_cluster())
    if cluster.total_packets == 0:
        return
    oracle = data.draw(random_pairwise_oracle(cluster))
    plan = solve_min_max_load(cluster).routing_plan()
    result = OnlinePollingScheduler.poll(
        plan, oracle, loss=BernoulliLoss(loss_p, seed=loss_seed)
    )
    assert result.pool.all_deleted()
    result.schedule.validate(list(result.pool), oracle)
    assert result.total_attempts >= len(result.pool.requests)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_routing_tables_equal_source_routes_everywhere(data):
    cluster = data.draw(random_cluster())
    if cluster.total_packets == 0:
        return
    plan = solve_min_max_load(cluster).routing_plan()
    tables = build_one_hop_tables(plan)
    for origin, path in plan.paths.items():
        assert tuple(route_packet(origin, plan, tables)) == path


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_flow_loads_are_min_max_optimal_certificates(data):
    """The flow solution's claimed max load is feasible (paths realize it)
    and its loads never exceed the claimed bound."""
    cluster = data.draw(random_cluster())
    if cluster.total_packets == 0:
        return
    sol = solve_min_max_load(cluster)
    assert sol.loads.max(initial=0) <= sol.max_load
    # per-sensor conservation: own packets all routed
    for s in range(cluster.n_sensors):
        if cluster.packets[s] > 0:
            assert sum(u for _, u in sol.flow_paths[s]) == cluster.packets[s]


@given(st.integers(2, 9), st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_tree_merge_idempotent_invariants(n, seed):
    from repro.routing import merge_flow_to_tree

    rng = np.random.default_rng(seed)
    hears = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                hears[i, j] = hears[j, i] = True
    head_hears = rng.random(n) < 0.5
    if not head_hears.any():
        head_hears[0] = True
    cluster = Cluster(hears=hears, head_hears=head_hears)
    hops = cluster.min_hop_counts()
    packets = np.where(np.isfinite(hops), 1, 0)
    cluster = cluster.with_packets(packets)
    if cluster.total_packets == 0:
        return
    sol = solve_min_max_load(cluster)
    tree = merge_flow_to_tree(sol)
    # every packet owner in the tree; loads conserve total hop work
    for s in range(n):
        if cluster.packets[s] > 0:
            assert s in tree.parent
    loads = tree.loads()
    total_hops = sum(
        len(tree.path_from(s)) - 1 for s in range(n) if cluster.packets[s] > 0
    )
    assert loads.sum() == total_hops
