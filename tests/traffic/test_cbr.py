"""Tests for CBR traffic generation."""

import pytest

from repro.sim import Simulator
from repro.traffic import CbrSource, attach_cbr_sources, packets_per_cycle


class FakeAgent:
    def __init__(self):
        self.count = 0

    def generate_packet(self):
        self.count += 1


def test_packets_per_cycle_arithmetic():
    # 80 Bps, 10 s cycle, 80-byte packets -> 10 packets per cycle
    assert packets_per_cycle(80.0, 10.0, 80) == pytest.approx(10.0)
    assert packets_per_cycle(20.0, 10.0, 80) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        packets_per_cycle(10.0, 0.0, 80)


def test_cbr_rate_honored():
    sim = Simulator()
    agent = FakeAgent()
    src = CbrSource(sim=sim, deliver=agent.generate_packet, rate_bps=80.0, packet_bytes=80)
    src.start()
    sim.run(until=10.0)
    assert agent.count == 10  # one per second
    assert src.generated == 10


def test_cbr_zero_rate_generates_nothing():
    sim = Simulator()
    agent = FakeAgent()
    CbrSource(sim=sim, deliver=agent.generate_packet, rate_bps=0.0, packet_bytes=80).start()
    sim.run(until=10.0)
    assert agent.count == 0


def test_cbr_until_cap():
    sim = Simulator()
    agent = FakeAgent()
    src = CbrSource(sim=sim, deliver=agent.generate_packet, rate_bps=80.0, packet_bytes=80)
    src.start(until=3.0)
    sim.run(until=10.0)
    assert agent.count == 3


def test_attach_sources_phase_spread():
    sim = Simulator()
    agents = [FakeAgent() for _ in range(20)]
    sources = attach_cbr_sources(sim, agents, rate_bps=40.0, packet_bytes=80, seed=1)
    phases = {s.phase for s in sources}
    assert len(phases) > 15  # phases actually differ
    sim.run(until=20.0)
    counts = [a.count for a in agents]
    assert all(9 <= c <= 11 for c in counts)  # ~10 packets each


def test_attach_sources_reproducible():
    def run(seed):
        sim = Simulator()
        agents = [FakeAgent() for _ in range(5)]
        attach_cbr_sources(sim, agents, rate_bps=30.0, seed=seed)
        sim.run(until=13.0)
        return [a.count for a in agents]

    assert run(7) == run(7)
