"""Integration tests spanning the full stack."""

import numpy as np
import pytest

from repro.core import OnlinePollingScheduler, plan_ack_collection, partition_into_sectors
from repro.mac.base import geometric_oracle
from repro.net import PollingSimConfig, SmacSimConfig, run_polling_simulation, run_smac_simulation
from repro.routing import PathRotator, merge_flow_to_tree, solve_min_max_load
from repro.topology import Cluster, uniform_square


def test_full_pipeline_route_schedule_sector():
    """deployment -> discovery -> routing -> polling -> sectors, all coherent."""
    dep = uniform_square(16, seed=8)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    solution = solve_min_max_load(cluster)
    plan = solution.routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    result.schedule.validate(list(result.pool), oracle)

    tree = merge_flow_to_tree(solution)
    partition = partition_into_sectors(solution, oracle=oracle)
    total_sector_slots = 0
    for sec in partition.sectors:
        sec_plan = sec.routing_plan(cluster)
        if sec_plan.paths:
            sec_result = OnlinePollingScheduler.poll(sec_plan, oracle)
            sec_result.schedule.validate(list(sec_result.pool), oracle)
            total_sector_slots += sec_result.slots_elapsed
    # sectors pay some serialization cost in total time...
    assert total_sector_slots >= 0
    # ...but each individual sector is much shorter than the whole cluster
    # (that's the wake-time win).
    longest = max(
        OnlinePollingScheduler.poll(sec.routing_plan(cluster), oracle).slots_elapsed
        for sec in partition.sectors
        if sec.routing_plan(cluster).paths
    )
    assert longest < result.slots_elapsed


def test_rotation_across_cycles_keeps_schedules_valid():
    dep = uniform_square(12, seed=10)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    solution = solve_min_max_load(cluster)
    rotator = PathRotator(solution)
    for _ in range(5):
        plan = rotator.next_cycle()
        result = OnlinePollingScheduler.poll(plan, oracle)
        result.schedule.validate(list(result.pool), oracle)


def test_ack_plus_data_phases_compose():
    dep = uniform_square(14, seed=2)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    solution = solve_min_max_load(cluster)
    ack = plan_ack_collection(cluster, solution.routing_plan())
    assert ack.covered == set(range(14))
    data = OnlinePollingScheduler.poll(solution.routing_plan(), oracle)
    assert data.pool.all_deleted()


def test_polling_beats_smac_on_equal_footing():
    """The headline comparison on one shared deployment."""
    dep = uniform_square(12, seed=6)
    rate = 40.0
    poll = run_polling_simulation(
        PollingSimConfig(n_sensors=12, rate_bps=rate, cycle_length=4.0, n_cycles=6, seed=6),
        deployment=dep,
    )
    smac = run_smac_simulation(
        SmacSimConfig(
            n_sensors=12, rate_bps=rate, duty_cycle=0.5, duration=24.0, warmup=4.0, seed=6
        ),
        deployment=dep,
    )
    # polling delivers everything while sleeping more
    assert poll.throughput_ratio == 1.0
    assert smac.delivery_ratio < 1.0
    assert poll.mean_active_fraction < float(smac.active_fraction.mean())


def test_des_and_slot_model_agree_on_data_slots():
    """The event-driven MAC and the analytic model schedule identically."""
    from repro.metrics import ActiveTimeConfig, simulate_active_time

    seed, n = 3, 10
    des = run_polling_simulation(
        PollingSimConfig(n_sensors=n, rate_bps=40.0, cycle_length=5.0, n_cycles=6, seed=seed)
    )
    ana = simulate_active_time(
        ActiveTimeConfig(
            n_sensors=n, rate_bps=40.0, cycle_length=5.0, n_cycles=6,
            warmup_cycles=0, seed=seed,
        )
    )
    # Steady-state cycles only: the DES warms up from an empty network
    # (cycle 0 has no packets) while the fluid model bills a full period of
    # arrivals before its first cycle.
    des_steady = [s.data_slots for s in des.mac.cycle_stats[2:]]
    ana_steady = [c.data_slots for c in ana.cycles[2:]]
    des_mean = sum(des_steady) / len(des_steady)
    ana_mean = sum(ana_steady) / len(ana_steady)
    assert des_mean == pytest.approx(ana_mean, rel=0.15)
