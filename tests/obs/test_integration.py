"""End-to-end telemetry: traced polling runs, export, inspect, acceptance.

The acceptance path of DESIGN.md §10: a faulted fig2-style run must export
a Chrome trace in which at least one failed delivery is traceable end to
end — poll request span → retry events → blacklist/failover event → repair
span — and the inspect CLI's per-radio energy must reconcile with
:mod:`repro.metrics.energy` within float tolerance.  Just as load-bearing:
with telemetry disabled the simulation must be bit for bit identical to an
untraced run.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultPlan, NodeCrash
from repro.metrics.energy import energy_report
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.obs import export_chrome_trace, export_jsonl, load_jsonl
from repro.obs.inspect import failure_chains, per_phase_time, summarize


def _relay_of(result):
    plan = result.mac.routing.routing_plan()
    relays = sorted({n for p in plan.paths.values() for n in p[1:-1] if n >= 0})
    assert relays, "seed must produce a multi-hop topology"
    return relays[0]


@pytest.fixture(scope="module")
def faulted_traced(tmp_path_factory):
    """One relay-crash run with telemetry on, plus its exported trace."""
    base = run_polling_simulation(PollingSimConfig(n_sensors=30, n_cycles=8, seed=3))
    victim = _relay_of(base)
    plan = FaultPlan(crashes=[NodeCrash(node=victim, at=20.3)])
    cfg = PollingSimConfig(
        n_sensors=30, n_cycles=8, seed=3, fault_plan=plan, telemetry=True
    )
    res = run_polling_simulation(cfg)
    assert res.telemetry is not None
    out = tmp_path_factory.mktemp("trace")
    jsonl = export_jsonl(res.telemetry, out / "trace.jsonl")
    chrome = export_chrome_trace(res.telemetry, out / "trace.json")
    return victim, res, jsonl, chrome


def test_telemetry_off_is_bit_for_bit_identical():
    cfg = PollingSimConfig(n_sensors=20, n_cycles=4, seed=7)
    plain = run_polling_simulation(cfg)
    traced = run_polling_simulation(
        PollingSimConfig(n_sensors=20, n_cycles=4, seed=7, telemetry=True)
    )
    assert plain.telemetry is None
    assert traced.telemetry is not None
    assert plain.packets_generated == traced.packets_generated
    assert plain.packets_delivered == traced.packets_delivered
    assert plain.elapsed == traced.elapsed
    np.testing.assert_array_equal(plain.active_fraction, traced.active_fraction)
    np.testing.assert_array_equal(
        energy_report(plain.phy).consumed_j, energy_report(traced.phy).consumed_j
    )


def test_traced_run_has_span_hierarchy(faulted_traced):
    _, res, _, _ = faulted_traced
    tel = res.telemetry
    runs = tel.spans_of("run")
    assert len(runs) == 1 and runs[0].clock == "wall"
    cycles = tel.spans_of("cycle")
    assert len(cycles) == res.config.n_cycles
    assert all(c.parent_id == runs[0].span_id for c in cycles)
    phases = tel.spans_of("phase")
    assert phases and all(
        tel.find_span(p.parent_id).kind == "cycle" for p in phases
    )
    requests = tel.spans_of("request")
    assert requests and all(
        tel.find_span(r.parent_id).kind == "phase" for r in requests
    )


def test_cycle_snapshots_and_energy_deltas(faulted_traced):
    _, res, _, _ = faulted_traced
    tel = res.telemetry
    snaps = tel.cycle_snapshots
    assert len(snaps) == res.config.n_cycles
    # Per-cycle energy deltas sum (over cycles + the untraced idle tail)
    # to no more than the final per-radio totals.
    deltas = np.array([s["energy_delta_j"] for s in snaps])
    totals = np.array(tel.extras["energy_per_radio_j"])
    assert deltas.shape[1] == totals.shape[0]
    assert np.all(deltas >= 0)
    assert np.all(deltas.sum(axis=0) <= totals + 1e-12)


def test_extras_energy_reconciles_with_energy_report(faulted_traced):
    _, res, _, _ = faulted_traced
    report = energy_report(res.phy)
    recorded = np.array(res.telemetry.extras["energy_per_radio_j"])
    # Layout: sensors 0..n-1 then the head last (phy.head_index).
    np.testing.assert_allclose(recorded[:-1], report.consumed_j, rtol=1e-12)
    assert recorded[-1] == pytest.approx(report.head_consumed_j, rel=1e-12)


def test_failed_delivery_traceable_end_to_end(faulted_traced):
    victim, res, jsonl, _ = faulted_traced
    trace = load_jsonl(jsonl)
    chains = failure_chains(trace)
    assert chains, "a mid-cycle relay crash must fail at least one request"
    # At least one chain must carry the full causal story: the request's
    # own retry events, the blacklist that wrote the sensor off, and a
    # repair span that routed around the death.
    complete = [
        c
        for c in chains
        if any(e["name"] == "retry" for e in c["events"])
        and c["blacklist"]
        and c["repairs"]
    ]
    assert complete, "no failed request links retry -> blacklist -> repair"
    # The repair spans must name the crashed relay among the blacklisted.
    assert any(
        victim in r["attrs"]["blacklisted"]
        for c in complete
        for r in c["repairs"]
    )


def test_blacklist_and_failover_style_events_on_timeline(faulted_traced):
    _, res, _, _ = faulted_traced
    names = {e.name for e in res.telemetry.timeline}
    assert "blacklist" in names


def test_jsonl_roundtrip(faulted_traced):
    _, res, jsonl, _ = faulted_traced
    trace = load_jsonl(jsonl)
    assert len(trace["spans"]) == len(res.telemetry.spans)
    assert len(trace["timeline"]) == len(res.telemetry.timeline)
    assert len(trace["cycles"]) == len(res.telemetry.cycle_snapshots)
    assert trace["meta"]["metrics"] == res.telemetry.metrics.snapshot()


def test_jsonl_load_skips_truncated_tail(faulted_traced, tmp_path):
    _, _, jsonl, _ = faulted_traced
    clipped = tmp_path / "clipped.jsonl"
    lines = Path(jsonl).read_text().splitlines()
    clipped.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
    trace = load_jsonl(clipped)
    assert len(trace["spans"]) >= 1  # everything before the torn line survives


def test_chrome_trace_is_valid_and_tracked_per_clock(faulted_traced):
    _, res, _, chrome = faulted_traced
    payload = json.loads(Path(chrome).read_text())
    events = payload["traceEvents"]
    cats = {e.get("cat") for e in events}
    assert {"cycle", "phase", "request"} <= cats
    pids = {e["pid"] for e in events if e.get("ph") == "X"}
    assert {1, 2} <= pids  # sim spans and wall profiling on separate tracks
    # Request spans fan out one thread per sensor.
    req_tids = {e["tid"] for e in events if e.get("cat") == "request"}
    assert all(t >= 100 for t in req_tids) and len(req_tids) > 1


def test_per_phase_time_covers_the_duty_cycle(faulted_traced):
    _, res, jsonl, _ = faulted_traced
    phases = per_phase_time(load_jsonl(jsonl)["spans"])
    assert set(phases) >= {"ack", "data"}
    assert all(v["dur"] > 0 for v in phases.values())


def test_inspect_cli_renders_report(faulted_traced):
    _, _, jsonl, _ = faulted_traced
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.inspect", str(jsonl)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "per-phase simulation time" in out
    assert "wall-clock profiling" in out
    assert "per-radio energy" in out
    assert "failed poll requests" in out


def test_summarize_inline_matches_cli_sections(faulted_traced):
    _, _, jsonl, _ = faulted_traced
    report = summarize(load_jsonl(jsonl))
    assert "routing.solve" in report  # profiled solver shows up
    assert "head" in report  # per-radio energy labels the head


def test_ambient_use_scope_traces_without_config_flag():
    tel = obs.Telemetry()
    with obs.use(tel):
        res = run_polling_simulation(
            PollingSimConfig(n_sensors=12, n_cycles=2, seed=1)
        )
    assert res.telemetry is tel
    assert tel.spans_of("run") and tel.spans_of("cycle")
    assert tel.metrics.counter("polling.delivered").value > 0
