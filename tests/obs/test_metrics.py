"""Unit tests for the typed metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_increments_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("mac.retries")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    g = reg.gauge("routing.max_load")
    assert g.value is None
    g.set(3.0)
    g.set(2.0)
    assert g.value == 2.0


def test_histogram_summary_statistics():
    reg = MetricsRegistry()
    h = reg.histogram("mac.group_size")
    for v in (2.0, 1.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0
    assert h.max == 3.0
    assert h.mean == 2.0


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert len(reg) == 1
    assert "a" in reg


def test_name_is_the_schema():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("x")


def test_snapshot_is_json_compatible_and_sorted():
    import json

    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.gauge("a").set(1.5)
    reg.histogram("c").observe(0.25)
    snap = reg.snapshot()
    assert list(snap) == ["a", "b", "c"]
    json.dumps(snap)  # must not raise
    assert snap["b"] == {"type": "counter", "value": 2}


def test_merge_snapshot_counters_add_gauges_overwrite_histograms_combine():
    a = MetricsRegistry()
    a.counter("n").inc(3)
    a.gauge("g").set(1.0)
    a.histogram("h").observe(1.0)

    b = MetricsRegistry()
    b.counter("n").inc(4)
    b.gauge("g").set(9.0)
    b.histogram("h").observe(5.0)
    b.histogram("h").observe(3.0)

    a.merge_snapshot(b.snapshot())
    assert a.counter("n").value == 7
    assert a.gauge("g").value == 9.0
    h = a.histogram("h")
    assert (h.count, h.total, h.min, h.max) == (3, 9.0, 1.0, 5.0)


def test_merge_snapshot_empty_histogram_is_noop():
    a = MetricsRegistry()
    a.histogram("h").observe(2.0)
    b = MetricsRegistry()
    b.histogram("h")  # registered but never observed
    a.merge_snapshot(b.snapshot())
    assert a.histogram("h").count == 1
    assert a.histogram("h").min == 2.0


def test_merge_snapshot_unknown_type_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="unknown type"):
        reg.merge_snapshot({"weird": {"type": "summary", "value": 1}})
