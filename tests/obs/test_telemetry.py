"""Unit tests for spans, the telemetry context, and summary aggregation."""

import pytest

from repro import obs, validate
from repro.obs import NULL_TELEMETRY, Telemetry


def test_current_is_null_outside_any_scope():
    assert obs.current() is NULL_TELEMETRY
    assert not obs.current().enabled


def test_use_scopes_and_nests():
    outer, inner = Telemetry(), Telemetry()
    with obs.use(outer):
        assert obs.current() is outer
        with obs.use(inner):
            assert obs.current() is inner
        assert obs.current() is outer
    assert obs.current() is NULL_TELEMETRY


def test_span_ids_are_stable_and_parented():
    tel = Telemetry()
    run = tel.begin("run", "r", 0.0, clock="wall")
    cycle = tel.begin("cycle", "c0", 0.0, parent=run)
    tel.finish(cycle, 10.0, delivered=5)
    assert run.span_id != cycle.span_id
    assert cycle.parent_id == run.span_id
    assert cycle.duration == 10.0
    assert cycle.attrs["delivered"] == 5
    assert run.duration == 0.0  # still open
    assert tel.find_span(cycle.span_id) is cycle
    assert tel.spans_of("cycle") == [cycle]


def test_begin_rejects_unknown_clock():
    with pytest.raises(ValueError, match="clock"):
        Telemetry().begin("run", "r", 0.0, clock="lunar")


def test_disabled_telemetry_records_nothing():
    tel = Telemetry(enabled=False)
    span = tel.begin("run", "r", 0.0)
    assert span is None
    tel.finish(span, 1.0)
    tel.add_event(span, 0.5, "retry")
    tel.timeline_event(0.5, "failover")
    tel.snapshot_cycle(cycle=0)
    assert tel.spans == []
    assert tel.timeline == []
    assert tel.cycle_snapshots == []


def test_span_events_and_timeline():
    tel = Telemetry()
    span = tel.begin("request", "poll:s3", 1.0, clock="slot", sensor=3)
    tel.add_event(span, 2.0, "retry", attempt=2)
    tel.timeline_event(5.0, "blacklist", sensor=3)
    assert span.events[0].name == "retry"
    assert span.events[0].attrs["attempt"] == 2
    assert tel.timeline[0].name == "blacklist"


def test_wall_stack_push_pop():
    tel = Telemetry()
    a = tel.begin("profile", "outer", 0.0, clock="wall")
    tel.push_wall(a)
    assert tel.wall_parent is a
    b = tel.begin("profile", "inner", 0.0, clock="wall")
    tel.push_wall(b)
    assert tel.wall_parent is b
    tel.pop_wall(b)
    tel.pop_wall(a)
    assert tel.wall_parent is None
    tel.push_wall(None)  # disabled begin: no-op
    assert tel.wall_parent is None


def test_use_attaches_invariant_listener():
    tel = Telemetry()
    with validate.MONITOR.at_mode("warn"), obs.use(tel):
        assert tel.on_violation in validate.MONITOR.listeners
        with pytest.warns(validate.InvariantWarning):
            validate.MONITOR.record(
                "test", "boom", nodes=(1,), sim_time=4.2
            )
    assert tel.on_violation not in validate.MONITOR.listeners
    assert len(tel.timeline) == 1
    ev = tel.timeline[0]
    assert ev.name == "invariant-violation"
    assert ev.time == 4.2
    assert ev.attrs["invariant"] == "test"
    assert ev.attrs["nodes"] == [1]


def test_use_disabled_telemetry_does_not_attach_listener():
    tel = Telemetry(enabled=False)
    with obs.use(tel):
        assert tel.on_violation not in validate.MONITOR.listeners


def test_snapshot_cycle_captures_cumulative_registry():
    tel = Telemetry()
    tel.metrics.counter("n").inc()
    tel.snapshot_cycle(cycle=0)
    tel.metrics.counter("n").inc()
    tel.snapshot_cycle(cycle=1)
    assert tel.cycle_snapshots[0]["metrics"]["n"]["value"] == 1
    assert tel.cycle_snapshots[1]["metrics"]["n"]["value"] == 2
    assert tel.cycle_snapshots[1]["cycle"] == 1


def test_summary_and_merge_summary_roundtrip():
    import json

    child = Telemetry()
    child.metrics.counter("polling.delivered").inc(7)
    span = child.begin("cycle", "c0", 0.0)
    child.finish(span, 3.0)
    child.timeline_event(1.0, "invariant-violation", invariant="x")
    summary = child.summary()
    json.dumps(summary)  # must survive pipes and cache files
    assert summary["violations"] == 1
    assert summary["spans"]["sim:cycle"] == {"count": 1, "dur": 3.0}

    parent = Telemetry()
    parent.merge_summary(summary)
    parent.merge_summary(summary)
    assert parent.merged_runs == 2
    assert parent.metrics.counter("polling.delivered").value == 14
    assert parent.merged_spans["sim:cycle"] == {"count": 2, "dur": 6.0}


def test_null_telemetry_is_shared_and_inert():
    before = len(NULL_TELEMETRY.spans)
    NULL_TELEMETRY.timeline_event(0.0, "x")
    assert NULL_TELEMETRY.begin("run", "r", 0.0) is None
    assert len(NULL_TELEMETRY.spans) == before
